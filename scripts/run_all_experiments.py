#!/usr/bin/env python
"""Run every experiment at its default (paper-shaped) scale and save results.

Output lands in ``experiment_results/``; EXPERIMENTS.md records these
numbers next to the paper's.  Expect a few minutes of runtime.
"""

import json
import pathlib
import time

from repro.experiments import (
    AblationConfig,
    run_trust_extension,
    ablate_backup_policy,
    ablate_commutations,
    ablate_metric_selection,
    ablate_soft_allocation,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_overhead,
)

OUT = pathlib.Path(__file__).resolve().parent.parent / "experiment_results"
OUT.mkdir(exist_ok=True)


def save(name: str, text: str) -> None:
    (OUT / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}", flush=True)


def main() -> None:
    t0 = time.time()

    print("[fig8] success ratio vs workload ...", flush=True)
    fig8 = run_fig8(verbose=True)
    save(
        "fig8_success_ratio",
        fig8.table()
        + "\n\nmean messages/request: "
        + json.dumps({k: round(v, 1) for k, v in fig8.messages_per_request.items()}),
    )

    print("[fig9] failure recovery under churn ...", flush=True)
    fig9 = run_fig9(verbose=True)
    save(
        "fig9_failure_recovery",
        f"mean backups/session: {fig9.mean_backups:.2f} (paper: 2.74)\n"
        f"recovered fraction: {fig9.recovered_fraction:.3f}\n"
        f"user-visible failures: without={sum(fig9.series[0].y):.0f}, "
        f"with={sum(fig9.series[1].y):.0f}\n\n" + fig9.table(),
    )

    print("[fig10] session setup time ...", flush=True)
    fig10 = run_fig10(verbose=True)
    save("fig10_setup_time", fig10.table())

    print("[fig11] budget sweep ...", flush=True)
    fig11 = run_fig11(verbose=True)
    save(
        "fig11_budget_sweep",
        f"mean optimal probe count: {fig11.optimal_probes_mean:.0f} (paper: 4913)\n\n"
        + fig11.table(),
    )

    print("[overhead] vs centralized ...", flush=True)
    overhead = run_overhead(verbose=True)
    save(
        "overhead_comparison",
        overhead.table()
        + "\n\nSpiderNet breakdown: "
        + json.dumps(overhead.bcp_breakdown)
        + "\ncentralized breakdown: "
        + json.dumps(overhead.centralized_breakdown),
    )

    print("[trust extension] ...", flush=True)
    trust = run_trust_extension(verbose=True)
    save(
        "trust_extension",
        f"final clean rate: trust-aware {trust.final_clean_rate_with:.3f} vs "
        f"baseline {trust.final_clean_rate_without:.3f}\n\n" + trust.table(),
    )

    print("[ablations] ...", flush=True)
    cfg = AblationConfig()
    abl = {}
    abl.update(ablate_commutations(cfg))
    abl.update(ablate_metric_selection(cfg))
    abl.update(ablate_soft_allocation(cfg))
    abl.update(ablate_backup_policy(cfg))
    save("ablations", "\n".join(f"{k}: {v:.4f}" for k, v in abl.items()))

    print(f"\nall experiments done in {time.time() - t0:.0f}s", flush=True)


if __name__ == "__main__":
    main()
