#!/usr/bin/env python
"""Customizable video streaming over a wide-area P2P overlay (paper §6.2).

The paper's prototype application: a user requests P2P video streaming
with on-demand transformations and enriched content.  This example

1. builds the PlanetLab-substitute WAN overlay with the six multimedia
   components deployed (stock/weather tickers, up/down-scaling,
   sub-image extraction, re-quantification),
2. composes "downscale -> stock ticker -> requantify" with a delay bound,
3. instantiates the *data plane*: the selected components' transforms are
   deployed as runtime objects and a stream of video frames is pushed
   through the composed service graph, showing each hop's effect.

Run:  python examples/video_streaming.py
"""

from repro.core import CompositeRequest, FunctionGraph, QoSRequirement
from repro.core.qos import loss_to_additive
from repro.services import ServiceComponent, VideoFrame, make_transform
from repro.workload.scenarios import planetlab_testbed

SEED = 11


def main() -> None:
    scenario = planetlab_testbed(n_peers=102, seed=SEED)
    net = scenario.net
    print(
        f"WAN overlay: {scenario.overlay.n_peers} peers, "
        f"replication degree ~{scenario.replication_degree:.1f} per media function"
    )

    # the user's customization: shrink the stream, embed a stock ticker,
    # then requantify for low-bandwidth receivers
    fg = FunctionGraph.linear(["downscale", "stock_ticker", "requantify"])
    request = CompositeRequest.create(
        function_graph=fg,
        qos=QoSRequirement({"delay": 1.5, "loss": loss_to_additive(0.08)}),
        source_peer=0,
        dest_peer=1,
        bandwidth=1.2,
    )
    result = net.compose(request, budget=100)
    if not result.success:
        raise SystemExit(f"composition failed: {result.failure_reason}")
    graph = result.best
    print(f"\ncomposed: {graph}")
    print(f"end-to-end QoS: {result.best_qos}")
    print(f"setup time: {result.setup_time * 1000:.0f} ms "
          f"(probes: {result.probes_sent}, budget: 100, optimal would need ~17^3=4913)")

    # ---- data plane: instantiate and run the composed pipeline ----------
    spec_by_id = {s.component_id: s for s in scenario.population}
    pipeline = []
    for fn in graph.pattern.topological_order():
        meta = graph.component(fn)
        spec = spec_by_id[meta.component_id]
        pipeline.append(ServiceComponent(spec, make_transform(fn)))
    print("\nstreaming 5 frames through the composed service graph:")
    frame = VideoFrame.source(stream_id=1, timestamp=0.0, width=1280, height=720)
    print(f"  source frame: {frame.width}x{frame.height}, "
          f"{frame.quant_bits}-bit, {frame.size_bytes // 1024} KiB")
    for t in range(5):
        adu = VideoFrame.source(stream_id=1, timestamp=float(t), width=1280, height=720)
        for comp in pipeline:
            comp.enqueue(adu)
            outputs = comp.process_once()
            assert outputs, f"component {comp.spec.function} produced no output"
            adu = outputs[0]
        if t == 0:
            print(f"  delivered frame: {adu.width}x{adu.height}, "
                  f"{adu.quant_bits}-bit, {adu.size_bytes // 1024} KiB, "
                  f"overlays={list(adu.overlays)}")
    processed = [c.processed for c in pipeline]
    print(f"  frames processed per hop: {processed}")
    expected_shrink = 0.25 * 1.05 * 0.5  # downscale * ticker * requantify
    print(f"  stream rate factor end-to-end: ~{expected_shrink:.3f}x "
          f"(receiver-side bandwidth need drops accordingly)")


if __name__ == "__main__":
    main()
