#!/usr/bin/env python
"""Secure composition with decentralized trust (the paper's §8 extension).

A quarter of the overlay's peers are malicious: their components are
function-qualified and advertise normal QoS, but they sabotage sessions
at runtime.  This example

1. declares a composite request in the QoSTalk-style XML format
   (`repro.spec`) and compiles it,
2. runs repeated sessions while the requester rates every service peer
   it used (beta reputation, shared via one-level recommendations),
3. shows the clean-session rate climbing as the trust-aware next-hop
   metric learns to route around the saboteurs.

Run:  python examples/secure_composition.py
"""

import numpy as np

from repro.core.bcp import BCPConfig, NextHopWeights
from repro.experiments.plotting import sparkline
from repro.spec import parse_xml
from repro.trust import MaliciousPopulation, TrustManager
from repro.workload.generator import RequestConfig
from repro.workload.scenarios import simulation_testbed

SEED = 13
MALICIOUS_FRACTION = 0.25
SESSIONS = 150
BATCH = 25

REQUEST_XML = """
<composite-request name="secure-news-stream">
  <function name="F001"/>
  <function name="F002"/>
  <function name="F003"/>
  <edge from="F001" to="F002"/>
  <edge from="F002" to="F003"/>
  <qos delay-ms="2500" loss-rate="0.10"/>
  <stream bandwidth-mbps="0.8" source="0" dest="1" duration-s="600"/>
</composite-request>
"""


def main() -> None:
    scenario = simulation_testbed(
        n_ip=400,
        n_peers=80,
        n_functions=10,
        request_config=RequestConfig(function_count=(3, 3), qos_tightness=2.0),
        bcp_config=BCPConfig(
            budget=24,
            nexthop_weights=NextHopWeights(delay=0.2, bandwidth=0.15, failure=0.15, trust=0.5),
        ),
        seed=SEED,
    )
    net = scenario.net
    rng = np.random.default_rng(SEED)

    spec = parse_xml(REQUEST_XML)
    print(f"parsed spec {spec.name!r}: {spec.function_graph}")
    print(f"delay bound {spec.qos.bounds['delay']*1000:.0f} ms")

    malice = MaliciousPopulation.random(
        net.overlay.peers(), MALICIOUS_FRACTION, rng=rng, protected={0, 1}
    )
    print(f"\n{len(malice.malicious)} of {net.overlay.n_peers} peers are malicious "
          f"(sabotage probability {malice.sabotage_probability:.0%})")

    trust = TrustManager(ledger=net.ledger)
    net.bcp.trust = trust

    rates = []
    clean = seen = 0
    for i in range(SESSIONS):
        request = spec.compile() if i == 0 else scenario.requests.next_request(
            source=0, dest=1, n_functions=3
        )
        result = net.compose(request, budget=24, confirm=False)
        if result.success and result.best is not None:
            service_peers = [m.peer for m in result.best.components()]
            ok = malice.session_outcome(service_peers, rng)
            trust.session_feedback(0, service_peers, ok)
            seen += 1
            clean += int(ok)
        if (i + 1) % BATCH == 0:
            rates.append(clean / max(seen, 1))
            clean = seen = 0

    print("\nclean-session rate per batch of "
          f"{BATCH} sessions: {['%.2f' % r for r in rates]}")
    print(f"learning curve: {sparkline(rates)}")
    print("the requester learned to avoid the saboteurs from outcomes alone")
    print("(a single requester needs no recommendations — its own beta")
    print(" estimates suffice; multi-requester gossip is exercised in")
    print(" repro/experiments/trust_extension.py)")


if __name__ == "__main__":
    main()
