#!/usr/bin/env python
"""Quickstart: build a P2P service overlay, compose a QoS-aware service.

Walks the whole SpiderNet pipeline in ~40 lines of API use:

1. generate an Internet-like IP topology and select peers into an overlay,
2. build the middleware (Pastry DHT, discovery, resources, BCP, sessions),
3. deploy a population of service components,
4. submit a composite service request and run bounded composition probing,
5. establish a failure-resilient session with backup service graphs.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import FunctionGraph, CompositeRequest, QoSRequirement, SpiderNet, describe_composition
from repro.core.qos import loss_to_additive
from repro.topology import generate_ip_network, mesh_overlay
from repro.workload import PopulationConfig, generate_population

SEED = 7


def main() -> None:
    rng = np.random.default_rng(SEED)

    # 1. topology: a 500-router power-law IP network, 80 peers meshed by
    #    IP-delay proximity
    ip = generate_ip_network(500, rng=rng)
    overlay = mesh_overlay(ip, n_peers=80, k=4, rng=rng)
    print(f"overlay: {overlay.n_peers} peers, {overlay.graph.number_of_edges()} links")

    # 2. middleware
    net = SpiderNet.build(overlay, rng=rng)

    # 3. deploy 1-3 components per peer from a 20-function catalogue
    population = generate_population(overlay, PopulationConfig(n_functions=20), rng=rng)
    net.deploy(population)
    print(f"deployed {len(population)} components over {len(net.registry.functions())} functions")

    # 4. a composite request: F003 -> F007 -> F012, end-to-end delay <= 800 ms,
    #    loss <= 5%, 0.5 Mbps stream
    fg = FunctionGraph.linear(["F003", "F007", "F012"])
    request = CompositeRequest.create(
        function_graph=fg,
        qos=QoSRequirement({"delay": 0.8, "loss": loss_to_additive(0.05)}),
        source_peer=0,
        dest_peer=42,
        bandwidth=0.5,
    )
    result = net.compose(request, budget=32)
    print(f"\ncomposition success: {result.success}")
    print(f"probes sent: {result.probes_sent}, candidates examined: {result.candidates_examined}")
    if result.best is not None:
        print("selected service graph:")
        print(describe_composition(result.best, overlay))
        print(f"end-to-end QoS: {result.best_qos}")
        print(f"load-balancing cost psi: {result.best_cost:.4f}")
        print(f"qualified alternatives found: {len(result.qualified)}")
        print(f"setup phases (s): { {k: round(v, 3) for k, v in result.phases.items()} }")

    # 5. a session with proactive failure recovery
    session = net.start_session(request)
    if session is not None:
        print(f"\nsession {session.session_id} established")
        print(f"backup service graphs maintained: {len(session.backups)}")
        for i, backup in enumerate(session.backups, 1):
            overlap = backup.graph.overlap(session.current)
            print(f"  backup {i}: overlap with current = {overlap} components")
        net.sessions.teardown(session.session_id)
        print("session torn down, resources released")
    net.pool.check_invariants()
    print("\nresource pool invariants hold — done.")


if __name__ == "__main__":
    main()
