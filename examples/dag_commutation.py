#!/usr/bin/env python
"""DAG composition topologies and exchangeable composition orders (§2.4).

Demonstrates the two-dimensional graph mapping problem of the paper's
Fig. 4:

* a **DAG** function graph — one stream forks into two parallel branches
  that rejoin — composed by branch-probing + destination-side merging;
* a **commutation link** — colour-filter-like function pairs whose order
  is exchangeable — explored by per-hop pattern switching, with the
  measured delay gain over fixed-order composition.

Run:  python examples/dag_commutation.py
"""

import numpy as np

from repro.core import CompositeRequest, FunctionGraph, QoSRequirement
from repro.core.bcp import BCPConfig
from repro.core.qos import loss_to_additive
from repro.workload.generator import RequestConfig
from repro.workload.scenarios import simulation_testbed

SEED = 5


def dag_composition(scenario) -> None:
    net = scenario.net
    fns = scenario.net.registry.functions()
    f0, f1, f2, f3 = fns[0], fns[1], fns[2], fns[3]
    # diamond: f0 feeds two parallel branches that rejoin at f3
    fg = FunctionGraph.from_edges(
        [f0, f1, f2, f3],
        [(f0, f1), (f0, f2), (f1, f3), (f2, f3)],
    )
    print(f"DAG function graph: {fg}")
    print(f"branch paths: {fg.branches()}")
    request = CompositeRequest.create(
        function_graph=fg,
        qos=QoSRequirement({"delay": 2.5, "loss": loss_to_additive(0.1)}),
        source_peer=0,
        dest_peer=1,
        bandwidth=0.4,
    )
    result = net.compose(request, budget=48)
    print(f"success: {result.success}; candidates merged from branch probes: "
          f"{result.candidates_examined}")
    if result.best is not None:
        print(f"selected: {result.best}")
        print(f"worst-branch QoS: {result.best_qos}")


def commutation_gain(seed: int) -> None:
    delays = {}
    for explore in (True, False):
        scenario = simulation_testbed(
            n_ip=500,
            n_peers=100,
            n_functions=24,
            request_config=RequestConfig(
                function_count=(3, 4),
                commutation_probability=1.0,
                qos_tightness=2.5,
            ),
            bcp_config=BCPConfig(
                budget=40, explore_commutations=explore, objective="delay"
            ),
            seed=seed,
        )
        net = scenario.net
        sample = []
        for _ in range(25):
            request = scenario.requests.next_request()
            result = net.compose(request, budget=40)
            if result.success and result.best_qos is not None:
                sample.append(result.best_qos.get("delay"))
        delays[explore] = float(np.mean(sample))
        label = "exploring" if explore else "fixed order"
        print(f"  {label:>12s}: mean selected delay = {delays[explore]*1000:.1f} ms "
              f"({len(sample)} requests)")
    gain = (delays[False] - delays[True]) / delays[False] * 100.0
    print(f"  commutation exploration improves selected delay by {gain:.1f}%")


def main() -> None:
    scenario = simulation_testbed(
        n_ip=500, n_peers=100, n_functions=24, seed=SEED,
        request_config=RequestConfig(qos_tightness=2.0),
        bcp_config=BCPConfig(budget=48),
    )
    print("=== 1. DAG composition with destination-side branch merging ===")
    dag_composition(scenario)
    print("\n=== 2. exchangeable composition orders (commutation links) ===")
    commutation_gain(SEED)


if __name__ == "__main__":
    main()
