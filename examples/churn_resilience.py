#!/usr/bin/env python
"""Failure-resilient streaming sessions in a churning P2P network (paper §5).

Sets up long-lived sessions in an overlay where 2 % of peers fail every
virtual minute, and shows proactive failure recovery at work:

* each session maintains an adaptive number of backup service graphs
  (Eq. 2), selected for failure-disjointness + maximum overlap (§5.2);
* on a peer departure the session switches to a live backup (proactive)
  or, if all backups are gone, re-runs BCP (reactive);
* the same workload is replayed without recovery for contrast.

Run:  python examples/churn_resilience.py
"""

from repro.core.bcp import BCPConfig
from repro.core.session import RecoveryConfig
from repro.workload.generator import RequestConfig
from repro.workload.scenarios import simulation_testbed

SEED = 3
MINUTES = 40.0
TARGET_SESSIONS = 15


def run(proactive: bool) -> None:
    scenario = simulation_testbed(
        n_ip=500,
        n_peers=100,
        n_functions=24,
        request_config=RequestConfig(
            function_count=(2, 3), qos_tightness=1.6, duration_mean=120.0
        ),
        bcp_config=BCPConfig(budget=48),
        recovery_config=RecoveryConfig(
            proactive=proactive, reactive=proactive, upper_bound=2.2
        ),
        churn_rate=0.02,
        churn_downtime=10.0,
        protected_endpoints=10,
        seed=SEED,
    )
    net = scenario.net

    def replenish() -> None:
        deficit = TARGET_SESSIONS - len(net.sessions.active_sessions())
        for _ in range(max(deficit, 0)):
            net.sessions.establish(scenario.requests.next_request())

    replenish()
    net.start_churn()
    net.sim.every(1.0, replenish, start_after=0.5)
    net.run(until=MINUTES)

    stats = net.sessions.stats
    mode = "WITH proactive recovery" if proactive else "WITHOUT recovery"
    print(f"\n--- {mode} ---")
    print(f"sessions established: {stats.sessions_established}")
    print(f"session-breaking peer departures: {stats.failures}")
    if proactive:
        print(f"  recovered proactively (backup switch): {stats.proactive_recoveries}")
        print(f"  recovered reactively (re-probing):     {stats.reactive_recoveries}")
        print(f"  mean backups per session: {stats.mean_backups:.2f}")
        if stats.recovery_times:
            mean_rt = sum(stats.recovery_times) / len(stats.recovery_times)
            print(f"  mean recovery time: {mean_rt * 1000:.0f} ms")
    print(f"user-visible failures: {stats.unrecovered_failures}")


def main() -> None:
    print(f"{TARGET_SESSIONS} long-lived sessions, 2%/minute peer churn, "
          f"{MINUTES:.0f} virtual minutes")
    run(proactive=False)
    run(proactive=True)
    print("\nproactive recovery turns a steady failure stream into "
          "(near-)zero user-visible failures — Figure 9's result.")


if __name__ == "__main__":
    main()
