"""Figure 8 bench: composition success ratio vs workload, five algorithms.

Paper (§6.1): power-law/mesh overlay of 1000 peers over a 10 000-node IP
network; requests at 50–250 per time unit for 2000 time units.  Expected
shape: probing-0.2 ≈ optimal > probing-0.1 ≫ random ≫ static, all
declining as workload (resource contention) grows.

Bench scale: 150 peers / 800 routers, workloads 2–10 req/tu for 30 time
units — the replication degree and per-session footprint are kept
proportional (DESIGN.md "Scale").
"""

import numpy as np
import pytest

from repro.experiments import Fig8Config, run_fig8

from conftest import save_table

CFG = Fig8Config(
    n_ip=500,
    n_peers=100,
    n_functions=25,
    workloads=(2, 4, 6, 8, 10),
    duration=25,
    probing_fractions=(0.2, 0.1),
    max_budget=120,
    seed=0,
)


@pytest.fixture(scope="module")
def fig8_result():
    return run_fig8(CFG)


def test_fig8_benchmark(benchmark, fig8_result, results_dir):
    # timing: one representative cell (probing-0.2 at the median workload)
    from repro.experiments.fig8_success_ratio import _run_point

    benchmark.pedantic(
        _run_point, args=(CFG, "probing-0.2", 6), rounds=1, iterations=1
    )
    result = fig8_result
    by_label = {s.label: s for s in result.series}
    mean = lambda s: float(np.mean(s.y))

    # the paper's ranking must hold on average over the sweep
    assert mean(by_label["probing-0.2"]) >= mean(by_label["probing-0.1"]) - 0.05
    assert mean(by_label["probing-0.2"]) >= mean(by_label["random"])
    assert mean(by_label["random"]) >= mean(by_label["static"])
    # probing-0.2 is near-optimal (within 15 points on average)
    assert mean(by_label["optimal"]) - mean(by_label["probing-0.2"]) <= 0.15
    # success degrades (or at least never improves much) with workload
    spider = by_label["probing-0.2"].y
    assert spider[-1] <= spider[0] + 0.05

    benchmark.extra_info["series"] = {
        s.label: list(zip(s.x, s.y)) for s in result.series
    }
    benchmark.extra_info["messages_per_request"] = result.messages_per_request
    save_table(results_dir, "fig8_success_ratio", result.table())
