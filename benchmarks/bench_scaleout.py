"""Scale-out benchmark: goodput and tail latency under overload.

Drives the multi-process harness (:mod:`repro.net.scaleout`) through a
matrix of cluster sizes and offered loads, with the admission guard on
and off at each point, and writes ``benchmarks/BENCH_scaleout.json``.
The claim under test is the overload-survival one:

* **admission off** — past saturation every arriving session opens a
  collection window and fans out probes; goodput collapses and the p99
  of the requests that *do* finish grows toward the timeout;
* **admission on** — excess sessions are refused with a ``Busy`` frame
  in the begin reply (one control round trip, no state), so the
  admitted sessions keep completing: higher goodput, bounded p99, and
  shed latencies that look like an RPC, not like a timeout.

Run directly (CI runs ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_scaleout.py
    PYTHONPATH=src python benchmarks/bench_scaleout.py --peers 16 --peers 48 --peers 96
    PYTHONPATH=src python benchmarks/bench_scaleout.py --smoke

The default matrix is {16, 48} peers — sized so a single-core CI box
still measures the *protocol* under overload rather than pure CPU
timesharing.  The harness itself scales further: pass ``--peers 96``
(or more) on a machine with enough cores for one per worker process.

``--smoke`` is the CI gate: one small 2-process cluster, one burst
above the admission limit, exits nonzero on any worker crash/daemon
error or if nothing was shed (i.e. the guard did not engage).

Exit codes: 0 ok, 1 crash/daemon errors (or smoke-gate failure).
"""

from __future__ import annotations

import argparse
import asyncio
import datetime
import json
import os
import pathlib
import sys
from typing import Dict, List, Optional

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.net import AdmissionConfig  # noqa: E402
from repro.net.scaleout import (  # noqa: E402
    ScaleoutConfig,
    ScaleoutController,
)

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_scaleout.json"

# the admission point used at every matrix cell (rpc throttle off: the
# session/probe guards are what the experiment isolates)
ADMISSION = AdmissionConfig(
    enabled=True, max_sessions=3, probe_soft_limit=24, max_probe_tasks=48
)


def _port_base(slot: int) -> int:
    # distinct window per cell and per invoking process, so back-to-back
    # runs and parallel CI shards never contend on listeners; kept below
    # the ephemeral range (32768+) so a transient outbound connection
    # can never squat on a listener port
    return 10000 + (os.getpid() * 131 + slot * 997) % 19000


async def run_cell(
    peers: int,
    procs: int,
    rate: float,
    admission: Optional[AdmissionConfig],
    duration: float,
    slot: int,
    seed: int = 2,
) -> Dict[str, object]:
    cfg = ScaleoutConfig(
        n_peers=peers,
        n_functions=max(6, peers // 8),
        procs=procs,
        port_base=_port_base(slot),
        seed=seed,
        capacity_scale=4.0,
        rate=rate,
        duration=duration,
        confirm=False,
        request_timeout=6.0,
        collect_wall_timeout=2.0,
        measure=False,  # isolate composition load from probe traffic
        admission=admission,
    )
    report = await ScaleoutController(cfg).run()
    s = report["summary"]
    return {
        "peers": peers,
        "procs": procs,
        "offered_rate": rate,
        "admission": admission is not None,
        "offered": s["offered"],
        "ok": s["ok"],
        "busy": s["busy"],
        "failed": s["failed"],
        "error": s["error"],
        "goodput": round(s["goodput"], 2),
        "shed_rate": round(s["shed_rate"], 4),
        "failure_rate": round(s["failure_rate"], 4),
        "ok_p50_ms": round(s["latency_ok"]["p50"] * 1000, 1),
        "ok_p99_ms": round(s["latency_ok"]["p99"] * 1000, 1),
        "busy_p50_ms": round(s["latency_busy"]["p50"] * 1000, 1),
        "busy_p99_ms": round(s["latency_busy"]["p99"] * 1000, 1),
        "probes_shed": report["admission"]["probes_shed"],
        "sessions_rejected": report["admission"]["sessions_rejected"],
        "daemon_errors": len(report["errors"]),
    }


def _print_cell(cell: Dict[str, object]) -> None:
    mode = "adm on " if cell["admission"] else "adm off"
    print(
        f"  {cell['peers']:>3}p/{cell['procs']}proc @{cell['offered_rate']:>5g}/s "
        f"{mode}: goodput {cell['goodput']:>6.1f}/s  "
        f"ok p50/p99 {cell['ok_p50_ms']:>6.1f}/{cell['ok_p99_ms']:>7.1f} ms  "
        f"shed {cell['busy']:>4} (p99 {cell['busy_p99_ms']:.1f} ms)  "
        f"fail {cell['failure_rate']:.1%}",
        flush=True,
    )


async def run_matrix(
    peer_points: List[int], duration: float
) -> List[Dict[str, object]]:
    """For each cluster size: a moderate and an overload rate, admission
    off and on at each — the four corners the headline claim needs."""
    cells: List[Dict[str, object]] = []
    slot = 0
    for peers in peer_points:
        procs = max(2, min(6, peers // 12))
        moderate = peers * 0.5
        overload = peers * 3.0
        for rate in (moderate, overload):
            for admission in (None, ADMISSION):
                cell = await run_cell(
                    peers, procs, rate, admission, duration, slot
                )
                slot += 1
                cells.append(cell)
                _print_cell(cell)
    return cells


def check_claims(cells: List[Dict[str, object]]) -> List[str]:
    """The acceptance criteria, evaluated on the overload cells."""
    problems: List[str] = []
    if any(c["daemon_errors"] for c in cells):
        problems.append("daemon errors recorded")
    by_key = {(c["peers"], c["offered_rate"], c["admission"]): c for c in cells}
    for (peers, rate, adm), on in by_key.items():
        if not adm:
            continue
        off = by_key.get((peers, rate, False))
        if off is None or rate <= peers:  # only judge the overload cells
            continue
        if on["busy"] == 0:
            problems.append(f"{peers}p@{rate}: admission never engaged")
            continue
        if on["goodput"] < off["goodput"]:
            problems.append(
                f"{peers}p@{rate}: admission-on goodput {on['goodput']} "
                f"below admission-off {off['goodput']}"
            )
        # a shed is one control round trip, not a timed-out session:
        # fast in absolute terms, or — when the box itself is saturated
        # and every RPC queues behind a busy event loop — clearly
        # faster than the cell's own *median successful* compose
        # (which takes several probe-wave round trips)
        ceiling = max(500.0, 0.5 * on["ok_p50_ms"])
        if on["busy_p99_ms"] > ceiling:
            problems.append(
                f"{peers}p@{rate}: shed p99 {on['busy_p99_ms']} ms is not "
                f"fast (ceiling {ceiling:.0f} ms)"
            )
    return problems


async def run_smoke() -> int:
    """CI gate: small 2-process cluster, burst above the admission
    limit; fails on any crash or if nothing was shed."""
    cell = await run_cell(
        peers=8,
        procs=2,
        rate=24.0,
        admission=AdmissionConfig(enabled=True, max_sessions=1),
        duration=2.5,
        slot=77,
    )
    _print_cell(cell)
    ok = True
    if cell["daemon_errors"]:
        print(f"SMOKE FAIL: {cell['daemon_errors']} daemon errors")
        ok = False
    if cell["busy"] == 0:
        print("SMOKE FAIL: burst above the admission limit shed nothing")
        ok = False
    if cell["ok"] == 0:
        print("SMOKE FAIL: no composition succeeded")
        ok = False
    if cell["busy_p99_ms"] > 1000.0:
        print(f"SMOKE FAIL: shed p99 {cell['busy_p99_ms']} ms (not fast rejection)")
        ok = False
    print("smoke ok" if ok else "smoke FAILED")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--peers",
        type=int,
        action="append",
        default=None,
        help="cluster size matrix point (repeatable; default 16, 48; "
        "larger points want a core per worker process)",
    )
    parser.add_argument(
        "--duration", type=float, default=5.0, help="load seconds per cell"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: one small over-limit burst, gate on shed>0 + no crashes",
    )
    parser.add_argument(
        "--note", default=os.environ.get("BENCH_NOTE", ""), help="entry tag"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return asyncio.run(run_smoke())
    peer_points = args.peers or [16, 48]
    print(f"scale-out matrix: peers {peer_points}, {args.duration:g}s per cell")
    cells = asyncio.run(run_matrix(peer_points, args.duration))
    problems = check_claims(cells)
    entry = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "note": args.note,
        "duration_per_cell": args.duration,
        "admission_config": {
            "max_sessions": ADMISSION.max_sessions,
            "probe_soft_limit": ADMISSION.probe_soft_limit,
            "max_probe_tasks": ADMISSION.max_probe_tasks,
        },
        "cells": cells,
        "problems": problems,
    }
    history = []
    if BENCH_JSON.exists():
        try:
            history = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            history = []
    history.append(entry)
    BENCH_JSON.write_text(json.dumps(history, indent=2) + "\n")
    print(f"wrote {BENCH_JSON.name} ({len(cells)} cells)")
    if problems:
        for p in problems:
            print(f"PROBLEM: {p}")
        return 1
    print("all overload claims hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
