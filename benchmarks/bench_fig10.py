"""Figure 10 bench: session setup time vs function number (WAN testbed).

Paper (§6.2): 102 PlanetLab hosts, six media functions, >500 requests;
setup time (discovery + composition + init) is a few seconds and grows
with the function count.

Bench scale: the full 102 peers (the experiment is cheap), 60 requests
per point.
"""

import pytest

from repro.experiments import Fig10Config, run_fig10

from conftest import save_table

CFG = Fig10Config(n_peers=102, function_numbers=(2, 3, 4, 5, 6), requests_per_point=60, seed=0)


@pytest.fixture(scope="module")
def fig10_result():
    return run_fig10(CFG)


def test_fig10_benchmark(benchmark, fig10_result, results_dir):
    from repro.experiments.fig10_setup_time import run_fig10 as run

    small = Fig10Config(n_peers=40, function_numbers=(3,), requests_per_point=10, seed=1)
    benchmark.pedantic(run, args=(small,), rounds=1, iterations=1)

    result = fig10_result
    disc, comp, total = result.series
    # monotone-ish growth with function number (allow small noise)
    assert total.y[-1] > total.y[0]
    assert all(t > 0 for t in total.y)
    # setup completes within a few seconds (paper: "several seconds")
    assert max(total.y) < 10_000  # ms
    # composition dominates discovery at larger function counts
    assert comp.y[-1] > disc.y[-1]

    benchmark.extra_info["series"] = {s.label: list(zip(s.x, s.y)) for s in result.series}
    save_table(results_dir, "fig10_setup_time", result.table())
