"""DHT bench: Pastry routing hop count grows logarithmically with ring size.

Pastry's core property — O(log_{2^b} N) routing — is what keeps service
discovery cheap at the paper's 1000-peer scale.  We measure mean hops at
growing ring sizes and check the growth is logarithmic, not linear.
"""

import math

import numpy as np
import pytest

from repro.dht.id_space import key_for
from repro.dht.pastry import PastryNetwork
from repro.topology.overlay import wan_overlay

from conftest import save_table

SIZES = (25, 50, 100, 200)
LOOKUPS = 150


def _mean_hops(n_peers: int, seed: int = 0) -> float:
    overlay = wan_overlay(n_peers, rng=np.random.default_rng(seed))
    dht = PastryNetwork(overlay, rng=np.random.default_rng(seed + 1))
    dht.build()
    rng = np.random.default_rng(seed + 2)
    hops = []
    for i in range(LOOKUPS):
        key = key_for(f"service-{i}")
        origin = int(rng.integers(0, n_peers))
        hops.append(dht.route(key, origin_peer=origin).hop_count)
    return float(np.mean(hops))


@pytest.fixture(scope="module")
def hop_curve():
    return {n: _mean_hops(n) for n in SIZES}


def test_dht_hop_scaling_benchmark(benchmark, hop_curve, results_dir):
    benchmark.pedantic(_mean_hops, args=(SIZES[0], 3), rounds=1, iterations=1)

    # hop counts grow, but far slower than the ring (log, not linear):
    # ring grows 8x, hops must grow by less than 3x and stay near
    # log16(N) + a small constant
    assert hop_curve[SIZES[-1]] <= 3.0 * max(hop_curve[SIZES[0]], 0.5)
    for n in SIZES:
        assert hop_curve[n] <= math.log(n, 16) + 2.5
    # routing does take multiple hops at scale (it is not a lookup table)
    assert hop_curve[SIZES[-1]] >= 1.0

    lines = [f"{'peers':>6s}  {'mean hops':>9s}  {'log16(N)':>8s}"]
    for n in SIZES:
        lines.append(f"{n:>6d}  {hop_curve[n]:>9.2f}  {math.log(n, 16):>8.2f}")
    benchmark.extra_info["hops"] = hop_curve
    save_table(results_dir, "dht_hop_scaling", "\n".join(lines))
