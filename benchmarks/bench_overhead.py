"""§6.1 overhead bench: BCP vs centralized global-state maintenance.

Paper: "Compared to the global-view-based centralized scheme, SpiderNet
can achieve similar performance but with more than one order of
magnitude less overhead."  We count every protocol message on both sides
of an identical workload and report the ratio.
"""

import pytest

from repro.experiments import OverheadConfig, run_overhead

from conftest import save_table

CFG = OverheadConfig(
    n_ip=500, n_peers=100, n_functions=25, duration=20, workload=3, seed=0
)


@pytest.fixture(scope="module")
def overhead_result():
    return run_overhead(CFG)


def test_overhead_benchmark(benchmark, overhead_result, results_dir):
    small = OverheadConfig(
        n_ip=150, n_peers=30, n_functions=10, duration=5, workload=2, seed=1
    )
    benchmark.pedantic(run_overhead, args=(small,), rounds=1, iterations=1)

    result = overhead_result
    # the headline claim: more than one order of magnitude
    assert result.overhead_ratio > 10.0
    # "similar performance": success ratios within 10 points
    assert abs(result.bcp_success - result.centralized_success) <= 0.10

    benchmark.extra_info["overhead_ratio"] = result.overhead_ratio
    benchmark.extra_info["bcp_success"] = result.bcp_success
    benchmark.extra_info["centralized_success"] = result.centralized_success
    save_table(results_dir, "overhead_comparison", result.table())
