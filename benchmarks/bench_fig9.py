"""Figure 9 bench: failure frequency with vs without proactive recovery.

Paper (§6.1): 1 % of peers fail per time unit over 60 minutes; with an
average of 2.74 backup graphs per session the proactive scheme recovers
almost all failures (the "with recovery" curve hugs zero).

Bench scale: 100 peers, 30 minutes, ~25 concurrent sessions.
"""

import pytest

from repro.experiments import Fig9Config, run_fig9

from conftest import save_table

CFG = Fig9Config(
    n_ip=500,
    n_peers=100,
    n_functions=25,
    duration_minutes=30,
    churn_fraction=0.01,
    target_sessions=25,
    budget=64,
    seed=0,
)


@pytest.fixture(scope="module")
def fig9_result():
    return run_fig9(CFG)


def test_fig9_benchmark(benchmark, fig9_result, results_dir):
    from repro.experiments.fig9_failure_recovery import _run_mode

    small = Fig9Config(
        n_ip=200, n_peers=40, n_functions=12, duration_minutes=10,
        target_sessions=8, budget=32, seed=1,
    )
    benchmark.pedantic(_run_mode, args=(small, True), rounds=1, iterations=1)

    result = fig9_result
    without, with_rec = result.series
    # the paper's claim: proactive recovery removes (nearly) all
    # user-visible failures; without recovery they keep occurring
    assert sum(without.y) > 0
    assert sum(with_rec.y) <= 0.25 * sum(without.y)
    # recoveries actually happened and backups were maintained
    assert result.recovered_fraction >= 0.75
    assert result.mean_backups > 0.5  # paper: 2.74

    benchmark.extra_info["unrecovered_with"] = float(sum(with_rec.y))
    benchmark.extra_info["unrecovered_without"] = float(sum(without.y))
    benchmark.extra_info["mean_backups"] = result.mean_backups
    summary = (
        f"total user-visible failures: without recovery = {sum(without.y):.0f}, "
        f"with proactive recovery = {sum(with_rec.y):.0f}\n"
        f"mean backups/session = {result.mean_backups:.2f} (paper: 2.74)\n"
        f"recovered fraction = {result.recovered_fraction:.3f}\n\n"
    )
    save_table(results_dir, "fig9_failure_recovery", summary + result.table())
