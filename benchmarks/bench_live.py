"""Live-path throughput benchmark: sustained concurrent compose sessions.

Boots a :class:`~repro.net.LiveCluster` and drives overlapping compose
sessions through it, reporting compose/sec and p50/p99 session setup
latency per transport.  This is the end-to-end counterpart of
``bench_micro.py``: it times the *wire* path (codec, transport, RPC,
daemon scheduling), not the composition algorithm.

Run directly (CI runs ``--quick`` on both transports)::

    PYTHONPATH=src python benchmarks/bench_live.py --quick
    PYTHONPATH=src python benchmarks/bench_live.py --transport tcp --sessions 16
    BENCH_NOTE="after wire fast path" PYTHONPATH=src \
        python benchmarks/bench_live.py --record

Each run starts with a small *sequential parity phase* — the same
requests composed by the synchronous BCP and over the wire must select
bit-identical service graphs — so a throughput number can never be
bought with a correctness regression.  Exit codes: 0 ok, 1 crash or
leaked state, 2 parity violation.

``--record`` appends an entry to ``benchmarks/BENCH_live.json`` so the
file accumulates a before/after trajectory across commits (tag entries
with ``--note`` or ``BENCH_NOTE``).

The script feature-detects optional :class:`ClusterConfig` knobs
(``wire_version``, ``coalesce_writes``, ``directory_tier``) so one
harness can measure builds with and without the wire fast path or the
directory acceleration tier.

The **hot-function phase** (skippable with ``--no-hot``) repeatedly
composes one request shape — the workload the directory tier is built
for — once with the tier on and once off, and reports the compose/sec
speedup plus the measured ``dht_route`` charges per compose.  It runs
over emulated topology latency (the modeled overlay link delays, scaled
to wall milliseconds) on *both* transports, since flat localhost wires
hide exactly the remote-lookup cost the tier removes.  Crash and parity
gating applies; the speedup itself is informational per run and
asserted in the recorded history.

The **link-degradation phase** (skippable with ``--no-degrade``)
exercises the topology measurement plane: over the same emulated
topology latency it lets per-link RTT baselines settle, inflates the
wire delay of the first link on the source's static route mid-run, and
then measures how long the source daemon takes to reprice the link and
route around it (``reroute_s``), the converged RTT inflation ratio, and
compose/sec during the degraded window.  Builds without
``ClusterConfig.measurement`` skip the phase.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import datetime
import json
import os
import pathlib
import statistics
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.bcp import BCPConfig, NextHopWeights  # noqa: E402
from repro.net import ClusterConfig, LiveCluster  # noqa: E402

BENCH_LIVE_JSON = pathlib.Path(__file__).parent / "BENCH_live.json"

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(ClusterConfig)}


def make_cluster_config(**kwargs) -> ClusterConfig:
    """Build a ClusterConfig, dropping knobs this build does not have."""
    return ClusterConfig(**{k: v for k, v in kwargs.items() if k in _CONFIG_FIELDS})


def quantile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(int(round(q * (len(ordered) - 1))), len(ordered) - 1)
    return ordered[idx]


@dataclasses.dataclass
class BenchParams:
    transport: str
    peers: int = 10
    sessions: int = 16
    requests: int = 64
    parity_requests: int = 4
    seed: int = 11
    distributed: bool = True
    wire_version: Optional[int] = None
    coalesce: Optional[bool] = None


# hot-function phase geometry (see run_hot_function).  The emulated
# one-way wire delay is the *modeled* overlay latency scaled into wall
# milliseconds.  The topology seed, request endpoints and population
# density are pinned (independently of ``--seed``) to a geometry where
# the hot chain's directory owners are genuinely remote from the
# service path — the configuration the tier exists for; sparser or
# luckier placements self-serve most lookups and show ~1.2-1.4x.
HOT_PEERS = 5
HOT_SEED = 3
HOT_SOURCE = 2
HOT_DEST = 4
HOT_COMPONENTS = (4, 6)
HOT_WARMUP = 2
TOPOLOGY_LATENCY_SCALE = 0.05

# link-degradation phase (see run_degradation): multiply the wire delay
# of one hot link by this factor mid-run and watch the measurement
# plane reprice it.  6x clears the plane's materiality gate (ratio 1.5)
# with a wide margin, so convergence speed — not threshold luck — is
# what the phase measures.
DEGRADE_FACTOR = 6.0
DEGRADE_PROBE_INTERVAL = 0.05
DEGRADE_CONVERGE_TIMEOUT = 10.0


async def run_hot_function(params: BenchParams, cache_on: bool, shared: Dict) -> Dict:
    """Hot-function pass: the same request shape composed repeatedly.

    This is the workload ISSUE's directory tier targets: every compose
    resolves the same few function keys, so with the tier on the first
    compose pays the DHT routes and every later one hits peer-local
    caches.  Reports compose/sec and the ``dht_route`` charges actually
    booked per compose.

    Unlike the concurrent load phase, this one emulates the *modeled*
    overlay link delays on the wire (scaled by
    ``TOPOLOGY_LATENCY_SCALE``): localhost transports are effectively
    zero-latency, which hides exactly the cost the directory tier
    removes.  BCP deliberately selects low-delay links for the service
    path, but has no say over where the DHT places directory slices —
    so lookups pay average topology edges while probes travel cheap
    ones.  Sessions run sequentially (one client stream: latency is the
    point, concurrency would mask it) and ``HOT_WARMUP`` composes are
    excluded from the timed window, so the numbers are steady-state;
    first-touch composes pay the routes either way.

    Both cache passes reuse one scenario (via ``shared``) so they drive
    identical populations over identical emulated links.
    """
    try:
        from repro.net import DirectoryTierConfig
    except ImportError:  # pre-tier build: only the baseline is measurable
        if cache_on:
            return {}
        tier = None
    else:
        tier = DirectoryTierConfig(enabled=cache_on)
    overrides = {}
    if params.wire_version is not None:
        overrides["wire_version"] = params.wire_version
    if params.coalesce is not None:
        overrides["coalesce_writes"] = params.coalesce

    def hot_config(**extra) -> ClusterConfig:
        return make_cluster_config(
            n_peers=HOT_PEERS,
            n_functions=6,
            transport=params.transport,
            seed=HOT_SEED,
            distributed=True,
            components_per_peer=HOT_COMPONENTS,
            bcp_config=BCPConfig(
                budget=32,
                nexthop_weights=NextHopWeights(delay=0.6, bandwidth=0.0, failure=0.4),
            ),
            capacity_scale=50.0,  # repeats must not exhaust the hot components
            directory_tier=tier,
            **overrides,
            **extra,
        )

    if "scenario" not in shared:
        shared["scenario"] = LiveCluster(hot_config()).scenario
        # the generator is stateful: draw the hot request shape once so
        # both cache passes replay the identical workload
        shared["template"] = shared["scenario"].requests.next_request(
            source=HOT_SOURCE, dest=HOT_DEST
        )
    scenario = shared["scenario"]
    overlay = scenario.overlay

    def wire_delay(src: int, dst: int) -> float:
        if src == dst or not (0 <= src < HOT_PEERS and 0 <= dst < HOT_PEERS):
            return 0.0
        return overlay.latency(src, dst) * TOPOLOGY_LATENCY_SCALE

    cluster = LiveCluster(hot_config(latency=wire_delay), scenario=scenario)
    template = shared["template"]
    # same function graph / endpoints every time, distinct request ids
    requests = [
        dataclasses.replace(template, request_id=10_000_000 + i)
        for i in range(HOT_WARMUP + params.requests)
    ]

    latencies: List[float] = []
    outcomes: List[bool] = []
    async with cluster:
        for req in requests[:HOT_WARMUP]:
            await cluster.compose(req, confirm=False, timeout=120)
        snap = cluster.ledger.snapshot()
        t_load = time.perf_counter()
        for req in requests[HOT_WARMUP:]:
            t0 = time.perf_counter()
            result = await cluster.compose(req, confirm=False, timeout=120)
            latencies.append(time.perf_counter() - t0)
            outcomes.append(result.success)
        wall = time.perf_counter() - t_load
        delta = cluster.ledger.delta_since(snap)
        errors = cluster.errors()
        dir_stats = (
            cluster.directory_stats() if hasattr(cluster, "directory_stats") else {}
        )

    n = params.requests
    routes = delta.get("dht_route", (0, 0))[0]
    return {
        "cache": cache_on,
        "peers": HOT_PEERS,
        "seed": HOT_SEED,
        "requests": n,
        "warmup": HOT_WARMUP,
        "latency_scale": TOPOLOGY_LATENCY_SCALE,
        "wall_s": round(wall, 4),
        "compose_per_sec": round(n / wall, 2) if wall > 0 else 0.0,
        "p50_ms": round(quantile(latencies, 0.50) * 1e3, 2),
        "dht_route_per_compose": round(routes / n, 2) if n else 0.0,
        "compose_failures": sum(1 for ok in outcomes if not ok),
        "cache_hits": dir_stats.get("cache_hits", 0),
        "cache_hit_rate": round(dir_stats.get("hit_rate", 0.0), 3),
        "daemon_errors": errors,
    }


async def run_degradation(params: BenchParams, quick: bool) -> Dict:
    """Link-degradation pass: measure the plane's reroute reaction time.

    Uses the hot-function geometry (pinned seed, emulated topology
    latency) so the degraded link is genuinely on the service path.
    Timeline: warm up until RTT baselines lock, time a healthy compose
    window, inflate the wire delay of the first static-route link by
    ``DEGRADE_FACTOR``, then compose in a tight loop until the source
    daemon's measured view routes around the link (``reroute_s``) and
    time a degraded compose window.  Convergence is driven by both
    active probes (``DEGRADE_PROBE_INTERVAL``) and the passive samples
    the composes themselves piggyback.

    Returns ``{}`` on builds without ``ClusterConfig.measurement``.
    ``rerouted`` is informational — a topology without a cheaper
    alternative path legitimately keeps the link — but crash gating
    (daemon errors, failed composes) applies like every other phase,
    with one carve-out: composes issued inside the convergence window
    may legitimately miss their QoS delay bound while the only known
    route is still priced at the degraded latency, so those failures
    are reported (``converge_failures``) but not gated on.
    """
    if "measurement" not in _CONFIG_FIELDS:
        return {}
    from repro.net import MeasurementConfig

    overrides = {}
    if params.wire_version is not None:
        overrides["wire_version"] = params.wire_version
    if params.coalesce is not None:
        overrides["coalesce_writes"] = params.coalesce

    def deg_config(**extra) -> ClusterConfig:
        return make_cluster_config(
            n_peers=HOT_PEERS,
            n_functions=6,
            transport=params.transport,
            seed=HOT_SEED,
            distributed=True,
            components_per_peer=HOT_COMPONENTS,
            bcp_config=BCPConfig(
                budget=32,
                nexthop_weights=NextHopWeights(delay=0.6, bandwidth=0.0, failure=0.4),
            ),
            capacity_scale=50.0,
            measurement=MeasurementConfig(probe_interval=DEGRADE_PROBE_INTERVAL),
            **overrides,
            **extra,
        )

    scenario = LiveCluster(deg_config()).scenario
    overlay = scenario.overlay
    template = scenario.requests.next_request(source=HOT_SOURCE, dest=HOT_DEST)

    static_path = overlay.router.path(HOT_SOURCE, HOT_DEST)
    if len(static_path) < 2:
        return {}
    hot_link = tuple(sorted(static_path[:2]))
    neighbour = hot_link[0] if hot_link[1] == HOT_SOURCE else hot_link[1]

    degraded: Dict[tuple, float] = {}

    def wire_delay(src: int, dst: int) -> float:
        if src == dst or not (0 <= src < HOT_PEERS and 0 <= dst < HOT_PEERS):
            return 0.0
        base = overlay.latency(src, dst) * TOPOLOGY_LATENCY_SCALE
        link = (src, dst) if src < dst else (dst, src)
        return base * degraded.get(link, 1.0)

    cluster = LiveCluster(deg_config(latency=wire_delay), scenario=scenario)
    n = 8 if quick else 24
    next_id = 20_000_000

    def fresh_request():
        nonlocal next_id
        next_id += 1
        return dataclasses.replace(template, request_id=next_id)

    def path_links(path) -> set:
        return {tuple(sorted(pair)) for pair in zip(path, path[1:])}

    result: Dict = {
        "peers": HOT_PEERS,
        "seed": HOT_SEED,
        "degraded_link": list(hot_link),
        "degrade_factor": DEGRADE_FACTOR,
        "latency_scale": TOPOLOGY_LATENCY_SCALE,
        "requests_per_phase": n,
    }
    failures = 0
    async with cluster:
        plane = cluster.daemons[HOT_SOURCE].measurement
        view = plane.view
        # settle: composes feed passive samples, the probe loop feeds
        # active ones; baselines lock after the estimator warm-up
        for _ in range(HOT_WARMUP):
            r = await cluster.compose(fresh_request(), confirm=False, timeout=120)
            failures += 0 if r.success else 1
        await asyncio.sleep(DEGRADE_PROBE_INTERVAL * 8)
        before = plane.stats()["links"].get(neighbour, {})

        t0 = time.perf_counter()
        for _ in range(n):
            r = await cluster.compose(fresh_request(), confirm=False, timeout=120)
            failures += 0 if r.success else 1
        healthy_wall = time.perf_counter() - t0

        degraded[hot_link] = DEGRADE_FACTOR
        t_deg = time.perf_counter()
        reroute_s = None
        converge_failures = 0
        while time.perf_counter() - t_deg < DEGRADE_CONVERGE_TIMEOUT:
            r = await cluster.compose(fresh_request(), confirm=False, timeout=120)
            converge_failures += 0 if r.success else 1
            if hot_link not in path_links(view.router.path(HOT_SOURCE, HOT_DEST)):
                reroute_s = time.perf_counter() - t_deg
                break
            await asyncio.sleep(DEGRADE_PROBE_INTERVAL)

        t1 = time.perf_counter()
        for _ in range(n):
            r = await cluster.compose(fresh_request(), confirm=False, timeout=120)
            failures += 0 if r.success else 1
        degraded_wall = time.perf_counter() - t1

        stats = plane.stats()
        after = stats["links"].get(neighbour, {})
        errors = cluster.errors()

    result.update(
        {
            "baseline_rtt_ms": round(before.get("baseline", 0.0) * 1e3, 3),
            "converged_rtt_ms": round(after.get("srtt", 0.0) * 1e3, 3),
            "converged_ratio": after.get("ratio", 0.0),
            "rerouted": reroute_s is not None,
            "reroute_s": round(reroute_s, 3) if reroute_s is not None else None,
            "healthy_compose_per_sec": (
                round(n / healthy_wall, 2) if healthy_wall > 0 else 0.0
            ),
            "degraded_compose_per_sec": (
                round(n / degraded_wall, 2) if degraded_wall > 0 else 0.0
            ),
            "probes_sent": stats["probes_sent"],
            "reprices": stats["reprices"],
            "router_rebuilds": stats["router_rebuilds"],
            "compose_failures": failures,
            "converge_failures": converge_failures,
            "daemon_errors": errors,
        }
    )
    return result


async def run_transport(params: BenchParams) -> Dict:
    """One transport's full pass: parity phase, then the concurrent load."""
    overrides = {}
    if params.wire_version is not None:
        overrides["wire_version"] = params.wire_version
    if params.coalesce is not None:
        overrides["coalesce_writes"] = params.coalesce
    cfg = make_cluster_config(
        n_peers=params.peers,
        n_functions=6,
        transport=params.transport,
        seed=params.seed,
        distributed=params.distributed,
        # bandwidth=0 keeps next-hop scoring independent of mid-wave pool
        # state, which is what makes the sequential parity phase exact
        # (same reasoning as tests/test_net_parity.py).
        bcp_config=BCPConfig(
            budget=32,
            nexthop_weights=NextHopWeights(delay=0.6, bandwidth=0.0, failure=0.4),
        ),
        capacity_scale=10.0,
        **overrides,
    )
    cluster = LiveCluster(cfg)
    requests = cluster.scenario.requests.batch(params.parity_requests + params.requests)
    parity_reqs = requests[: params.parity_requests]
    load_reqs = requests[params.parity_requests :]

    # the sync reference pass runs before the cluster seals shared state
    expected = [
        cluster.scenario.net.bcp.compose(r, confirm=False) for r in parity_reqs
    ]

    parity_failures: List[str] = []
    latencies: List[float] = []
    failures = 0

    async with cluster:
        for sync_r, req in zip(expected, parity_reqs):
            live_r = await cluster.compose(req, confirm=False, timeout=60)
            rid = req.request_id
            if live_r.success != sync_r.success:
                parity_failures.append(f"request {rid}: success diverged")
            elif sync_r.success and live_r.best.signature() != sync_r.best.signature():
                parity_failures.append(f"request {rid}: selected graph diverged")
            elif live_r.probes_sent != sync_r.probes_sent:
                parity_failures.append(f"request {rid}: probe count diverged")

        sem = asyncio.Semaphore(params.sessions)

        async def one(req) -> bool:
            async with sem:
                t0 = time.perf_counter()
                result = await cluster.compose(req, confirm=False, timeout=60)
                latencies.append(time.perf_counter() - t0)
                return result.success

        t_load = time.perf_counter()
        outcomes = await asyncio.gather(*(one(r) for r in load_reqs))
        wall = time.perf_counter() - t_load
        failures = sum(1 for ok in outcomes if not ok)
        errors = cluster.errors()
        leaked = cluster.soft_tokens()
        stats = cluster.rpc_stats()

    return {
        "transport": params.transport,
        "sessions": params.sessions,
        "requests": params.requests,
        "wall_s": round(wall, 4),
        "compose_per_sec": round(len(load_reqs) / wall, 2) if wall > 0 else 0.0,
        "p50_ms": round(quantile(latencies, 0.50) * 1e3, 2),
        "p99_ms": round(quantile(latencies, 0.99) * 1e3, 2),
        "compose_failures": failures,
        "frames_sent": stats["frames_sent"],
        "bytes_sent": stats["bytes_sent"],
        "rpc_retries": stats["retries_performed"],
        "daemon_errors": errors,
        "leaked_soft_tokens": {str(k): len(v) for k, v in leaked.items()},
        "parity_failures": parity_failures,
    }


def record_entry(note: str, quick: bool, results: Dict[str, Dict]) -> None:
    history = []
    if BENCH_LIVE_JSON.exists():
        try:
            history = json.loads(BENCH_LIVE_JSON.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(
        {
            "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
            "note": note,
            "quick": quick,
            "results": results,
        }
    )
    BENCH_LIVE_JSON.write_text(json.dumps(history, indent=2) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke-test scale: fewer peers/sessions/requests (what CI runs)",
    )
    parser.add_argument(
        "--transport", choices=("loopback", "tcp", "both"), default="both"
    )
    parser.add_argument("--peers", type=int, default=None)
    parser.add_argument("--sessions", type=int, default=None, help="concurrent sessions")
    parser.add_argument("--requests", type=int, default=None, help="total compositions")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--codec", type=int, default=None, metavar="V",
        help="wire version override (needs a build with the wire fast path)",
    )
    parser.add_argument(
        "--coalesce", type=int, choices=(0, 1), default=None,
        help="force write coalescing off/on (needs the wire fast path)",
    )
    parser.add_argument(
        "--no-distributed", dest="distributed", action="store_false", default=True
    )
    parser.add_argument(
        "--no-hot", dest="hot", action="store_false", default=True,
        help="skip the hot-function (directory-tier) phase",
    )
    parser.add_argument(
        "--no-degrade", dest="degrade", action="store_false", default=True,
        help="skip the link-degradation (measurement-plane) phase",
    )
    parser.add_argument(
        "--record", action="store_true",
        help="append results to benchmarks/BENCH_live.json",
    )
    parser.add_argument(
        "--note", default=os.environ.get("BENCH_NOTE", ""),
        help="tag for the recorded entry (default: $BENCH_NOTE)",
    )
    args = parser.parse_args(argv)

    peers = args.peers if args.peers is not None else (5 if args.quick else 10)
    sessions = args.sessions if args.sessions is not None else (4 if args.quick else 16)
    requests = args.requests if args.requests is not None else (8 if args.quick else 64)
    parity_n = 2 if args.quick else 4
    transports = ("loopback", "tcp") if args.transport == "both" else (args.transport,)

    for knob, field in (("codec", "wire_version"), ("coalesce", "coalesce_writes")):
        if getattr(args, knob) is not None and field not in _CONFIG_FIELDS:
            print(f"warning: this build has no ClusterConfig.{field}; "
                  f"--{knob} ignored", file=sys.stderr)

    results: Dict[str, Dict] = {}
    status = 0
    for transport in transports:
        params = BenchParams(
            transport=transport,
            peers=peers,
            sessions=sessions,
            requests=requests,
            parity_requests=parity_n,
            seed=args.seed,
            distributed=args.distributed,
            wire_version=args.codec,
            coalesce=None if args.coalesce is None else bool(args.coalesce),
        )
        print(f"[{transport}] {peers} peers, {sessions} concurrent sessions, "
              f"{requests} requests ...", flush=True)
        res = asyncio.run(run_transport(params))
        results[transport] = res
        print(
            f"[{transport}] {res['compose_per_sec']} compose/sec  "
            f"p50 {res['p50_ms']} ms  p99 {res['p99_ms']} ms  "
            f"({res['frames_sent']} frames, {res['bytes_sent']} bytes)"
        )
        if res["parity_failures"]:
            print(f"[{transport}] PARITY VIOLATION: {res['parity_failures']}",
                  file=sys.stderr)
            status = max(status, 2)
        if res["daemon_errors"] or res["leaked_soft_tokens"] or res["compose_failures"]:
            print(
                f"[{transport}] FAILURE: errors={res['daemon_errors']} "
                f"leaked={res['leaked_soft_tokens']} "
                f"failed_composes={res['compose_failures']}",
                file=sys.stderr,
            )
            status = max(status, 1)

        if args.hot and args.distributed:
            hot: Dict[str, Dict] = {}
            hot_shared: Dict = {}
            for cache_on in (True, False):
                hot_res = asyncio.run(run_hot_function(params, cache_on, hot_shared))
                if not hot_res:
                    continue  # pre-tier build: no cached variant to run
                hot["cache_on" if cache_on else "cache_off"] = hot_res
                if hot_res["daemon_errors"] or hot_res["compose_failures"]:
                    print(
                        f"[{transport}] hot-function FAILURE: "
                        f"errors={hot_res['daemon_errors']} "
                        f"failed_composes={hot_res['compose_failures']}",
                        file=sys.stderr,
                    )
                    status = max(status, 1)
            if "cache_on" in hot and "cache_off" in hot:
                on, off = hot["cache_on"], hot["cache_off"]
                speedup = (
                    on["compose_per_sec"] / off["compose_per_sec"]
                    if off["compose_per_sec"] else 0.0
                )
                hot["speedup"] = round(speedup, 2)
                hot["dht_route_saved_per_compose"] = round(
                    off["dht_route_per_compose"] - on["dht_route_per_compose"], 2
                )
                print(
                    f"[{transport}] hot-function: "
                    f"{on['compose_per_sec']} vs {off['compose_per_sec']} "
                    f"compose/sec (speedup {hot['speedup']}x), "
                    f"dht_route/compose {on['dht_route_per_compose']} vs "
                    f"{off['dht_route_per_compose']} "
                    f"(hit rate {on['cache_hit_rate']:.1%})"
                )
                res["hot_function"] = hot

        if args.degrade and args.distributed:
            deg = asyncio.run(run_degradation(params, args.quick))
            if deg:
                res["degradation"] = deg
                reroute = (
                    f"rerouted in {deg['reroute_s']} s"
                    if deg["rerouted"]
                    else "did not reroute"
                )
                print(
                    f"[{transport}] degradation: link {deg['degraded_link']} "
                    f"x{deg['degrade_factor']:.0f} -> ratio "
                    f"{deg['converged_ratio']}, {reroute}, "
                    f"{deg['degraded_compose_per_sec']} compose/sec degraded "
                    f"(healthy {deg['healthy_compose_per_sec']})"
                )
                if deg["daemon_errors"] or deg["compose_failures"]:
                    print(
                        f"[{transport}] degradation FAILURE: "
                        f"errors={deg['daemon_errors']} "
                        f"failed_composes={deg['compose_failures']}",
                        file=sys.stderr,
                    )
                    status = max(status, 1)

    if args.record and results:
        record_entry(args.note, args.quick, results)
        print(f"recorded entry in {BENCH_LIVE_JSON.name}")
    return status


if __name__ == "__main__":
    sys.exit(main())
