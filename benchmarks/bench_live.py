"""Live-path throughput benchmark: sustained concurrent compose sessions.

Boots a :class:`~repro.net.LiveCluster` and drives overlapping compose
sessions through it, reporting compose/sec and p50/p99 session setup
latency per transport.  This is the end-to-end counterpart of
``bench_micro.py``: it times the *wire* path (codec, transport, RPC,
daemon scheduling), not the composition algorithm.

Run directly (CI runs ``--quick`` on both transports)::

    PYTHONPATH=src python benchmarks/bench_live.py --quick
    PYTHONPATH=src python benchmarks/bench_live.py --transport tcp --sessions 16
    BENCH_NOTE="after wire fast path" PYTHONPATH=src \
        python benchmarks/bench_live.py --record

Each run starts with a small *sequential parity phase* — the same
requests composed by the synchronous BCP and over the wire must select
bit-identical service graphs — so a throughput number can never be
bought with a correctness regression.  Exit codes: 0 ok, 1 crash or
leaked state, 2 parity violation.

``--record`` appends an entry to ``benchmarks/BENCH_live.json`` so the
file accumulates a before/after trajectory across commits (tag entries
with ``--note`` or ``BENCH_NOTE``).

The script feature-detects optional :class:`ClusterConfig` knobs
(``wire_version``, ``coalesce_writes``) so one harness can measure
builds with and without the wire fast path.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import datetime
import json
import os
import pathlib
import statistics
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.bcp import BCPConfig, NextHopWeights  # noqa: E402
from repro.net import ClusterConfig, LiveCluster  # noqa: E402

BENCH_LIVE_JSON = pathlib.Path(__file__).parent / "BENCH_live.json"

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(ClusterConfig)}


def make_cluster_config(**kwargs) -> ClusterConfig:
    """Build a ClusterConfig, dropping knobs this build does not have."""
    return ClusterConfig(**{k: v for k, v in kwargs.items() if k in _CONFIG_FIELDS})


def quantile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(int(round(q * (len(ordered) - 1))), len(ordered) - 1)
    return ordered[idx]


@dataclasses.dataclass
class BenchParams:
    transport: str
    peers: int = 10
    sessions: int = 16
    requests: int = 64
    parity_requests: int = 4
    seed: int = 11
    distributed: bool = True
    wire_version: Optional[int] = None
    coalesce: Optional[bool] = None


async def run_transport(params: BenchParams) -> Dict:
    """One transport's full pass: parity phase, then the concurrent load."""
    overrides = {}
    if params.wire_version is not None:
        overrides["wire_version"] = params.wire_version
    if params.coalesce is not None:
        overrides["coalesce_writes"] = params.coalesce
    cfg = make_cluster_config(
        n_peers=params.peers,
        n_functions=6,
        transport=params.transport,
        seed=params.seed,
        distributed=params.distributed,
        # bandwidth=0 keeps next-hop scoring independent of mid-wave pool
        # state, which is what makes the sequential parity phase exact
        # (same reasoning as tests/test_net_parity.py).
        bcp_config=BCPConfig(
            budget=32,
            nexthop_weights=NextHopWeights(delay=0.6, bandwidth=0.0, failure=0.4),
        ),
        capacity_scale=10.0,
        **overrides,
    )
    cluster = LiveCluster(cfg)
    requests = cluster.scenario.requests.batch(params.parity_requests + params.requests)
    parity_reqs = requests[: params.parity_requests]
    load_reqs = requests[params.parity_requests :]

    # the sync reference pass runs before the cluster seals shared state
    expected = [
        cluster.scenario.net.bcp.compose(r, confirm=False) for r in parity_reqs
    ]

    parity_failures: List[str] = []
    latencies: List[float] = []
    failures = 0

    async with cluster:
        for sync_r, req in zip(expected, parity_reqs):
            live_r = await cluster.compose(req, confirm=False, timeout=60)
            rid = req.request_id
            if live_r.success != sync_r.success:
                parity_failures.append(f"request {rid}: success diverged")
            elif sync_r.success and live_r.best.signature() != sync_r.best.signature():
                parity_failures.append(f"request {rid}: selected graph diverged")
            elif live_r.probes_sent != sync_r.probes_sent:
                parity_failures.append(f"request {rid}: probe count diverged")

        sem = asyncio.Semaphore(params.sessions)

        async def one(req) -> bool:
            async with sem:
                t0 = time.perf_counter()
                result = await cluster.compose(req, confirm=False, timeout=60)
                latencies.append(time.perf_counter() - t0)
                return result.success

        t_load = time.perf_counter()
        outcomes = await asyncio.gather(*(one(r) for r in load_reqs))
        wall = time.perf_counter() - t_load
        failures = sum(1 for ok in outcomes if not ok)
        errors = cluster.errors()
        leaked = cluster.soft_tokens()
        stats = cluster.rpc_stats()

    return {
        "transport": params.transport,
        "sessions": params.sessions,
        "requests": params.requests,
        "wall_s": round(wall, 4),
        "compose_per_sec": round(len(load_reqs) / wall, 2) if wall > 0 else 0.0,
        "p50_ms": round(quantile(latencies, 0.50) * 1e3, 2),
        "p99_ms": round(quantile(latencies, 0.99) * 1e3, 2),
        "compose_failures": failures,
        "frames_sent": stats["frames_sent"],
        "bytes_sent": stats["bytes_sent"],
        "rpc_retries": stats["retries_performed"],
        "daemon_errors": errors,
        "leaked_soft_tokens": {str(k): len(v) for k, v in leaked.items()},
        "parity_failures": parity_failures,
    }


def record_entry(note: str, quick: bool, results: Dict[str, Dict]) -> None:
    history = []
    if BENCH_LIVE_JSON.exists():
        try:
            history = json.loads(BENCH_LIVE_JSON.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(
        {
            "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
            "note": note,
            "quick": quick,
            "results": results,
        }
    )
    BENCH_LIVE_JSON.write_text(json.dumps(history, indent=2) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke-test scale: fewer peers/sessions/requests (what CI runs)",
    )
    parser.add_argument(
        "--transport", choices=("loopback", "tcp", "both"), default="both"
    )
    parser.add_argument("--peers", type=int, default=None)
    parser.add_argument("--sessions", type=int, default=None, help="concurrent sessions")
    parser.add_argument("--requests", type=int, default=None, help="total compositions")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--codec", type=int, default=None, metavar="V",
        help="wire version override (needs a build with the wire fast path)",
    )
    parser.add_argument(
        "--coalesce", type=int, choices=(0, 1), default=None,
        help="force write coalescing off/on (needs the wire fast path)",
    )
    parser.add_argument(
        "--no-distributed", dest="distributed", action="store_false", default=True
    )
    parser.add_argument(
        "--record", action="store_true",
        help="append results to benchmarks/BENCH_live.json",
    )
    parser.add_argument(
        "--note", default=os.environ.get("BENCH_NOTE", ""),
        help="tag for the recorded entry (default: $BENCH_NOTE)",
    )
    args = parser.parse_args(argv)

    peers = args.peers if args.peers is not None else (5 if args.quick else 10)
    sessions = args.sessions if args.sessions is not None else (4 if args.quick else 16)
    requests = args.requests if args.requests is not None else (8 if args.quick else 64)
    parity_n = 2 if args.quick else 4
    transports = ("loopback", "tcp") if args.transport == "both" else (args.transport,)

    for knob, field in (("codec", "wire_version"), ("coalesce", "coalesce_writes")):
        if getattr(args, knob) is not None and field not in _CONFIG_FIELDS:
            print(f"warning: this build has no ClusterConfig.{field}; "
                  f"--{knob} ignored", file=sys.stderr)

    results: Dict[str, Dict] = {}
    status = 0
    for transport in transports:
        params = BenchParams(
            transport=transport,
            peers=peers,
            sessions=sessions,
            requests=requests,
            parity_requests=parity_n,
            seed=args.seed,
            distributed=args.distributed,
            wire_version=args.codec,
            coalesce=None if args.coalesce is None else bool(args.coalesce),
        )
        print(f"[{transport}] {peers} peers, {sessions} concurrent sessions, "
              f"{requests} requests ...", flush=True)
        res = asyncio.run(run_transport(params))
        results[transport] = res
        print(
            f"[{transport}] {res['compose_per_sec']} compose/sec  "
            f"p50 {res['p50_ms']} ms  p99 {res['p99_ms']} ms  "
            f"({res['frames_sent']} frames, {res['bytes_sent']} bytes)"
        )
        if res["parity_failures"]:
            print(f"[{transport}] PARITY VIOLATION: {res['parity_failures']}",
                  file=sys.stderr)
            status = max(status, 2)
        if res["daemon_errors"] or res["leaked_soft_tokens"] or res["compose_failures"]:
            print(
                f"[{transport}] FAILURE: errors={res['daemon_errors']} "
                f"leaked={res['leaked_soft_tokens']} "
                f"failed_composes={res['compose_failures']}",
                file=sys.stderr,
            )
            status = max(status, 1)

    if args.record and results:
        record_entry(args.note, args.quick, results)
        print(f"recorded entry in {BENCH_LIVE_JSON.name}")
    return status


if __name__ == "__main__":
    sys.exit(main())
