"""Benchmark harness plumbing.

Each ``bench_fig*.py`` regenerates one figure/table of the paper at a
benchmark-friendly scale, asserts the paper's qualitative shape, stores
the series in ``benchmark.extra_info`` and writes the printable table to
``benchmarks/results/``.  Paper-scale parameters are documented in each
config docstring; EXPERIMENTS.md records full-scale runs.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_MICRO_JSON = pathlib.Path(__file__).parent / "BENCH_micro.json"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_table(results_dir: pathlib.Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")


def pytest_sessionfinish(session, exitstatus):
    """Append ``bench_micro`` results to the BENCH_micro.json trajectory.

    Each timed run (i.e. not ``--benchmark-disable`` smoke runs) appends
    one entry, so the file accumulates a history of the micro-benchmark
    means across commits.  Set ``BENCH_NOTE`` in the environment to tag
    an entry (e.g. ``BENCH_NOTE="before fast path"``).
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    results = {}
    for bench in getattr(bench_session, "benchmarks", []):
        if "bench_micro" not in bench.fullname or bench.has_error:
            continue
        st = getattr(bench, "stats", None)
        if st is None:  # --benchmark-disable: ran once, not timed
            continue
        results[bench.name] = {
            "mean_ms": st.mean * 1e3,
            "min_ms": st.min * 1e3,
            "median_ms": st.median * 1e3,
            "stddev_ms": st.stddev * 1e3,
            "rounds": st.rounds,
        }
    if not results:
        return
    history = []
    if BENCH_MICRO_JSON.exists():
        try:
            history = json.loads(BENCH_MICRO_JSON.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(
        {
            "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
            "note": os.environ.get("BENCH_NOTE", ""),
            "results": results,
        }
    )
    BENCH_MICRO_JSON.write_text(json.dumps(history, indent=2) + "\n")
