"""Benchmark harness plumbing.

Each ``bench_fig*.py`` regenerates one figure/table of the paper at a
benchmark-friendly scale, asserts the paper's qualitative shape, stores
the series in ``benchmark.extra_info`` and writes the printable table to
``benchmarks/results/``.  Paper-scale parameters are documented in each
config docstring; EXPERIMENTS.md records full-scale runs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_table(results_dir: pathlib.Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
