"""Extension bench: secure composition via decentralized trust (§8).

Not a paper figure — the paper lists trust integration as future work —
but DESIGN.md commits to building the extension, so the bench documents
its behaviour: with 25 % malicious peers, trust-aware next-hop selection
learns to avoid saboteurs while the plain composite metric keeps
stumbling into them.
"""

import numpy as np
import pytest

from repro.experiments import TrustConfig, run_trust_extension

from conftest import save_table

CFG = TrustConfig(
    n_ip=400, n_peers=80, n_functions=10,
    malicious_fraction=0.25, sessions=240, batch=40, budget=24, seed=0,
)


def test_trust_extension_benchmark(benchmark, results_dir):
    result = benchmark.pedantic(run_trust_extension, args=(CFG,), rounds=1, iterations=1)
    baseline, aware = result.series
    # second half of the run: evidence has accumulated
    late_aware = float(np.mean(aware.y[len(aware.y) // 2 :]))
    late_baseline = float(np.mean(baseline.y[len(baseline.y) // 2 :]))
    assert late_aware >= late_baseline
    # learning: the trust-aware curve improves over its own start
    assert aware.y[-1] >= aware.y[0] - 0.05

    benchmark.extra_info["late_clean_rate_aware"] = late_aware
    benchmark.extra_info["late_clean_rate_baseline"] = late_baseline
    summary = (
        f"late clean-session rate: trust-aware {late_aware:.3f} vs "
        f"baseline {late_baseline:.3f} ({CFG.malicious_fraction:.0%} malicious)\n\n"
    )
    save_table(results_dir, "trust_extension", summary + result.table())
