"""Micro-benchmarks of the hot paths (true pytest-benchmark timing).

These are the operations the large sweeps spend their time in; tracking
them catches performance regressions independently of experiment noise.
"""

import numpy as np
import pytest

from repro.core.bcp import BCPConfig
from repro.core.cost import psi_cost
from repro.dht.id_space import key_for
from repro.topology.inet import generate_ip_network
from repro.topology.overlay import mesh_overlay
from repro.workload.generator import RequestConfig
from repro.workload.scenarios import simulation_testbed


@pytest.fixture(scope="module")
def scenario():
    return simulation_testbed(
        n_ip=300,
        n_peers=60,
        n_functions=15,
        request_config=RequestConfig(function_count=(3, 3)),
        bcp_config=BCPConfig(budget=32),
        seed=0,
    )


def test_bcp_compose_throughput(benchmark, scenario):
    """One full BCP composition (probe + merge + select + release)."""
    requests = iter(scenario.requests.batch(4000))

    def compose_one():
        scenario.net.compose(next(requests), budget=32)

    benchmark(compose_one)


def test_dht_route(benchmark, scenario):
    keys = [key_for(f"fn-{i}") for i in range(64)]
    idx = iter(range(10**9))

    def route_one():
        i = next(idx)
        scenario.net.dht.route(keys[i % 64], origin_peer=i % 60)

    benchmark(route_one)


def test_registry_lookup(benchmark, scenario):
    fns = scenario.net.registry.functions()
    idx = iter(range(10**9))

    def lookup_one():
        i = next(idx)
        scenario.net.registry.lookup(fns[i % len(fns)], origin_peer=i % 60)

    benchmark(lookup_one)


def test_psi_cost_evaluation(benchmark, scenario):
    result = None
    for _ in range(20):
        result = scenario.net.compose(scenario.requests.next_request(), budget=32)
        if result.success:
            break
    assert result is not None and result.success
    graph = result.best

    benchmark(psi_cost, graph, scenario.net.pool)


def test_ip_network_generation(benchmark):
    seeds = iter(range(10**9))

    def gen():
        generate_ip_network(300, rng=np.random.default_rng(next(seeds)))

    benchmark(gen)


def test_overlay_construction(benchmark):
    ip = generate_ip_network(300, rng=np.random.default_rng(0))
    seeds = iter(range(10**9))

    def build():
        mesh_overlay(ip, 50, k=4, rng=np.random.default_rng(next(seeds)))

    benchmark(build)


def test_session_establish_teardown(benchmark, scenario):
    requests = iter(scenario.requests.batch(4000))

    def cycle():
        session = scenario.net.sessions.establish(next(requests))
        if session is not None:
            scenario.net.sessions.teardown(session.session_id)

    benchmark(cycle)
