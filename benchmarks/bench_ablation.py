"""Ablation benches for the design choices DESIGN.md calls out.

Each run flips one mechanism and records the metric it should move:
commutation exploration (selected delay), composite next-hop metric vs
random pruning (selected delay), probe-time soft allocation (honoured
admissions under concurrent batches), and backup selection policy
(proactive-recovery share under churn).
"""

import math

import pytest

from repro.experiments import (
    AblationConfig,
    ablate_backup_policy,
    ablate_commutations,
    ablate_metric_selection,
    ablate_soft_allocation,
)

from conftest import save_table

CFG = AblationConfig(n_ip=400, n_peers=80, n_functions=20, requests=40, budget=32, seed=0)


def test_ablation_commutations(benchmark, results_dir):
    out = benchmark.pedantic(ablate_commutations, args=(CFG,), rounds=1, iterations=1)
    assert math.isfinite(out["with_commutations"])
    # exploring exchangeable orders never hurts the selected delay (much)
    assert out["with_commutations"] <= out["without_commutations"] * 1.05
    benchmark.extra_info.update(out)
    save_table(
        results_dir,
        "ablation_commutations",
        "\n".join(f"{k}: {v:.4f}" for k, v in out.items()),
    )


def test_ablation_metric_selection(benchmark, results_dir):
    out = benchmark.pedantic(ablate_metric_selection, args=(CFG,), rounds=1, iterations=1)
    # the composite metric should beat random pruning at equal budget
    assert out["metric_selection"] <= out["random_pruning"] * 1.05
    benchmark.extra_info.update(out)
    save_table(
        results_dir,
        "ablation_metric_selection",
        "\n".join(f"{k}: {v:.4f}" for k, v in out.items()),
    )


def test_ablation_soft_allocation(benchmark, results_dir):
    out = benchmark.pedantic(ablate_soft_allocation, args=(CFG,), rounds=1, iterations=1)
    # with soft allocation a selected composition never fails its setup;
    # without it, concurrent selections collide at admission time
    assert out["soft_allocation_conflicted"] == 0.0
    assert out["no_soft_allocation_conflicted"] >= out["soft_allocation_conflicted"]
    benchmark.extra_info.update(out)
    save_table(
        results_dir,
        "ablation_soft_allocation",
        "\n".join(f"{k}: {v:.4f}" for k, v in out.items()),
    )


def test_ablation_backup_policy(benchmark, results_dir):
    out = benchmark.pedantic(ablate_backup_policy, args=(CFG,), rounds=1, iterations=1)
    assert 0.0 <= out["paper_selection_recovered_fraction"] <= 1.0
    benchmark.extra_info.update(out)
    save_table(
        results_dir,
        "ablation_backup_policy",
        "\n".join(f"{k}: {v:.4f}" for k, v in out.items()),
    )
