"""Figure 11 bench: average service delay vs probing budget.

Paper (§6.2): 3-function requests over 102 peers with ~17 duplicates per
function (optimal ≈ 17³ = 4913 probes).  SpiderNet's delay falls with
budget, approaching the optimal asymptotically; near-optimal by roughly
budget 200 (4 % of the flooding cost); random stays far above.
"""

import pytest

from repro.experiments import Fig11Config, run_fig11

from conftest import save_table

CFG = Fig11Config(
    n_peers=102,
    budgets=(10, 50, 100, 200, 300, 400, 500, 1000),
    requests_per_point=20,
    seed=0,
)


@pytest.fixture(scope="module")
def fig11_result():
    return run_fig11(CFG)


def test_fig11_benchmark(benchmark, fig11_result, results_dir):
    small = Fig11Config(n_peers=40, budgets=(10, 100), requests_per_point=5, seed=1)
    benchmark.pedantic(run_fig11, args=(small,), rounds=1, iterations=1)

    result = fig11_result
    random_s, spider_s, optimal_s = result.series
    # monotone improvement with budget (same fixed request sample)
    assert spider_s.y[-1] <= spider_s.y[0]
    # ordering: optimal <= SpiderNet <= random at the largest budget
    assert optimal_s.y[-1] <= spider_s.y[-1] + 1e-9
    assert spider_s.y[-1] <= random_s.y[-1]
    # near-optimal at budget 200 (within 15 % of optimal), i.e. at ~4 %
    # of the flooding probe count, as the paper reports
    idx_200 = list(spider_s.x).index(200)
    assert spider_s.y[idx_200] <= optimal_s.y[idx_200] * 1.15
    # the flooding denominator is in the paper's ballpark
    assert 2000 <= result.optimal_probes_mean <= 12_000  # paper: 4913

    benchmark.extra_info["series"] = {s.label: list(zip(s.x, s.y)) for s in result.series}
    benchmark.extra_info["optimal_probes_mean"] = result.optimal_probes_mean
    extra = f"mean optimal probe count: {result.optimal_probes_mean:.0f} (paper: 4913)\n\n"
    save_table(results_dir, "fig11_budget_sweep", extra + result.table())
