"""Scalability bench: composition cost vs overlay size.

The paper's scalability argument (§1, §4): BCP's per-request cost is
bounded by the probing budget, *independent of the overlay size* —
unlike global-view schemes whose maintenance grows with N (quadratically
for the global-view dissemination of §6.1).  This bench measures both
sides of that claim as the overlay grows: BCP messages per request stay
flat while the centralized scheme's per-round update cost explodes.
"""

import numpy as np
import pytest

from repro.core.baselines import CentralizedComposer
from repro.core.bcp import BCPConfig
from repro.workload.generator import RequestConfig
from repro.workload.scenarios import simulation_testbed

from conftest import save_table

SIZES = (40, 80, 160)
REQUESTS = 15
BUDGET = 24


def _bcp_cost_at(n_peers: int, seed: int = 0):
    scenario = simulation_testbed(
        n_ip=max(n_peers * 4, 120),
        n_peers=n_peers,
        n_functions=max(n_peers // 4, 8),
        request_config=RequestConfig(function_count=(3, 3)),
        bcp_config=BCPConfig(budget=BUDGET),
        seed=seed,
    )
    net = scenario.net
    before = net.ledger.total_count(["bcp_probe", "bcp_ack", "dht_route"])
    ok = 0
    for _ in range(REQUESTS):
        result = net.compose(scenario.requests.next_request(), budget=BUDGET)
        ok += int(result.success)
    msgs = net.ledger.total_count(["bcp_probe", "bcp_ack", "dht_route"]) - before
    centralized_per_round = n_peers * (n_peers - 1)
    return msgs / REQUESTS, centralized_per_round, ok / REQUESTS


@pytest.fixture(scope="module")
def scale_rows():
    return {n: _bcp_cost_at(n) for n in SIZES}


def test_scale_benchmark(benchmark, scale_rows, results_dir):
    benchmark.pedantic(_bcp_cost_at, args=(SIZES[0], 1), rounds=1, iterations=1)

    per_request = {n: scale_rows[n][0] for n in SIZES}
    central = {n: scale_rows[n][1] for n in SIZES}
    # BCP per-request cost is budget-bound: growing the overlay 4x must
    # not grow per-request messages by more than ~2x (DHT hops grow
    # logarithmically; probes are budget-capped)
    assert per_request[SIZES[-1]] <= 2.0 * per_request[SIZES[0]]
    # the global-view round cost grows ~quadratically
    assert central[SIZES[-1]] >= 10 * central[SIZES[0]]
    # compositions keep succeeding at every scale
    assert all(scale_rows[n][2] > 0.5 for n in SIZES)

    lines = [f"{'peers':>6s}  {'BCP msgs/request':>17s}  {'global-view msgs/round':>22s}"]
    for n in SIZES:
        lines.append(f"{n:>6d}  {per_request[n]:>17.1f}  {central[n]:>22d}")
    lines.append("")
    lines.append("BCP stays budget-bound while global-view maintenance grows ~N^2.")
    benchmark.extra_info["per_request"] = per_request
    save_table(results_dir, "scalability", "\n".join(lines))
