"""Large-graph composition scaling: strategy registry shoot-out.

Sweeps graph size × candidate density × composition strategy over the
:mod:`repro.workload.largegraph` worlds and writes
``benchmarks/BENCH_compose_scale.json``.  The claim under test is the
scaling one:

* **BCP** was designed for the paper's 2–4 function requests: its
  budget is split across next-hop probes at every step, so on a deep
  DAG the per-path allowance starves and no probe survives to the
  destination — it fails outright well before 100 functions;
* **backtrack** (branch-and-bound over the global view) and
  **decompose** (topological-layer segmentation + beam scoring +
  stitch) are anytime: they return valid, QoS-qualified graphs on
  100–300-function DAGs in bounded time, where BCP exhausts any
  realistic budget.

Each cell records wall time, the strategy's ``ops_*`` work counters
(expansions, prunes, beam partials), the solution's ψλ cost, and a
validity check of the returned graph (full assignment + QoS bounds).

Run directly (CI runs ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_compose_scale.py
    PYTHONPATH=src python benchmarks/bench_compose_scale.py --sizes 20 --sizes 300
    PYTHONPATH=src python benchmarks/bench_compose_scale.py --smoke

``--smoke`` is the CI gate: one small world, three strategies, exits
nonzero on any crash, on an invalid returned graph, or if no strategy
composes at all.

Exit codes: 0 ok, 1 crash/validity/smoke-gate failure.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.strategies import create_strategy  # noqa: E402
from repro.workload.largegraph import (  # noqa: E402
    LargeGraphConfig,
    largegraph_world,
)

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_compose_scale.json"

# BCP enters the matrix at two budgets: the fig11 sweet spot (64) and a
# generous 4× that, so "BCP fails" is not an artefact of stinginess
BCP_BUDGETS = (64, 256)


def _validate(result, request) -> Optional[str]:
    """None if the returned graph is a valid answer, else the defect."""
    if not result.success:
        return None  # nothing to validate
    graph = result.best
    if graph is None:
        return "success without a graph"
    missing = set(request.function_graph.functions) - set(graph.assignment)
    if missing:
        return f"unassigned functions: {sorted(missing)[:3]}"
    if result.best_qos is not None and not request.qos.satisfied_by(result.best_qos):
        return "reported QoS violates the request bounds"
    return None


def run_cell(
    kind: str,
    size: int,
    density: int,
    seed: int,
    strategies: List[str],
    options_by_name: Optional[Dict[str, Dict]] = None,
) -> List[Dict]:
    cfg = LargeGraphConfig(
        kind=kind, n_functions=size, candidate_density=density, seed=seed
    )
    t0 = time.perf_counter()
    world = largegraph_world(cfg)
    build_s = time.perf_counter() - t0
    rows: List[Dict] = []
    for name in strategies:
        net, request = world.net, world.request
        if name.startswith("bcp"):
            budget = int(name.split("@", 1)[1])
            net.composer = None
            t0 = time.perf_counter()
            result = net.compose(request, budget=budget, confirm=False)
            wall = time.perf_counter() - t0
        else:
            options = (options_by_name or {}).get(name, {})
            net.composer = create_strategy(name, net.strategy_context(), **options)
            t0 = time.perf_counter()
            result = net.compose(request, confirm=False)
            wall = time.perf_counter() - t0
            net.composer = None
        defect = _validate(result, request)
        ops = {
            k[len("ops_"):]: int(v)
            for k, v in sorted(result.phases.items())
            if k.startswith("ops_")
        }
        rows.append(
            {
                "kind": kind,
                "size": size,
                "density": density,
                "seed": seed,
                "strategy": name,
                "success": bool(result.success),
                "valid": defect is None,
                "defect": defect,
                "wall_s": round(wall, 4),
                "build_s": round(build_s, 4),
                "cost": None if result.best_cost == float("inf") else round(result.best_cost, 6),
                "probes_sent": result.probes_sent,
                "failure_reason": result.failure_reason,
                "ops": ops,
            }
        )
        status = "ok" if result.success else f"FAIL ({result.failure_reason})"
        cost = rows[-1]["cost"]
        print(
            f"  {kind:>15s} n={size:<4d} z={density} {name:>10s}: "
            f"{status:<44s} {wall * 1000:8.0f} ms"
            + (f"  psi={cost:.3f}" if cost is not None else "")
        )
    return rows


def headline(cells: List[Dict]) -> Dict:
    """The acceptance claim, computed from the matrix: on the largest
    graphs, do the new strategies succeed where BCP cannot?"""
    big = [c for c in cells if c["size"] >= 100]
    bcp_ok = [c for c in big if c["strategy"].startswith("bcp") and c["success"]]
    new_ok = [
        c
        for c in big
        if c["strategy"] in ("backtrack", "decompose") and c["success"] and c["valid"]
    ]
    claim: Dict = {
        "big_graph_cells": len(big),
        "bcp_successes": len(bcp_ok),
        "new_strategy_successes": len(new_ok),
        "succeeds_where_bcp_fails": len(new_ok) > 0 and len(bcp_ok) == 0,
    }
    # where both succeed on the same world, record speed/quality ratios
    ratios = []
    for c in cells:
        if not c["strategy"].startswith("bcp") or not c["success"]:
            continue
        for s in cells:
            if (
                s["strategy"] in ("backtrack", "decompose")
                and s["success"]
                and (s["kind"], s["size"], s["density"], s["seed"])
                == (c["kind"], c["size"], c["density"], c["seed"])
                and s["cost"] is not None
                and c["cost"] is not None
            ):
                ratios.append(
                    {
                        "size": c["size"],
                        "strategy": s["strategy"],
                        "vs": c["strategy"],
                        "speedup": round(c["wall_s"] / max(s["wall_s"], 1e-9), 2),
                        "cost_ratio": round(s["cost"] / max(c["cost"], 1e-9), 4),
                    }
                )
    claim["head_to_head"] = ratios
    return claim


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI gate: tiny matrix")
    parser.add_argument(
        "--sizes", type=int, action="append", default=None,
        help="graph sizes (repeatable; default 20/50/100/200)",
    )
    parser.add_argument(
        "--densities", type=int, action="append", default=None,
        help="candidate densities (repeatable; default 4)",
    )
    parser.add_argument(
        "--kinds", action="append", default=None,
        choices=("layered", "series-parallel", "random"),
        help="graph shapes (repeatable; default layered + random)",
    )
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument(
        "--out", default=None, help=f"output JSON path (default {BENCH_JSON})"
    )
    args = parser.parse_args(argv)

    options_by_name: Dict[str, Dict] = {}
    if args.smoke:
        kinds = ["layered"]
        sizes = [20]
        densities = [3]
        strategies = ["bcp@64", "backtrack", "decompose"]
        # keep the CI gate fast: a tight anytime budget still composes
        options_by_name = {"backtrack": {"node_limit": 30_000}}
    else:
        kinds = args.kinds or ["layered", "random"]
        sizes = args.sizes or [20, 50, 100, 200]
        densities = args.densities or [4]
        strategies = [f"bcp@{b}" for b in BCP_BUDGETS] + ["backtrack", "decompose"]

    cells: List[Dict] = []
    crashed = False
    for kind in kinds:
        for size in sizes:
            for density in densities:
                try:
                    cells.extend(
                        run_cell(
                            kind, size, density, args.seed,
                            strategies, options_by_name,
                        )
                    )
                except Exception as exc:  # pragma: no cover - the gate itself
                    crashed = True
                    print(f"  CELL CRASHED ({kind}, n={size}, z={density}): {exc!r}")

    claim = headline(cells)
    payload = {
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "matrix": {
            "kinds": kinds,
            "sizes": sizes,
            "densities": densities,
            "strategies": strategies,
            "seed": args.seed,
        },
        "headline": claim,
        "cells": cells,
    }
    out = pathlib.Path(args.out) if args.out else BENCH_JSON
    if not args.smoke or args.out:
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out}")
    print(f"headline: {json.dumps(claim) if args.smoke else json.dumps(claim, indent=2)}")

    invalid = [c for c in cells if not c["valid"]]
    if invalid:
        print(f"INVALID GRAPHS: {[(c['strategy'], c['size']) for c in invalid]}")
        return 1
    if crashed:
        return 1
    if args.smoke:
        new_ok = [
            c for c in cells
            if c["strategy"] in ("backtrack", "decompose") and c["success"]
        ]
        if not new_ok:
            print("SMOKE GATE: no anytime strategy composed the smoke world")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
