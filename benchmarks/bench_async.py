"""Executor-equivalence bench: synchronous vs event-driven BCP.

The sweeps use the synchronous executor for speed; the event-driven one
adds in-flight loss, soft-state timers and concurrency.  On identical
static worlds the two must agree — this bench measures both and pins
the equivalence at benchmark scale (the unit tests pin it on micro
worlds).
"""

import numpy as np
import pytest

from repro.core.async_bcp import AsyncBCP
from repro.core.bcp import BCPConfig
from repro.sim.engine import Simulator
from repro.workload.generator import RequestConfig
from repro.workload.scenarios import simulation_testbed

from conftest import save_table

N_REQUESTS = 20
BUDGET = 24


def _scenario(seed=0):
    return simulation_testbed(
        n_ip=300,
        n_peers=60,
        n_functions=15,
        request_config=RequestConfig(function_count=(3, 3)),
        bcp_config=BCPConfig(budget=BUDGET, collect_timeout=3.0),
        seed=seed,
    )


def _run_sync():
    scenario = _scenario()
    outcomes = []
    for _ in range(N_REQUESTS):
        result = scenario.net.compose(scenario.requests.next_request(), budget=BUDGET)
        outcomes.append(
            (result.success,
             round(result.best_qos.get("delay"), 9) if result.best_qos else None)
        )
    return outcomes


def _run_async():
    scenario = _scenario()
    sim = Simulator()
    abcp = AsyncBCP(sim, scenario.net.bcp)
    results = []
    for _ in range(N_REQUESTS):
        req = scenario.requests.next_request()
        abcp.compose(req, budget=BUDGET, confirm=False, callback=results.append)
        sim.run()  # drain before the next request: identical world state
    return [
        (r.success, round(r.best_qos.get("delay"), 9) if r.best_qos else None)
        for r in results
    ]


def test_async_equivalence_benchmark(benchmark, results_dir):
    sync_outcomes = _run_sync()
    async_outcomes = benchmark.pedantic(_run_async, rounds=1, iterations=1)
    assert len(async_outcomes) == N_REQUESTS
    agreement = sum(a == b for a, b in zip(sync_outcomes, async_outcomes))
    # identical worlds, identical per-hop logic: the executors must agree
    assert agreement == N_REQUESTS
    successes = sum(1 for ok, _ in sync_outcomes if ok)
    save_table(
        results_dir,
        "async_equivalence",
        f"requests: {N_REQUESTS}; successes: {successes}; "
        f"sync/async agreement: {agreement}/{N_REQUESTS}",
    )
