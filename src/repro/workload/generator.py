"""Workload generation: service populations and composition requests.

The paper's simulation setup (§6.1): each of 1000 peers provides 1–3
service components drawn from 200 pre-defined functions; during each
time unit a number of composition requests arrive on random peers.  The
prototype setup (§6.2): 102 peers, one of six multimedia components
each (average replication degree 17).

Request QoS requirements are calibrated relative to the overlay's actual
delay scale (``qos_tightness`` × a per-hop allowance), because an
absolute bound that is trivially loose (everything succeeds) or
impossibly tight (nothing does) would flatten every curve the paper
plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.function_graph import FunctionGraph
from ..core.qos import QoSRequirement, QoSVector, loss_to_additive
from ..core.request import CompositeRequest
from ..core.resources import ResourceVector
from ..services.component import ComponentSpec, QualitySpec
from ..services.media import MEDIA_FUNCTIONS, make_media_component
from ..sim.rng import as_generator
from ..topology.overlay import Overlay

__all__ = [
    "PopulationConfig",
    "generate_population",
    "media_population",
    "RequestConfig",
    "RequestGenerator",
    "function_names",
]


def function_names(n: int, prefix: str = "F") -> List[str]:
    """The paper's pre-defined function catalogue: F001..Fnnn."""
    width = max(3, len(str(n)))
    return [f"{prefix}{i:0{width}d}" for i in range(1, n + 1)]


@dataclass(frozen=True)
class PopulationConfig:
    """How to populate an overlay with service components."""

    n_functions: int = 200
    components_per_peer: Tuple[int, int] = (1, 3)  # inclusive range, §6.1
    service_delay_range: Tuple[float, float] = (0.005, 0.050)
    service_loss_range: Tuple[float, float] = (0.0, 0.002)
    cpu_range: Tuple[float, float] = (4.0, 24.0)
    memory_range: Tuple[float, float] = (16.0, 128.0)
    bandwidth_factor_range: Tuple[float, float] = (0.5, 1.6)


def generate_population(
    overlay: Overlay, config: Optional[PopulationConfig] = None, rng=None
) -> List[ComponentSpec]:
    """Deploy [lo, hi] random-function components on every peer (§6.1)."""
    cfg = config or PopulationConfig()
    rng = as_generator(rng)
    names = function_names(cfg.n_functions)
    specs: List[ComponentSpec] = []
    lo, hi = cfg.components_per_peer
    if not 1 <= lo <= hi:
        raise ValueError(f"bad components_per_peer range: {cfg.components_per_peer}")
    for peer in overlay.peers():
        count = int(rng.integers(lo, hi + 1))
        fns = rng.choice(len(names), size=min(count, len(names)), replace=False)
        for fi in fns:
            qp = QoSVector(
                {
                    "delay": float(rng.uniform(*cfg.service_delay_range)),
                    "loss": loss_to_additive(float(rng.uniform(*cfg.service_loss_range))),
                }
            )
            res = ResourceVector(
                {
                    "cpu": float(rng.uniform(*cfg.cpu_range)),
                    "memory": float(rng.uniform(*cfg.memory_range)),
                }
            )
            specs.append(
                ComponentSpec.create(
                    function=names[int(fi)],
                    peer=peer,
                    qp=qp,
                    resources=res,
                    bandwidth_factor=float(rng.uniform(*cfg.bandwidth_factor_range)),
                )
            )
    return specs


def media_population(overlay: Overlay, rng=None) -> List[ComponentSpec]:
    """One random media component per peer — the PlanetLab deployment
    of §6.2 (102 hosts / 6 functions → replication degree ≈ 17)."""
    rng = as_generator(rng)
    specs = []
    for peer in overlay.peers():
        fn = MEDIA_FUNCTIONS[int(rng.integers(0, len(MEDIA_FUNCTIONS)))]
        specs.append(make_media_component(fn, peer, rng=rng))
    return specs


@dataclass(frozen=True)
class RequestConfig:
    """Shape and stringency of generated composition requests."""

    function_count: Tuple[int, int] = (2, 4)  # inclusive range
    dag_probability: float = 0.0  # chance of a diamond DAG instead of a chain
    commutation_probability: float = 0.0  # chance of one commutation link
    qos_tightness: float = 1.0  # multiplier on the calibrated delay budget
    per_hop_delay_allowance: float = 0.120  # link + processing budget per hop
    per_function_delay_allowance: float = 0.050  # service time budget
    loss_bound: float = 0.05  # end-to-end loss-rate bound
    bandwidth_range: Tuple[float, float] = (0.2, 1.0)  # Mbps
    duration_mean: float = 600.0  # exponential session length
    failure_req: float = 0.05
    popularity_skew: float = 0.0  # Zipf exponent over functions (0 = uniform)


class RequestGenerator:
    """Draws random composite requests against a deployed population."""

    def __init__(
        self,
        overlay: Overlay,
        available_functions: Sequence[str],
        config: Optional[RequestConfig] = None,
        rng=None,
        alive=None,
        endpoint_pool: Optional[Sequence[int]] = None,
    ) -> None:
        if len(available_functions) == 0:
            raise ValueError("no functions available to request")
        self.overlay = overlay
        self.functions = list(available_functions)
        self.config = config or RequestConfig()
        self.rng = as_generator(rng)
        # endpoint liveness filter: users issue requests from live peers
        self.alive = alive if alive is not None else (lambda p: True)
        # optional restriction of sender/receiver peers (e.g. churn-
        # protected endpoints in the failure-recovery experiment)
        self.endpoint_pool = list(endpoint_pool) if endpoint_pool is not None else None
        self._sampler = None
        if self.config.popularity_skew > 0:
            from .arrivals import ZipfFunctionSampler

            self._sampler = ZipfFunctionSampler(
                self.functions, skew=self.config.popularity_skew, rng=self.rng
            )

    # ------------------------------------------------------------------
    def next_request(
        self,
        n_functions: Optional[int] = None,
        source: Optional[int] = None,
        dest: Optional[int] = None,
    ) -> CompositeRequest:
        cfg = self.config
        rng = self.rng
        lo, hi = cfg.function_count
        k = int(rng.integers(lo, hi + 1)) if n_functions is None else n_functions
        k = min(k, len(self.functions))
        if self._sampler is not None:
            fns = self._sampler.sample(k)
        else:
            idx = rng.choice(len(self.functions), size=k, replace=False)
            fns = [self.functions[int(i)] for i in idx]
        graph = self._build_graph(fns)
        base = self.endpoint_pool if self.endpoint_pool is not None else self.overlay.peers()
        peers = [p for p in base if self.alive(p)]
        if len(peers) < 2:
            raise RuntimeError("fewer than two live peers to act as endpoints")
        if source is None:
            source = int(peers[int(rng.integers(0, len(peers)))])
        if dest is None:
            dest = source
            while dest == source:
                dest = int(peers[int(rng.integers(0, len(peers)))])
        qos = self._qos_requirement(graph)
        return CompositeRequest.create(
            function_graph=graph,
            qos=qos,
            source_peer=source,
            dest_peer=dest,
            bandwidth=float(rng.uniform(*cfg.bandwidth_range)),
            failure_req=cfg.failure_req,
            duration=float(rng.exponential(cfg.duration_mean)),
        )

    def _build_graph(self, fns: List[str]) -> FunctionGraph:
        cfg = self.config
        rng = self.rng
        if len(fns) >= 4 and rng.random() < cfg.dag_probability:
            # diamond: f0 → {f1, f2} → f3 (→ chain of any remaining)
            edges = [(fns[0], fns[1]), (fns[0], fns[2]), (fns[1], fns[3]), (fns[2], fns[3])]
            for a, b in zip(fns[3:], fns[4:]):
                edges.append((a, b))
            return FunctionGraph.from_edges(fns, edges)
        commutations: List[Tuple[str, str]] = []
        if len(fns) >= 3 and rng.random() < cfg.commutation_probability:
            # one exchangeable interior pair (never the first hop, so the
            # pair stays chain-adjacent)
            i = int(rng.integers(1, len(fns) - 1))
            commutations.append((fns[i], fns[i + 1]) if i + 1 < len(fns) else (fns[i - 1], fns[i]))
        return FunctionGraph.linear(fns, commutations)

    def _qos_requirement(self, graph: FunctionGraph) -> QoSRequirement:
        cfg = self.config
        longest_branch = max(len(b) for b in graph.branches())
        hops = longest_branch + 1  # components + final hop to the receiver
        delay_bound = cfg.qos_tightness * (
            hops * cfg.per_hop_delay_allowance
            + longest_branch * cfg.per_function_delay_allowance
        )
        return QoSRequirement(
            {"delay": delay_bound, "loss": loss_to_additive(cfg.loss_bound)}
        )

    # ------------------------------------------------------------------
    def batch(self, n: int, **kwargs) -> List[CompositeRequest]:
        return [self.next_request(**kwargs) for _ in range(n)]
