"""Arrival processes and popularity models for request streams.

The paper's simulator generates "certain number of composition requests
... randomly ... on different peers" per time unit.  This module
provides the two standard refinements measurement studies of P2P
workloads motivate:

* **Poisson arrivals** — exponential inter-arrival times instead of a
  fixed per-tick batch, so load is bursty the way real request streams
  are (the mean matches the paper's requests-per-time-unit knob);
* **Zipf popularity** — real service demand is skewed: a few functions
  (the popular transcoder) dominate requests.  Skew concentrates load
  on those functions' replicas, stressing exactly the load-balancing
  term ψλ optimises.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from functools import partial
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..sim.engine import Simulator
from ..sim.rng import as_generator

__all__ = [
    "AsyncioScheduler",
    "PoissonArrivals",
    "zipf_weights",
    "ZipfFunctionSampler",
]


class AsyncioScheduler:
    """Duck-types the :class:`~repro.sim.engine.Simulator` scheduling
    surface over a running asyncio event loop, so the same arrival
    processes drive either the simulator's virtual clock or the wall
    clock of a live cluster.  ``schedule`` never blocks: the callback
    fires via ``loop.call_later``, which is what makes the live load
    driver *open-loop* — arrivals keep coming at the configured rate no
    matter how long earlier requests take to complete.
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop or asyncio.get_event_loop()

    @property
    def now(self) -> float:
        return self._loop.time()

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        self._loop.call_later(max(0.0, delay), fn)


class PoissonArrivals:
    """Schedules ``callback()`` with Exp(1/rate) inter-arrival gaps.

    ``rate`` is arrivals per time unit (the paper's workload axis).
    The process runs until :meth:`stop` or the simulator's horizon.
    ``stop()`` is idempotent, and takes effect even with an arrival
    already scheduled: the in-flight timer fires but is discarded.  A
    stopped process may be :meth:`start`-ed again — each start opens a
    new *generation*, so timers armed by a previous life can never
    resurrect a stopped stream.
    """

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        callback: Callable[[], None],
        rng=None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.sim = sim
        self.rate = rate
        self.callback = callback
        self.rng = as_generator(rng)
        self.arrivals = 0
        self._stopped = True  # not running until start()
        self._gen = 0  # bumped per start(); stale timers carry the old value

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self) -> None:
        if not self._stopped:
            raise RuntimeError("arrival process already running")
        self._stopped = False
        self._gen += 1
        self._arm()

    def stop(self) -> None:
        self._stopped = True

    def _arm(self) -> None:
        gap = float(self.rng.exponential(1.0 / self.rate))
        self.sim.schedule(gap, partial(self._fire, self._gen))

    def _fire(self, gen: int) -> None:
        if self._stopped or gen != self._gen:
            return  # stopped after this timer was armed, or a stale life
        self.arrivals += 1
        self.callback()
        self._arm()


def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Normalised Zipf weights: wᵢ ∝ 1/(i+1)^skew.  skew=0 → uniform."""
    if n <= 0:
        raise ValueError("need at least one item")
    if skew < 0:
        raise ValueError("skew must be >= 0")
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks**-skew
    return w / w.sum()


@dataclass
class ZipfFunctionSampler:
    """Draws request function sets with Zipf-skewed popularity.

    Functions are ranked by their order in ``functions`` (rank 0 most
    popular).  ``sample(k)`` draws ``k`` distinct functions, so even
    heavy skew cannot produce duplicate functions in one request.
    """

    functions: Sequence[str]
    skew: float = 0.8
    rng: object = None

    def __post_init__(self) -> None:
        self.functions = list(self.functions)
        if not self.functions:
            raise ValueError("no functions to sample")
        self.rng = as_generator(self.rng)
        self._weights = zipf_weights(len(self.functions), self.skew)

    def sample(self, k: int) -> List[str]:
        k = min(k, len(self.functions))
        idx = self.rng.choice(
            len(self.functions), size=k, replace=False, p=self._weights
        )
        return [self.functions[int(i)] for i in idx]

    def popularity(self, function: str) -> float:
        return float(self._weights[self.functions.index(function)])
