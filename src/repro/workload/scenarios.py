"""Canned experiment environments.

Two testbeds appear in the paper:

* the **simulation testbed** (§6.1): Inet-generated 10 000-node IP layer,
  1000 overlay peers, 1–3 components/peer from 200 functions;
* the **PlanetLab testbed** (§6.2): 102 wide-area hosts, one of six
  multimedia components each.

Both are reproduced here at configurable scale (defaults are laptop-
sized; pass the paper's numbers to run full scale — see DESIGN.md on
scaling).  Builders return a ready :class:`~repro.core.SpiderNet` plus
the deployed population and a request generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.bcp import BCPConfig
from ..core.composition import SpiderNet
from ..core.session import RecoveryConfig
from ..services.component import ComponentSpec
from ..sim.rng import as_generator, spawn
from ..topology.inet import generate_ip_network
from ..topology.overlay import Overlay, mesh_overlay, power_law_overlay, wan_overlay
from .generator import (
    PopulationConfig,
    RequestConfig,
    RequestGenerator,
    generate_population,
    media_population,
)

__all__ = ["Scenario", "simulation_testbed", "planetlab_testbed"]


@dataclass
class Scenario:
    """A built environment: middleware + population + request source."""

    net: SpiderNet
    overlay: Overlay
    population: List[ComponentSpec]
    requests: RequestGenerator
    name: str = "scenario"

    @property
    def replication_degree(self) -> float:
        """Average number of duplicated components per provided function."""
        functions = self.net.registry.functions()
        if not functions:
            return 0.0
        return len(self.population) / len(functions)


def simulation_testbed(
    n_ip: int = 2000,
    n_peers: int = 200,
    n_functions: int = 50,
    overlay_kind: str = "mesh",
    overlay_degree: int = 4,
    components_per_peer: Tuple[int, int] = (1, 3),
    request_config: Optional[RequestConfig] = None,
    bcp_config: Optional[BCPConfig] = None,
    recovery_config: Optional[RecoveryConfig] = None,
    churn_rate: Optional[float] = None,
    churn_downtime: float = 30.0,
    protected_endpoints: int = 0,
    capacity_scale: float = 1.0,
    seed=0,
) -> Scenario:
    """The §6.1 environment, scaled (paper: 10 000 IP / 1000 peers / 200 fns).

    The peers:functions ratio is held near the paper's (1000:200 = 5:1 by
    default here 200:50 = 4:1) so replication degrees — what BCP's budget
    fraction is measured against — stay comparable.
    """
    rng = as_generator(seed)
    rng_topo, rng_overlay, rng_net, rng_pop, rng_req = spawn(rng, 5)
    ip = generate_ip_network(n_ip, rng=rng_topo)
    if overlay_kind == "mesh":
        overlay = mesh_overlay(ip, n_peers, k=overlay_degree, rng=rng_overlay)
    elif overlay_kind == "power-law":
        overlay = power_law_overlay(ip, n_peers, m=max(overlay_degree // 2, 1), rng=rng_overlay)
    else:
        raise ValueError(f"unknown overlay kind {overlay_kind!r}")
    peer_capacity = None
    if capacity_scale != 1.0:
        if capacity_scale <= 0:
            raise ValueError(f"capacity_scale must be positive, got {capacity_scale}")
        from ..core.composition import default_peer_capacity

        peer_capacity = default_peer_capacity(
            n_peers,
            rng_net,
            cpu_range=(50.0 * capacity_scale, 150.0 * capacity_scale),
            memory_range=(256.0 * capacity_scale, 1024.0 * capacity_scale),
        )
    net = SpiderNet.build(
        overlay,
        rng=rng_net,
        bcp_config=bcp_config,
        recovery_config=recovery_config,
        peer_capacity=peer_capacity,
        churn_rate=churn_rate,
        churn_downtime=churn_downtime,
    )
    population = generate_population(
        overlay,
        PopulationConfig(n_functions=n_functions, components_per_peer=components_per_peer),
        rng=rng_pop,
    )
    net.deploy(population)
    endpoint_pool = None
    if protected_endpoints > 0:
        # a stable set of sender/receiver peers exempt from churn: the
        # recovery experiment studies failures of *service* peers (the
        # endpoints are the measuring user; see fig9 driver docs)
        endpoint_pool = [
            int(p)
            for p in rng_req.choice(
                overlay.n_peers, size=min(protected_endpoints, overlay.n_peers), replace=False
            )
        ]
        if net.churn is not None:
            net.churn.protected.update(endpoint_pool)
    requests = RequestGenerator(
        overlay,
        net.registry.functions(),
        request_config,
        rng=rng_req,
        alive=net.network.is_alive,
        endpoint_pool=endpoint_pool,
    )
    return Scenario(net, overlay, population, requests, name="simulation")


def planetlab_testbed(
    n_peers: int = 102,
    request_config: Optional[RequestConfig] = None,
    bcp_config: Optional[BCPConfig] = None,
    recovery_config: Optional[RecoveryConfig] = None,
    churn_rate: Optional[float] = None,
    seed=0,
) -> Scenario:
    """The §6.2 environment: WAN overlay + one media component per peer.

    With the paper's 102 peers and 6 functions the average replication
    degree is 102/6 = 17, making the optimal algorithm's probe count for
    3-function requests ≈ 17³ = 4913.
    """
    rng = as_generator(seed)
    rng_topo, rng_net, rng_pop, rng_req = spawn(rng, 4)
    overlay = wan_overlay(n_peers, rng=rng_topo)
    net = SpiderNet.build(
        overlay,
        rng=rng_net,
        bcp_config=bcp_config,
        recovery_config=recovery_config,
        churn_rate=churn_rate,
    )
    population = media_population(overlay, rng=rng_pop)
    net.deploy(population)
    cfg = request_config or RequestConfig(
        function_count=(3, 3),
        qos_tightness=3.0,  # §6.2 measures achieved delay, not rejection
        duration_mean=1800.0,  # "tens of minutes or several hours"
    )
    requests = RequestGenerator(
        overlay, net.registry.functions(), cfg, rng=rng_req, alive=net.network.is_alive
    )
    return Scenario(net, overlay, population, requests, name="planetlab")
