"""Workload generation: populations, request streams, experiment scenarios."""

from .arrivals import (
    AsyncioScheduler,
    PoissonArrivals,
    ZipfFunctionSampler,
    zipf_weights,
)
from .generator import (
    PopulationConfig,
    RequestConfig,
    RequestGenerator,
    function_names,
    generate_population,
    media_population,
)

__all__ = [
    "AsyncioScheduler",
    "PoissonArrivals",
    "PopulationConfig",
    "RequestConfig",
    "RequestGenerator",
    "function_names",
    "generate_population",
    "media_population",
    "zipf_weights",
    "ZipfFunctionSampler",
]
