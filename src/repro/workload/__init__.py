"""Workload generation: populations, request streams, experiment scenarios."""

from .arrivals import (
    AsyncioScheduler,
    PoissonArrivals,
    ZipfFunctionSampler,
    zipf_weights,
)
from .generator import (
    PopulationConfig,
    RequestConfig,
    RequestGenerator,
    function_names,
    generate_population,
    media_population,
)
from .largegraph import (
    LargeGraphConfig,
    LargeGraphWorld,
    generate_large_graph,
    largegraph_population,
    largegraph_request,
    largegraph_world,
)

__all__ = [
    "AsyncioScheduler",
    "LargeGraphConfig",
    "LargeGraphWorld",
    "PoissonArrivals",
    "PopulationConfig",
    "RequestConfig",
    "RequestGenerator",
    "function_names",
    "generate_large_graph",
    "generate_population",
    "largegraph_population",
    "largegraph_request",
    "largegraph_world",
    "media_population",
    "zipf_weights",
    "ZipfFunctionSampler",
]
