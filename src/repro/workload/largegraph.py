"""Large function-graph workloads for composition scaling studies.

The paper's requests stay small (2–4 functions, §6.1); this module
generates the *stress* regime instead — DAGs of 20–300 functions with a
configurable candidate density per function — so the anytime strategies
in :mod:`repro.core.strategies` have something to beat BCP on.

Three graph shapes are supported:

* ``layered`` — nodes arranged in consecutive layers, every non-first
  node wired to the previous layer (media pipelines with fan-out/fan-in);
* ``series-parallel`` — alternating join nodes and parallel groups, the
  classic stage-pipeline shape;
* ``random`` — a random DAG grown in topological order.

All generators keep the **source→sink path count** bounded
(``max_branches``): the composition machinery enumerates branches
explicitly (probe states, QoS suffix tables, end-to-end evaluation), so
an uncontrolled DAG would make *every* algorithm exponential in a way
no real request is.  Extra edges beyond the spanning structure are only
committed if a full path-count recomputation stays within the cap.

Function names use a ``G`` prefix (``G001``…) so a large-graph catalogue
can coexist with the paper's ``F`` catalogue in one registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.composition import SpiderNet, default_peer_capacity
from ..core.function_graph import FunctionGraph
from ..core.qos import QoSRequirement, QoSVector, loss_to_additive
from ..core.request import CompositeRequest
from ..core.resources import ResourceVector
from ..services.component import ComponentSpec
from ..sim.rng import as_generator, spawn
from ..topology.inet import generate_ip_network
from ..topology.overlay import Overlay, mesh_overlay
from .generator import function_names

__all__ = [
    "LargeGraphConfig",
    "LargeGraphWorld",
    "generate_large_graph",
    "largegraph_population",
    "largegraph_request",
    "largegraph_world",
]


@dataclass(frozen=True)
class LargeGraphConfig:
    """Shape of one large-graph composition problem."""

    kind: str = "layered"  # "layered" | "series-parallel" | "random"
    n_functions: int = 50  # DAG size (20–300 is the intended regime)
    branching: int = 3  # layer width / parallel-group size / extra-edge rate
    candidate_density: int = 4  # component replicas per function
    max_branches: int = 32  # hard cap on source→sink path count
    # per-component footprint: small, so 100-function graphs still admit
    cpu_range: Tuple[float, float] = (1.0, 6.0)
    memory_range: Tuple[float, float] = (4.0, 32.0)
    service_delay_range: Tuple[float, float] = (0.002, 0.020)
    service_loss_range: Tuple[float, float] = (0.0, 0.001)
    bandwidth_factor_range: Tuple[float, float] = (0.9, 1.1)
    qos_tightness: float = 1.5  # multiplier on the calibrated QoS budgets
    per_hop_delay_allowance: float = 0.120
    per_function_delay_allowance: float = 0.030
    # loss budget: link loss dominates at depth (every hop crosses the
    # underlay), so it gets a per-hop allowance just like delay does
    per_hop_loss_allowance: float = 0.004
    per_function_loss_bound: float = 0.002
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("layered", "series-parallel", "random"):
            raise ValueError(f"unknown large-graph kind {self.kind!r}")
        if self.n_functions < 2:
            raise ValueError("n_functions must be at least 2")
        if self.branching < 1:
            raise ValueError("branching must be at least 1")
        if self.candidate_density < 1:
            raise ValueError("candidate_density must be at least 1")
        if self.max_branches < 1:
            raise ValueError("max_branches must be at least 1")


# ----------------------------------------------------------------------
# DAG generation
# ----------------------------------------------------------------------
def _total_paths(n: int, preds: Sequence[Sequence[int]]) -> int:
    """Source→sink path count of the DAG given per-node predecessor lists
    (nodes are already in topological order: every pred index < node)."""
    paths = [0] * n
    has_succ = [False] * n
    for v in range(n):
        paths[v] = sum(paths[u] for u in preds[v]) if preds[v] else 1
        for u in preds[v]:
            has_succ[u] = True
    return sum(paths[v] for v in range(n) if not has_succ[v])


def _commit_extra_edges(
    n: int,
    preds: List[List[int]],
    proposals: List[Tuple[int, int]],
    max_branches: int,
    rng,
) -> None:
    """Greedily add proposed (u, v) edges, in shuffled order, while the
    path count stays within the cap.  Recomputing the count per proposal
    is O(V+E) — cheap at these sizes, and exact where any local bound
    would not be."""
    for idx in rng.permutation(len(proposals)):
        u, v = proposals[int(idx)]
        if u in preds[v]:
            continue
        preds[v].append(u)
        if _total_paths(n, preds) > max_branches:
            preds[v].remove(u)


def generate_large_graph(
    config: Optional[LargeGraphConfig] = None, rng=None
) -> FunctionGraph:
    """A large DAG of ``G``-prefixed functions with bounded path count."""
    cfg = config or LargeGraphConfig()
    rng = as_generator(rng if rng is not None else cfg.seed)
    n = cfg.n_functions
    names = function_names(n, prefix="G")
    preds: List[List[int]] = [[] for _ in range(n)]

    if cfg.kind == "layered":
        # a braid: entry → `branching` parallel chains → exit, with
        # cross-links between depth-adjacent positions of different
        # chains proposed under the path cap.  The base path count is
        # exactly the chain count, independent of depth.
        middle = list(range(1, n - 1))
        w = max(1, min(cfg.branching, len(middle) or 1))
        chains: List[List[int]] = [middle[c::w] for c in range(w)]
        chains = [c for c in chains if c]
        for chain in chains:
            preds[chain[0]].append(0)
            for u, v in zip(chain, chain[1:]):
                preds[v].append(u)
            preds[n - 1].append(chain[-1])
        if not chains:
            preds[n - 1].append(0)
        proposals: List[Tuple[int, int]] = []
        for c1, ch1 in enumerate(chains):
            for c2, ch2 in enumerate(chains):
                if c1 == c2:
                    continue
                for i in range(min(len(ch1), len(ch2)) - 1):
                    proposals.append((ch1[i], ch2[i + 1]))
        _commit_extra_edges(n, preds, proposals, cfg.max_branches, rng)

    elif cfg.kind == "series-parallel":
        # alternating join nodes and parallel groups: j → {p…} → j → …
        # path count is the product of group sizes, tracked exactly
        product = 1
        i = 1  # node 0 is the entry join
        last_join = 0
        while i < n:
            remaining = n - i
            size = int(rng.integers(1, max(1, cfg.branching) + 1))
            size = min(size, max(1, remaining - 1))
            if product * size > cfg.max_branches:
                size = 1
            group = list(range(i, i + size))
            for v in group:
                preds[v].append(last_join)
            i += size
            if i < n:  # closing join node
                for v in group:
                    preds[i].append(v)
                last_join = i
                product *= size
                i += 1

    else:  # random
        # a chain backbone (single source/sink, one path) plus random
        # local forward "skip" edges committed under the path cap
        for v in range(1, n):
            preds[v].append(v - 1)
        proposals = []
        for v in range(2, n):
            extra = int(rng.integers(0, cfg.branching + 1))
            lo = max(0, v - 4 * cfg.branching)  # keep edges local-ish
            pool = [u for u in range(lo, v - 1)]
            if pool and extra:
                for u in rng.choice(pool, size=min(extra, len(pool)), replace=False):
                    proposals.append((int(u), v))
        _commit_extra_edges(n, preds, proposals, cfg.max_branches, rng)

    edges = [(names[u], names[v]) for v in range(n) for u in preds[v]]
    return FunctionGraph.from_edges(names, edges)


# ----------------------------------------------------------------------
# population + request
# ----------------------------------------------------------------------
def largegraph_population(
    overlay: Overlay,
    graph: FunctionGraph,
    config: Optional[LargeGraphConfig] = None,
    rng=None,
) -> List[ComponentSpec]:
    """``candidate_density`` replicas of every graph function, each on a
    distinct random peer (per function), with deliberately small resource
    demands so deep graphs remain admissible."""
    cfg = config or LargeGraphConfig()
    rng = as_generator(rng if rng is not None else cfg.seed + 1)
    peers = list(overlay.peers())
    density = min(cfg.candidate_density, len(peers))
    specs: List[ComponentSpec] = []
    for fn in graph.functions:
        hosts = rng.choice(len(peers), size=density, replace=False)
        for pi in hosts:
            qp = QoSVector(
                {
                    "delay": float(rng.uniform(*cfg.service_delay_range)),
                    "loss": loss_to_additive(
                        float(rng.uniform(*cfg.service_loss_range))
                    ),
                }
            )
            res = ResourceVector(
                {
                    "cpu": float(rng.uniform(*cfg.cpu_range)),
                    "memory": float(rng.uniform(*cfg.memory_range)),
                }
            )
            specs.append(
                ComponentSpec.create(
                    function=fn,
                    peer=int(peers[int(pi)]),
                    qp=qp,
                    resources=res,
                    bandwidth_factor=float(
                        rng.uniform(*cfg.bandwidth_factor_range)
                    ),
                )
            )
    return specs


def largegraph_request(
    overlay: Overlay,
    graph: FunctionGraph,
    config: Optional[LargeGraphConfig] = None,
    rng=None,
    source: Optional[int] = None,
    dest: Optional[int] = None,
) -> CompositeRequest:
    """One composition request over ``graph`` with bounds calibrated to
    its depth (an absolute bound would be trivially loose at 20 functions
    and impossible at 300)."""
    cfg = config or LargeGraphConfig()
    rng = as_generator(rng if rng is not None else cfg.seed + 2)
    peers = list(overlay.peers())
    if source is None:
        source = int(peers[int(rng.integers(0, len(peers)))])
    if dest is None:
        dest = source
        while dest == source and len(peers) > 1:
            dest = int(peers[int(rng.integers(0, len(peers)))])
    longest_branch = max(len(b) for b in graph.branches())
    hops = longest_branch + 1
    delay_bound = cfg.qos_tightness * (
        hops * cfg.per_hop_delay_allowance
        + longest_branch * cfg.per_function_delay_allowance
    )
    loss_bound = min(
        0.5,
        cfg.qos_tightness
        * (
            hops * cfg.per_hop_loss_allowance
            + longest_branch * cfg.per_function_loss_bound
        ),
    )
    qos = QoSRequirement(
        {"delay": delay_bound, "loss": loss_to_additive(loss_bound)}
    )
    return CompositeRequest.create(
        function_graph=graph,
        qos=qos,
        source_peer=source,
        dest_peer=dest,
        bandwidth=float(rng.uniform(0.2, 0.6)),
        failure_req=0.05,
        duration=600.0,
    )


# ----------------------------------------------------------------------
# one-call world builder
# ----------------------------------------------------------------------
@dataclass
class LargeGraphWorld:
    """A built large-graph environment ready for strategy comparison."""

    net: SpiderNet
    overlay: Overlay
    graph: FunctionGraph
    population: List[ComponentSpec]
    request: CompositeRequest
    config: LargeGraphConfig


def largegraph_world(
    config: Optional[LargeGraphConfig] = None,
    n_peers: int = 60,
    n_ip: int = 300,
) -> LargeGraphWorld:
    """Build overlay + middleware, deploy the population, draw a request.

    Peer capacities are scaled with the expected per-peer component load
    so the generated problem is resource-feasible by construction (the
    strategies are being compared on *search*, not on a world where no
    valid graph exists at all).
    """
    cfg = config or LargeGraphConfig()
    rng = as_generator(cfg.seed)
    rng_topo, rng_overlay, rng_net, rng_pop, rng_req = spawn(rng, 5)
    ip = generate_ip_network(n_ip, rng=rng_topo)
    overlay = mesh_overlay(ip, n_peers, k=4, rng=rng_overlay)
    expected_load = max(
        1.0, cfg.n_functions * cfg.candidate_density / max(1, n_peers)
    )
    capacity = default_peer_capacity(
        n_peers,
        rng_net,
        cpu_range=(50.0 * expected_load, 150.0 * expected_load),
        memory_range=(256.0 * expected_load, 1024.0 * expected_load),
    )
    net = SpiderNet.build(overlay, rng=rng_net, peer_capacity=capacity)
    graph = generate_large_graph(cfg, rng=rng_pop)
    population = largegraph_population(overlay, graph, cfg, rng=rng_pop)
    net.deploy(population)
    request = largegraph_request(overlay, graph, cfg, rng=rng_req)
    return LargeGraphWorld(
        net=net,
        overlay=overlay,
        graph=graph,
        population=population,
        request=request,
        config=cfg,
    )
