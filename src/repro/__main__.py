"""Command-line interface: ``python -m repro <experiment> [options]``.

Regenerates the paper's evaluation from the shell::

    python -m repro fig8               # success ratio vs workload
    python -m repro fig9 --quick       # failure recovery (reduced scale)
    python -m repro fig10
    python -m repro fig11 --plot       # with a terminal chart
    python -m repro overhead
    python -m repro trust
    python -m repro all --quick

``--quick`` shrinks every experiment to smoke-test scale (seconds);
``--seed`` re-rolls the randomness; ``--plot`` adds Unicode charts.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from .experiments import (
    Fig8Config,
    Fig9Config,
    Fig10Config,
    Fig11Config,
    OverheadConfig,
    TrustConfig,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_overhead,
    run_trust_extension,
)
from .experiments.plotting import ascii_chart
from .perf import profile_call

__all__ = ["main"]

_QUICK = {
    "fig8": Fig8Config(
        n_ip=200, n_peers=40, n_functions=12, workloads=(2, 4, 6),
        duration=10, probing_fractions=(0.2,), max_budget=60,
    ),
    "fig9": Fig9Config(
        n_ip=200, n_peers=40, n_functions=12, duration_minutes=15, target_sessions=10
    ),
    "fig10": Fig10Config(n_peers=40, requests_per_point=15),
    "fig11": Fig11Config(n_peers=40, budgets=(10, 100, 500), requests_per_point=8),
    "overhead": OverheadConfig(n_ip=200, n_peers=40, n_functions=12, duration=8, workload=2),
    "trust": TrustConfig(n_ip=200, n_peers=40, n_functions=8, sessions=120, batch=30),
}

_FULL = {
    "fig8": Fig8Config(),
    "fig9": Fig9Config(),
    "fig10": Fig10Config(),
    "fig11": Fig11Config(),
    "overhead": OverheadConfig(),
    "trust": TrustConfig(),
}

_RUNNERS = {
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "overhead": run_overhead,
    "trust": run_trust_extension,
}

_Y_LABELS = {
    "fig8": "success ratio",
    "fig9": "failures/min",
    "fig10": "ms",
    "fig11": "ms",
    "trust": "clean rate",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SpiderNet (HPDC 2004) reproduction — experiment runner",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_RUNNERS) + ["all"],
        help="which paper result to regenerate",
    )
    parser.add_argument("--quick", action="store_true", help="smoke-test scale")
    parser.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    parser.add_argument("--plot", action="store_true", help="render terminal charts")
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the hottest functions",
    )
    parser.add_argument(
        "--profile-dump",
        metavar="PATH",
        default=None,
        help="with --profile: also write raw pstats data to PATH "
        "(one experiment per invocation)",
    )
    return parser


def _config_for(name: str, quick: bool, seed: Optional[int]):
    cfg = (_QUICK if quick else _FULL)[name]
    if seed is not None:
        cfg = dataclasses.replace(cfg, seed=seed)
    return cfg


def _run_one(
    name: str,
    quick: bool,
    seed: Optional[int],
    plot: bool,
    profile: bool = False,
    profile_dump: Optional[str] = None,
) -> None:
    print(f"=== {name} {'(quick)' if quick else ''} ===", flush=True)
    cfg = _config_for(name, quick, seed)
    if profile:
        result, report = profile_call(
            _RUNNERS[name], cfg, verbose=True, dump_path=profile_dump
        )
        print()
        print(report)
    else:
        result = _RUNNERS[name](cfg, verbose=True)
    if hasattr(result, "table"):
        print()
        print(result.table())
    if plot and hasattr(result, "series"):
        print()
        print(ascii_chart(result.series, y_label=_Y_LABELS.get(name, "y")))
    print()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(_RUNNERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        _run_one(
            name,
            args.quick,
            args.seed,
            args.plot,
            profile=args.profile,
            profile_dump=args.profile_dump,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
