"""Command-line interface: ``python -m repro <subcommand> [options]``.

Experiment subcommands regenerate the paper's evaluation in simulated
virtual time::

    python -m repro fig8                 # success ratio vs workload
    python -m repro fig9 --quick         # failure recovery (reduced scale)
    python -m repro fig10 --trace t.jsonl
    python -m repro fig11 --plot         # with a terminal chart
    python -m repro overhead
    python -m repro trust
    python -m repro all --quick

Live subcommands run the same protocol over real asyncio transports
(:mod:`repro.net`)::

    python -m repro compose-live                   # loopback cluster
    python -m repro compose-live --transport tcp --peers 10 --requests 5
    python -m repro compose-live --concurrency 8 --requests 16
    python -m repro serve --peers 5 --duration 30  # keep a cluster up
    python -m repro cluster --peers 48 --procs 4 --rate 120  # multi-process soak
    python -m repro cluster --admission --kill 5   # overload + churn survival

``cluster`` shards one logical TCP cluster across worker processes
(spawned as ``python -m repro cluster-worker``, an internal subcommand)
and drives it with an open-loop Poisson load; ``--admission`` arms the
per-peer overload guard so excess sessions are shed with a fast ``Busy``
reply instead of timing out.

Live subcommands negotiate the binary wire fast path by default;
``--codec 1`` forces the JSON fallback and ``--no-coalesce`` disables
per-connection write batching.  For them ``--profile`` prints a
:class:`~repro.perf.PhaseTimer` boot/compose/shutdown breakdown instead
of a cProfile report.

Common options: ``--quick`` shrinks every experiment to smoke-test scale
(seconds); ``--seed`` re-rolls the randomness; ``--plot`` adds Unicode
charts; ``--profile`` (with optional ``--profile-dump PATH``) runs under
cProfile; ``--trace PATH`` writes a structured JSONL event log — the
same :class:`~repro.sim.tracing.EventTrace` format in simulated and
live mode, so the two runtimes produce comparable logs.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import sys
from typing import List, Optional

from .experiments import (
    Fig8Config,
    Fig9Config,
    Fig10Config,
    Fig11Config,
    OverheadConfig,
    TrustConfig,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_overhead,
    run_trust_extension,
)
from .experiments.plotting import ascii_chart
from .perf import profile_call
from .sim.tracing import EventTrace

__all__ = ["main"]

_QUICK = {
    "fig8": Fig8Config(
        n_ip=200, n_peers=40, n_functions=12, workloads=(2, 4, 6),
        duration=10, probing_fractions=(0.2,), max_budget=60,
    ),
    "fig9": Fig9Config(
        n_ip=200, n_peers=40, n_functions=12, duration_minutes=15, target_sessions=10
    ),
    "fig10": Fig10Config(n_peers=40, requests_per_point=15),
    "fig11": Fig11Config(n_peers=40, budgets=(10, 100, 500), requests_per_point=8),
    "overhead": OverheadConfig(n_ip=200, n_peers=40, n_functions=12, duration=8, workload=2),
    "trust": TrustConfig(n_ip=200, n_peers=40, n_functions=8, sessions=120, batch=30),
}

_FULL = {
    "fig8": Fig8Config(),
    "fig9": Fig9Config(),
    "fig10": Fig10Config(),
    "fig11": Fig11Config(),
    "overhead": OverheadConfig(),
    "trust": TrustConfig(),
}

_RUNNERS = {
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "overhead": run_overhead,
    "trust": run_trust_extension,
}

_Y_LABELS = {
    "fig8": "success ratio",
    "fig9": "failures/min",
    "fig10": "ms",
    "fig11": "ms",
    "trust": "clean rate",
}

_EXPERIMENT_HELP = {
    "fig8": "success ratio vs workload (five algorithms)",
    "fig9": "failure recovery with vs without backups",
    "fig10": "session setup time vs function number",
    "fig11": "service delay vs probing budget",
    "overhead": "BCP vs centralized message overhead",
    "trust": "trust-aware composition extension",
    "all": "run every experiment in sequence",
}


def _add_experiment_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--quick", action="store_true", help="smoke-test scale")
    sub.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    sub.add_argument("--plot", action="store_true", help="render terminal charts")
    sub.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the hottest functions",
    )
    sub.add_argument(
        "--profile-dump",
        metavar="PATH",
        default=None,
        help="with --profile: also write raw pstats data to PATH "
        "(one experiment per invocation)",
    )
    sub.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a structured JSONL event log (EventTrace format)",
    )


def _add_cluster_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--peers", type=int, default=5, help="overlay peers to host")
    sub.add_argument("--functions", type=int, default=6, help="service functions")
    sub.add_argument(
        "--transport", choices=("loopback", "tcp"), default="loopback",
        help="loopback queues or real TCP sockets on localhost",
    )
    sub.add_argument(
        "--port-base", type=int, default=None,
        help="tcp: peer p listens on port-base+p (default: OS-assigned)",
    )
    sub.add_argument("--seed", type=int, default=0, help="environment RNG seed")
    sub.add_argument(
        "--distributed",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="DHT-routed discovery with per-peer pools (default); "
        "--no-distributed keeps the shared in-process ground truth",
    )
    sub.add_argument(
        "--codec",
        type=int,
        choices=(1, 2),
        default=2,
        help="wire codec ceiling: 2 negotiates the binary fast path "
        "(default), 1 forces the JSON fallback",
    )
    sub.add_argument(
        "--coalesce",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="batch frames per connection and drain once per flush "
        "window (default); --no-coalesce drains after every frame",
    )
    sub.add_argument(
        "--dir-cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="directory acceleration tier: peer-local lookup caches, "
        "Bloom negative caching, hot-key replica fan-out (default); "
        "--no-dir-cache routes every lookup (distributed mode only)",
    )
    sub.add_argument(
        "--measure",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="topology measurement plane: active neighbour probing, "
        "passive RTT sampling, adaptive routing (default); "
        "--no-measure freezes routing on the static topology",
    )
    sub.add_argument(
        "--probe-interval", type=float, default=None, metavar="SECONDS",
        help="seconds between active probe cycles (0 = passive only)",
    )
    sub.add_argument(
        "--probe-budget", type=int, default=None, metavar="N",
        help="max active probes per cycle per peer",
    )
    sub.add_argument(
        "--composer",
        default="bcp",
        metavar="NAME",
        help="composition strategy from the registry (default: bcp; "
        "see `repro.core.strategies` — e.g. backtrack, decompose, "
        "optimal, random, static, centralized); non-bcp strategies "
        "need a global view, so --no-distributed is forced",
    )
    sub.add_argument(
        "--profile",
        action="store_true",
        help="time the boot/run/shutdown phases and print a breakdown",
    )
    sub.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a structured JSONL event log (EventTrace format)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SpiderNet (HPDC 2004) reproduction — "
        "experiment runner and live peer runtime",
    )
    subs = parser.add_subparsers(dest="experiment", required=True, metavar="subcommand")
    for name in sorted(_RUNNERS) + ["all"]:
        sub = subs.add_parser(name, help=_EXPERIMENT_HELP[name])
        _add_experiment_options(sub)
    serve = subs.add_parser(
        "serve", help="boot a live cluster of peer daemons and keep it running"
    )
    _add_cluster_options(serve)
    serve.add_argument(
        "--duration", type=float, default=None,
        help="stop after this many seconds (default: until interrupted)",
    )
    live = subs.add_parser(
        "compose-live", help="boot a live cluster and compose requests over the wire"
    )
    _add_cluster_options(live)
    live.add_argument("--requests", type=int, default=3, help="compositions to run")
    live.add_argument("--budget", type=int, default=None, help="probing budget override")
    live.add_argument(
        "--concurrency", type=int, default=1,
        help="overlapping compose sessions (1 = sequential, the default)",
    )
    live.add_argument(
        "--kill", type=int, default=None, metavar="PEER",
        help="kill this peer after the first composition (exercises retry)",
    )
    scale = subs.add_parser(
        "cluster",
        help="scale-out harness: shard one cluster over N worker "
        "processes and drive it with open-loop load",
    )
    scale.add_argument("--peers", type=int, default=16, help="overlay peers")
    scale.add_argument("--functions", type=int, default=8, help="service functions")
    scale.add_argument(
        "--procs", type=int, default=2, help="worker processes to shard over"
    )
    scale.add_argument(
        "--port-base", type=int, default=27000,
        help="peer p listens on port-base+p (must be free)",
    )
    scale.add_argument("--seed", type=int, default=0, help="environment RNG seed")
    scale.add_argument(
        "--rate", type=float, default=20.0,
        help="cluster-wide offered load, requests/second (open loop)",
    )
    scale.add_argument(
        "--duration", type=float, default=5.0, help="load phase length, seconds"
    )
    scale.add_argument("--budget", type=int, default=None, help="probing budget override")
    scale.add_argument(
        "--request-timeout", type=float, default=10.0,
        help="per-composition result timeout, seconds",
    )
    scale.add_argument(
        "--confirm",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="confirm winning compositions to firm tokens (default); "
        "--no-confirm releases every session after selection",
    )
    scale.add_argument(
        "--measure",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="topology measurement plane on each shard (default)",
    )
    scale.add_argument(
        "--admission",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="per-peer overload survival: session admission with fast "
        "Busy rejection, probe shedding, budget degradation",
    )
    scale.add_argument(
        "--max-sessions", type=int, default=8, metavar="N",
        help="with --admission: concurrent collection windows per peer",
    )
    scale.add_argument(
        "--probe-soft-limit", type=int, default=48, metavar="N",
        help="with --admission: probe tasks before budgets halve",
    )
    scale.add_argument(
        "--max-probe-tasks", type=int, default=96, metavar="N",
        help="with --admission: probe tasks before probes are shed",
    )
    scale.add_argument(
        "--rpc-max-inflight", type=int, default=0, metavar="N",
        help="with --admission: outbound RPC concurrency per peer "
        "(0 = unlimited)",
    )
    scale.add_argument(
        "--kill", type=int, default=None, metavar="PEER",
        help="kill this peer mid-load (scripted churn)",
    )
    scale.add_argument(
        "--kill-after", type=float, default=1.0, metavar="SECONDS",
        help="with --kill: seconds into the load phase to kill at",
    )
    scale.add_argument(
        "--revive-after", type=float, default=None, metavar="SECONDS",
        help="with --kill: seconds into the load phase to revive at",
    )
    scale.add_argument(
        "--json", action="store_true",
        help="print the full merged report as JSON instead of a summary",
    )
    worker = subs.add_parser(
        "cluster-worker",
        help="internal: one shard of a 'cluster' run (spawned by the "
        "controller, speaks JSON lines on stdin/stdout)",
    )
    worker.add_argument("config", help="ScaleoutConfig as a JSON object")
    worker.add_argument("--shard", type=int, required=True, help="shard index")
    return parser


def _config_for(name: str, quick: bool, seed: Optional[int]):
    cfg = (_QUICK if quick else _FULL)[name]
    if seed is not None:
        cfg = dataclasses.replace(cfg, seed=seed)
    return cfg


def _run_one(
    name: str,
    quick: bool,
    seed: Optional[int],
    plot: bool,
    profile: bool = False,
    profile_dump: Optional[str] = None,
    trace: Optional[EventTrace] = None,
) -> None:
    print(f"=== {name} {'(quick)' if quick else ''} ===", flush=True)
    cfg = _config_for(name, quick, seed)
    if profile:
        result, report = profile_call(
            _RUNNERS[name], cfg, verbose=True, trace=trace, dump_path=profile_dump
        )
        print()
        print(report)
    else:
        result = _RUNNERS[name](cfg, verbose=True, trace=trace)
    if hasattr(result, "table"):
        print()
        print(result.table())
    if plot and hasattr(result, "series"):
        print()
        print(ascii_chart(result.series, y_label=_Y_LABELS.get(name, "y")))
    print()


def _build_cluster(args, trace: Optional[EventTrace]):
    from .net import (
        ClusterConfig,
        DirectoryTierConfig,
        LiveCluster,
        MeasurementConfig,
    )

    measure_kwargs = {"enabled": args.measure}
    if args.probe_interval is not None:
        measure_kwargs["probe_interval"] = args.probe_interval
    if args.probe_budget is not None:
        measure_kwargs["probe_budget"] = args.probe_budget
    composer = getattr(args, "composer", "bcp")
    distributed = args.distributed
    if composer != "bcp" and distributed:
        # every non-bcp strategy composes over the global registry/pool
        # view, which distributed mode seals off
        print(f"composer {composer!r} needs the global view; forcing --no-distributed")
        distributed = False
    cfg = ClusterConfig(
        n_peers=args.peers,
        n_functions=args.functions,
        transport=args.transport,
        port_base=args.port_base,
        seed=args.seed,
        distributed=distributed,
        composer=composer,
        wire_version=args.codec,
        coalesce_writes=args.coalesce,
        directory_tier=DirectoryTierConfig(enabled=args.dir_cache),
        measurement=MeasurementConfig(**measure_kwargs),
    )
    return LiveCluster(cfg, trace=trace)


def _print_phase_timer(timer) -> None:
    total = sum(timer.totals.values()) or 1.0
    print("  phases:")
    for name, seconds in timer.totals.items():
        print(f"    {name:<10} {seconds * 1000:8.1f} ms  ({seconds / total:5.1%})")


def _print_directory_stats(cluster) -> None:
    if not cluster.distributed:
        return
    stats = cluster.directory_stats()
    print("  directory:")
    print(
        f"    slice serves {stats['directory_serves']}, "
        f"rows {stats['directory_rows']}"
    )
    print(
        f"    cache hits {stats['cache_hits']} / misses {stats['cache_misses']} "
        f"(hit rate {stats['hit_rate']:.1%}), "
        f"neg hits {stats['neg_hits']}, replica serves {stats['replica_serves']}"
    )


def _print_measurement_stats(cluster) -> None:
    stats = cluster.measurement_stats()
    if not stats.get("enabled"):
        return
    print("  measurement:")
    print(
        f"    probes {stats['probes_sent']} sent / "
        f"{stats['probe_failures']} failed, "
        f"samples {stats['samples_active']} active + "
        f"{stats['samples_passive']} passive"
    )
    down = stats["paths_down"]
    n_down = sum(len(peers) for peers in down.values())
    print(
        f"    paths down {n_down} "
        f"({stats['down_events']} down / {stats['up_events']} up events), "
        f"reprices {stats['reprices']}, "
        f"router rebuilds {stats['router_rebuilds']}"
    )


async def _serve(args, trace: Optional[EventTrace]) -> int:
    from .perf import PhaseTimer

    timer = PhaseTimer()
    cluster = _build_cluster(args, trace)
    with timer.phase("boot"):
        await cluster.start()
    try:
        addrs = getattr(cluster.transport, "addresses", {})
        print(f"live cluster up: {args.peers} peers over {args.transport}", flush=True)
        for peer, addr in sorted(addrs.items()):
            print(f"  peer {peer}: {addr[0]}:{addr[1]}")
        try:
            with timer.phase("serve"):
                if args.duration is not None:
                    await asyncio.sleep(args.duration)
                else:
                    while True:
                        await asyncio.sleep(3600)
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
    finally:
        with timer.phase("shutdown"):
            await cluster.stop()
    print("cluster stopped")
    if args.profile:
        _print_phase_timer(timer)
        _print_directory_stats(cluster)
        _print_measurement_stats(cluster)
    return 0


def _print_compose_result(request, result, profile: bool = False) -> None:
    status = "ok" if result.success else f"FAILED ({result.failure_reason})"
    print(
        f"  request {request.request_id}: {status} — "
        f"{result.probes_sent} probes, "
        f"{result.candidates_examined} candidates, "
        f"setup {result.setup_time * 1000:.0f} ms (virtual)"
    )
    if profile and result.phases:
        ops = {
            k[len("ops_"):]: v
            for k, v in sorted(result.phases.items())
            if k.startswith("ops_")
        }
        if ops:
            print(
                "    ops: "
                + ", ".join(f"{k}={int(v)}" for k, v in ops.items())
            )


async def _compose_live(args, trace: Optional[EventTrace]) -> int:
    from .perf import PhaseTimer

    timer = PhaseTimer()
    cluster = _build_cluster(args, trace)
    failures = 0
    with timer.phase("boot"):
        await cluster.start()
    try:
        from .net.rpc import RpcError

        requests = cluster.scenario.requests.batch(args.requests)
        if args.concurrency > 1:
            try:
                with timer.phase("compose"):
                    results = await cluster.compose_concurrent(
                        requests,
                        concurrency=args.concurrency,
                        budget=args.budget,
                        timeout=60,
                    )
            except RpcError as exc:
                print(f"  batch FAILED ({exc})")
                failures += 1
                results = []
            for request, result in zip(requests, results):
                _print_compose_result(request, result, profile=args.profile)
                failures += 0 if result.success else 1
        else:
            for i, request in enumerate(requests):
                try:
                    with timer.phase("compose"):
                        result = await cluster.compose(
                            request, budget=args.budget, timeout=60
                        )
                except RpcError as exc:
                    # e.g. the request's own source or dest peer was killed
                    print(f"  request {request.request_id}: FAILED ({exc})")
                    failures += 1
                    continue
                _print_compose_result(request, result, profile=args.profile)
                failures += 0 if result.success else 1
                if args.kill is not None and i == 0:
                    if args.kill in (request.source_peer, request.dest_peer):
                        print(f"  not killing endpoint peer {args.kill}")
                    else:
                        cluster.kill_peer(args.kill)
                        print(f"  killed peer {args.kill}")
        stats = cluster.rpc_stats()
        print(
            f"  wire: {stats['frames_sent']} frames / {stats['bytes_sent']} bytes, "
            f"{stats['retries_performed']} RPC retries"
        )
        if cluster.errors():
            print(f"  daemon errors: {cluster.errors()}")
            failures += 1
    finally:
        with timer.phase("shutdown"):
            await cluster.stop()
    if args.profile:
        _print_phase_timer(timer)
        _print_directory_stats(cluster)
        _print_measurement_stats(cluster)
    return 1 if failures else 0


def _scaleout_config(args):
    from .net import AdmissionConfig
    from .net.scaleout import ScaleoutConfig

    admission = None
    if args.admission:
        admission = AdmissionConfig(
            enabled=True,
            max_sessions=args.max_sessions,
            probe_soft_limit=args.probe_soft_limit,
            max_probe_tasks=args.max_probe_tasks,
            rpc_max_inflight=args.rpc_max_inflight,
        )
    return ScaleoutConfig(
        n_peers=args.peers,
        n_functions=args.functions,
        procs=args.procs,
        port_base=args.port_base,
        seed=args.seed,
        rate=args.rate,
        duration=args.duration,
        budget=args.budget,
        confirm=args.confirm,
        request_timeout=args.request_timeout,
        measure=args.measure,
        admission=admission,
        kill_peer=args.kill,
        kill_after=args.kill_after,
        revive_after=args.revive_after,
    )


async def _cluster(args) -> int:
    import json as _json

    from .net.scaleout import run_scaleout

    cfg = _scaleout_config(args)
    print(
        f"scale-out: {cfg.n_peers} peers / {cfg.procs} procs, "
        f"{cfg.rate:g} req/s for {cfg.duration:g}s "
        f"(admission {'on' if cfg.admission else 'off'})",
        # with --json stdout is pure JSON (pipeable); banner to stderr
        file=sys.stderr if args.json else sys.stdout,
        flush=True,
    )
    report = await run_scaleout(cfg)
    if args.json:
        report = dict(report)
        print(_json.dumps(report, indent=2))
    else:
        s = report["summary"]
        print(
            f"  offered {s['offered']} ({s['offered_rate']:.1f}/s): "
            f"{s['ok']} ok, {s['busy']} shed, "
            f"{s['failed']} failed, {s['error']} errors"
        )
        print(
            f"  goodput {s['goodput']:.1f}/s, "
            f"ok p50 {s['latency_ok']['p50'] * 1000:.0f} ms / "
            f"p99 {s['latency_ok']['p99'] * 1000:.0f} ms, "
            f"shed p99 {s['latency_busy']['p99'] * 1000:.0f} ms"
        )
        adm = report["admission"]
        if adm["enabled"]:
            print(
                f"  admission: {adm['sessions_admitted']} admitted, "
                f"{adm['sessions_rejected']} rejected, "
                f"{adm['probes_shed']} probes shed, "
                f"{adm['budget_degrades']} budget degrades"
            )
        if report["errors"]:
            print(f"  daemon errors: {report['errors']}")
    return 1 if report["errors"] else 0


async def _cluster_worker(args) -> int:
    import json as _json

    from .net.scaleout import ScaleoutConfig, run_worker

    cfg = ScaleoutConfig.from_dict(_json.loads(args.config))
    return await run_worker(cfg, args.shard)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    trace = EventTrace() if getattr(args, "trace", None) else None
    try:
        if args.experiment == "serve":
            return asyncio.run(_serve(args, trace))
        if args.experiment == "compose-live":
            return asyncio.run(_compose_live(args, trace))
        if args.experiment == "cluster":
            return asyncio.run(_cluster(args))
        if args.experiment == "cluster-worker":
            return asyncio.run(_cluster_worker(args))
        names = sorted(_RUNNERS) if args.experiment == "all" else [args.experiment]
        for name in names:
            _run_one(
                name,
                args.quick,
                args.seed,
                args.plot,
                profile=args.profile,
                profile_dump=args.profile_dump,
                trace=trace,
            )
        return 0
    finally:
        if trace is not None:
            n = trace.to_jsonl(args.trace)
            print(f"wrote {n} trace events to {args.trace}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
