"""Decentralized trust management (the paper's first future-work item).

§8: "In the future, we will integrate decentralized trust management
into the current service composition framework to support secure
service composition."  This module provides that integration point: a
fully decentralized beta-reputation system in the style of Jøsang's
beta model combined with one-level recommendation weighting (a
lightweight web-of-trust, avoiding any global iteration à la EigenTrust
that would need the very global state SpiderNet avoids).

Each peer keeps **direct experience** counters (positive/negative
session outcomes) about peers it actually used.  Evaluating a stranger
combines the evaluator's direct estimate with **recommendations** from
the peers the evaluator trusts most, weighted by that trust — all
information any peer can obtain with a handful of messages.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..sim.metrics import MessageLedger

__all__ = ["BetaReputation", "TrustManager"]


@dataclass
class BetaReputation:
    """Beta-model evidence: α positive and β negative observations.

    The trust estimate is the expected value of the Beta(α+1, β+1)
    posterior, E = (α+1)/(α+β+2): no evidence → 0.5; evidence moves the
    estimate toward the observed ratio with confidence growing in the
    sample size.  ``decay`` ages old evidence so behaviour changes are
    picked up (a peer cannot live on past goodwill forever).
    """

    alpha: float = 0.0
    beta: float = 0.0

    @property
    def expectation(self) -> float:
        return (self.alpha + 1.0) / (self.alpha + self.beta + 2.0)

    @property
    def confidence(self) -> float:
        """How much evidence backs the expectation, in [0, 1)."""
        n = self.alpha + self.beta
        return n / (n + 2.0)

    def record(self, positive: bool, weight: float = 1.0) -> None:
        if weight < 0:
            raise ValueError(f"negative evidence weight: {weight}")
        if positive:
            self.alpha += weight
        else:
            self.beta += weight

    def decayed(self, factor: float) -> None:
        """Age the evidence in place: multiply both counters by ``factor``."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"decay factor must be in [0,1], got {factor}")
        self.alpha *= factor
        self.beta *= factor


class TrustManager:
    """Per-peer trust state plus decentralized evaluation.

    ``trust(evaluator, target)`` blends

    * the evaluator's **direct** beta estimate of the target, and
    * up to ``max_recommenders`` **recommendations** — the direct
      estimates held by the peers the evaluator trusts most — weighted
      by the evaluator's trust in each recommender,

    with the direct component's share growing with its confidence (an
    evaluator with lots of first-hand evidence barely needs gossip).
    Each evaluation charges ``trust_query`` messages to the ledger: this
    is a *protocol*, not an oracle.
    """

    def __init__(
        self,
        max_recommenders: int = 4,
        ledger: Optional[MessageLedger] = None,
        decay: float = 1.0,
    ) -> None:
        if max_recommenders < 0:
            raise ValueError("max_recommenders must be >= 0")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.max_recommenders = max_recommenders
        self.ledger = ledger if ledger is not None else MessageLedger()
        self.decay = decay
        # _direct[rater][target] -> BetaReputation
        self._direct: Dict[int, Dict[int, BetaReputation]] = defaultdict(dict)

    # ------------------------------------------------------------------
    # evidence
    # ------------------------------------------------------------------
    def record_interaction(self, rater: int, target: int, positive: bool, weight: float = 1.0) -> None:
        """The rater observed the target behave well/badly in a session."""
        if rater == target:
            return  # self-ratings are meaningless and exploitable
        rep = self._direct[rater].setdefault(target, BetaReputation())
        if self.decay < 1.0:
            rep.decayed(self.decay)
        rep.record(positive, weight)

    def direct(self, rater: int, target: int) -> BetaReputation:
        return self._direct[rater].get(target, BetaReputation())

    def interactions(self, rater: int) -> List[int]:
        return sorted(self._direct[rater])

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def trust(self, evaluator: int, target: int) -> float:
        """Decentralized trust estimate of ``target`` by ``evaluator``."""
        if evaluator == target:
            return 1.0
        own = self.direct(evaluator, target)
        direct_value = own.expectation
        direct_weight = own.confidence
        # recommenders: the peers the evaluator trusts most *directly*
        recommenders = sorted(
            (
                (rep.expectation * rep.confidence, peer)
                for peer, rep in self._direct[evaluator].items()
                if peer != target
            ),
            reverse=True,
        )[: self.max_recommenders]
        rec_value = 0.0
        rec_weight = 0.0
        for recommender_trust, recommender in recommenders:
            their = self.direct(recommender, target)
            if their.confidence == 0.0:
                continue
            self.ledger.record("trust_query", 96)
            w = recommender_trust * their.confidence
            rec_value += w * their.expectation
            rec_weight += w
        if rec_weight > 0.0:
            rec_value /= rec_weight
        # blend: direct evidence dominates as its confidence grows
        if direct_weight == 0.0 and rec_weight == 0.0:
            return 0.5  # total stranger
        blend = direct_weight / (direct_weight + min(rec_weight, 1.0)) if (
            direct_weight + rec_weight
        ) > 0 else 0.0
        if rec_weight == 0.0:
            return direct_value
        return blend * direct_value + (1.0 - blend) * rec_value

    # ------------------------------------------------------------------
    def session_feedback(
        self, source: int, peers: Iterable[int], positive: bool
    ) -> None:
        """Rate every service peer of a finished session at once."""
        for peer in peers:
            self.record_interaction(source, peer, positive)
