"""Decentralized trust management (the paper's §8 future-work extension)."""

from .malice import MaliciousPopulation
from .reputation import BetaReputation, TrustManager

__all__ = ["BetaReputation", "MaliciousPopulation", "TrustManager"]
