"""Malicious peer models for secure-composition experiments.

A malicious peer accepts compositions like any other (its components are
function-qualified and its advertised QoS looks normal) but sabotages
sessions at runtime: it drops/corrupts the stream with some probability
per session.  The trust layer must learn to route around such peers
from observed outcomes alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

import numpy as np

from ..sim.rng import as_generator

__all__ = ["MaliciousPopulation"]


@dataclass
class MaliciousPopulation:
    """Which peers misbehave, and how often their sessions fail."""

    malicious: Set[int]
    sabotage_probability: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 <= self.sabotage_probability <= 1.0:
            raise ValueError("sabotage_probability must be in [0, 1]")

    @classmethod
    def random(
        cls, peers: Iterable[int], fraction: float, rng=None,
        sabotage_probability: float = 0.9,
        protected: Optional[Set[int]] = None,
    ) -> "MaliciousPopulation":
        """Mark a random ``fraction`` of peers as malicious."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        rng = as_generator(rng)
        pool = [p for p in peers if p not in (protected or set())]
        k = int(round(fraction * len(pool)))
        chosen = set(
            int(p) for p in rng.choice(pool, size=min(k, len(pool)), replace=False)
        ) if k else set()
        return cls(chosen, sabotage_probability)

    def is_malicious(self, peer: int) -> bool:
        return peer in self.malicious

    def session_outcome(self, service_peers: Iterable[int], rng) -> bool:
        """True = the session ran cleanly; False = sabotaged.

        Each malicious participant independently sabotages with its
        probability — one bad apple spoils the stream.
        """
        rng = as_generator(rng)
        for peer in service_peers:
            if peer in self.malicious and rng.random() < self.sabotage_probability:
                return False
        return True
