"""Figure 11: average end-to-end delay vs probing budget (WAN testbed).

Paper setup (§6.2): 3-function compositions over the 102-host overlay
with ~17 instances per media function (optimal flooding needs
17³ = 4913 probes); algorithms must find the composition with *minimum
end-to-end service delay*.  Expected shape: at tiny budgets SpiderNet
degenerates to random; delay falls as budget grows; by budget ≈ 200
(4 % of optimal's probes) it is near-optimal and flattens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.baselines import OptimalComposer, RandomComposer, optimal_probe_count
from ..core.bcp import BCPConfig
from ..core.quota import ReplicationProportionalQuota
from ..workload.generator import RequestConfig
from ..workload.scenarios import planetlab_testbed
from .harness import Series, format_table

__all__ = ["Fig11Config", "Fig11Result", "run_fig11"]


@dataclass(frozen=True)
class Fig11Config:
    n_peers: int = 102
    budgets: Tuple[int, ...] = (10, 50, 100, 200, 300, 400, 500, 1000)
    requests_per_point: int = 30
    n_functions: int = 3
    qos_tightness: float = 4.0  # delay is measured, not thresholded
    seed: int = 0


@dataclass
class Fig11Result:
    config: Fig11Config
    series: List[Series]  # avg delay (ms) vs budget: random / SpiderNet / optimal
    optimal_probes_mean: float = 0.0

    def table(self) -> str:
        return format_table("budget", self.series, float_fmt="{:.0f}")


def run_fig11(
    config: Optional[Fig11Config] = None, verbose: bool = False, trace=None
) -> Fig11Result:
    """Regenerate Figure 11 (avg service delay vs probing budget).

    ``trace`` records one ``experiment_point`` event per budget."""
    cfg = config or Fig11Config()
    scenario = planetlab_testbed(
        n_peers=cfg.n_peers,
        request_config=RequestConfig(
            function_count=(cfg.n_functions, cfg.n_functions),
            qos_tightness=cfg.qos_tightness,
        ),
        # quota must not bind here: the sweep's x axis *is* the budget, so
        # per-function quotas are opened up to the full duplicate set
        bcp_config=BCPConfig(
            objective="delay",
            quota_policy=ReplicationProportionalQuota(fraction=1.0, cap=10**6),
        ),
        seed=cfg.seed,
    )
    net = scenario.net
    # one fixed request sample reused across all budgets so curves differ
    # only by algorithm/budget, not workload noise
    sample = [scenario.requests.next_request() for _ in range(cfg.requests_per_point)]
    opt = OptimalComposer(
        net.overlay, net.pool, net.registry, ledger=net.ledger, objective="delay"
    )
    rnd = RandomComposer(net.overlay, net.pool, net.registry, ledger=net.ledger, rng=cfg.seed)

    def mean_delay(results: List[Optional[float]]) -> float:
        vals = [v for v in results if v is not None]
        return float(np.mean(vals)) * 1000.0 if vals else float("nan")

    random_delays: List[Optional[float]] = []
    optimal_delays: List[Optional[float]] = []
    opt_probe_counts: List[int] = []
    for request in sample:
        r = rnd.compose(request, confirm=False)
        random_delays.append(r.best_qos.get("delay") if r.best_qos is not None else None)
        o = opt.compose(request, confirm=False)
        optimal_delays.append(o.best_qos.get("delay") if o.success else None)
        duplicates = {
            fn: net.registry.duplicates(fn) for fn in request.function_graph.functions
        }
        opt_probe_counts.append(optimal_probe_count(request, duplicates))

    random_series = Series("random")
    spider_series = Series("SpiderNet")
    optimal_series = Series("optimal")
    for budget in cfg.budgets:
        spider_delays: List[Optional[float]] = []
        for request in sample:
            result = net.compose(request, budget=budget, confirm=False)
            spider_delays.append(
                result.best_qos.get("delay") if result.success else None
            )
        random_series.add(budget, mean_delay(random_delays))
        spider_series.add(budget, mean_delay(spider_delays))
        optimal_series.add(budget, mean_delay(optimal_delays))
        if trace is not None:
            trace.record(
                "experiment_point", time=float(budget), experiment="fig11",
                budget=budget, spidernet_ms=spider_series.y[-1],
                random_ms=random_series.y[-1], optimal_ms=optimal_series.y[-1],
            )
        if verbose:
            print(
                f"  budget {budget:5d}: SpiderNet {spider_series.y[-1]:.0f} ms "
                f"(random {random_series.y[-1]:.0f}, optimal {optimal_series.y[-1]:.0f})"
            )
    return Fig11Result(
        config=cfg,
        series=[random_series, spider_series, optimal_series],
        optimal_probes_mean=float(np.mean(opt_probe_counts)) if opt_probe_counts else 0.0,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_fig11(verbose=True)
    print("\nFigure 11 — average service delay vs probing budget")
    print(result.table())
    print(f"\nmean optimal probe count: {result.optimal_probes_mean:.0f} (paper: 4913)")


if __name__ == "__main__":  # pragma: no cover
    main()
