"""Experiment drivers reproducing every figure of the paper's evaluation.

==========  ====================================================  ==================
Experiment  Paper result                                           Driver
==========  ====================================================  ==================
Fig. 8      success ratio vs workload, 5 algorithms               :func:`run_fig8`
Fig. 9      failure frequency with/without proactive recovery    :func:`run_fig9`
Fig. 10     session setup time vs function number (WAN)           :func:`run_fig10`
Fig. 11     avg delay vs probing budget (random/BCP/optimal)      :func:`run_fig11`
§6.1 claim  ≥10× less overhead than centralized maintenance       :func:`run_overhead`
ablations   design-choice studies (DESIGN.md)                     :mod:`.ablations`
==========  ====================================================  ==================
"""

from .ablations import (
    AblationConfig,
    ablate_adaptive_budget,
    ablate_backup_policy,
    ablate_commutations,
    ablate_metric_selection,
    ablate_soft_allocation,
)
from .fig8_success_ratio import Fig8Config, Fig8Result, run_fig8
from .fig9_failure_recovery import Fig9Config, Fig9Result, run_fig9
from .fig10_setup_time import Fig10Config, Fig10Result, run_fig10
from .fig11_budget_sweep import Fig11Config, Fig11Result, run_fig11
from .harness import HeldSessions, Series, format_table
from .overhead_comparison import OverheadConfig, OverheadResult, run_overhead
from .trust_extension import TrustConfig, TrustResult, run_trust_extension

__all__ = [
    "AblationConfig",
    "Fig8Config",
    "Fig8Result",
    "Fig9Config",
    "Fig9Result",
    "Fig10Config",
    "Fig10Result",
    "Fig11Config",
    "Fig11Result",
    "HeldSessions",
    "OverheadConfig",
    "OverheadResult",
    "Series",
    "ablate_adaptive_budget",
    "ablate_backup_policy",
    "ablate_commutations",
    "ablate_metric_selection",
    "ablate_soft_allocation",
    "format_table",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_overhead",
    "run_trust_extension",
    "TrustConfig",
    "TrustResult",
]
