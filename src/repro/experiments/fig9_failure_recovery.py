"""Figure 9: failure frequency over time, with vs without proactive recovery.

Paper setup (§6.1): a dynamic P2P network where 1 % of peers randomly
fail during each time unit; long-lived sessions; the y axis counts
failures per time unit over a 60-minute run.  With proactive recovery
(an average of 2.74 backup service graphs per session in the paper)
almost every failure is recovered — the "with recovery" curve hugs zero
while the "without recovery" curve shows a steady failure stream.

We plot *user-visible* (unrecovered) failures: without recovery every
session-breaking departure is user-visible; with recovery only the ones
no backup nor reactive re-composition could absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


from ..core.bcp import BCPConfig
from ..core.session import RecoveryConfig
from ..sim.metrics import RateOverTime
from ..workload.generator import RequestConfig
from ..workload.scenarios import simulation_testbed
from .harness import Series, format_table

__all__ = ["Fig9Config", "Fig9Result", "run_fig9"]


@dataclass(frozen=True)
class Fig9Config:
    n_ip: int = 800
    n_peers: int = 150
    n_functions: int = 40
    duration_minutes: float = 60.0  # one time unit == one minute (paper x-axis)
    churn_fraction: float = 0.01  # 1 % of peers fail per time unit
    churn_downtime: float = 15.0
    target_sessions: int = 40  # steady active-session population
    session_duration: float = 120.0  # long-lived streaming sessions
    budget: int = 64  # generous probing -> enough qualified graphs for backups
    backup_upper_bound: float = 3.2  # U of Eq. 2 (tuned for ~2.7 backups, as the paper reports)
    maintenance_interval: float = 2.0
    function_count: Tuple[int, int] = (2, 3)
    qos_tightness: float = 1.6  # sessions qualify with headroom; Eq. 2 adapts
    seed: int = 0


@dataclass
class Fig9Result:
    config: Fig9Config
    series: List[Series]  # failure counts per time unit, one per mode
    mean_backups: float = 0.0
    recovered_fraction: float = 0.0
    stats_with: Optional[object] = None
    stats_without: Optional[object] = None

    def table(self) -> str:
        return format_table("time(min)", self.series, float_fmt="{:.1f}")


def _run_mode(cfg: Fig9Config, proactive: bool, trace=None) -> Tuple[Series, object]:
    scenario = simulation_testbed(
        n_ip=cfg.n_ip,
        n_peers=cfg.n_peers,
        n_functions=cfg.n_functions,
        request_config=RequestConfig(
            function_count=cfg.function_count,
            qos_tightness=cfg.qos_tightness,
            duration_mean=cfg.session_duration,
        ),
        bcp_config=BCPConfig(budget=cfg.budget),
        recovery_config=RecoveryConfig(
            proactive=proactive,
            reactive=proactive,  # "without recovery" = no recovery at all
            upper_bound=cfg.backup_upper_bound,
            maintenance_interval=cfg.maintenance_interval,
        ),
        churn_rate=cfg.churn_fraction,
        churn_downtime=cfg.churn_downtime,
        protected_endpoints=max(cfg.n_peers // 10, 4),
        seed=cfg.seed,
    )
    net = scenario.net
    failures = RateOverTime(bin_width=1.0)
    net.sessions.on_failure(lambda t, recovered: None if recovered else failures.record(t))
    if trace is not None:
        from ..sim.tracing import trace_churn, trace_sessions

        trace_churn(net.churn, trace)
        trace_sessions(net.sessions, trace)


    def replenish_sessions() -> None:
        """Keep ~target_sessions active (steady long-lived workload)."""
        deficit = cfg.target_sessions - len(net.sessions.active_sessions())
        for _ in range(max(deficit, 0)):
            req = scenario.requests.next_request()
            net.sessions.establish(req)

    # establish the initial population, then run with churn + arrivals
    replenish_sessions()
    net.start_churn()
    net.sim.every(1.0, replenish_sessions, start_after=0.5)
    net.run(until=cfg.duration_minutes)

    label = "with proactive recovery" if proactive else "without recovery"
    series = Series(label)
    times, counts = failures.series(until=cfg.duration_minutes)
    for t, c in zip(times, counts):
        series.add(t, c)
    return series, net.sessions.stats


def run_fig9(
    config: Optional[Fig9Config] = None, verbose: bool = False, trace=None
) -> Fig9Result:
    """Regenerate Figure 9 (plus the §6.1 backup-count claim).

    ``trace`` records churn departures/arrivals and per-session failure
    events (recovered or not) from both runs."""
    cfg = config or Fig9Config()
    without_series, without_stats = _run_mode(cfg, proactive=False, trace=trace)
    with_series, with_stats = _run_mode(cfg, proactive=True, trace=trace)
    recovered = with_stats.proactive_recoveries + with_stats.reactive_recoveries
    total_failures = max(with_stats.failures, 1)
    result = Fig9Result(
        config=cfg,
        series=[without_series, with_series],
        mean_backups=with_stats.mean_backups,
        recovered_fraction=recovered / total_failures,
        stats_with=with_stats,
        stats_without=without_stats,
    )
    if verbose:
        print(
            f"  without recovery: {without_stats.failures} failures, "
            f"{without_stats.unrecovered_failures} user-visible"
        )
        print(
            f"  with recovery:    {with_stats.failures} failures, "
            f"{with_stats.proactive_recoveries} proactive + "
            f"{with_stats.reactive_recoveries} reactive recoveries, "
            f"{with_stats.unrecovered_failures} user-visible; "
            f"mean backups {with_stats.mean_backups:.2f}"
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_fig9(verbose=True)
    print("\nFigure 9 — user-visible failure frequency (per time unit)")
    print(result.table())
    print(
        f"\nmean backups/session: {result.mean_backups:.2f} (paper: 2.74); "
        f"recovered fraction: {result.recovered_fraction:.3f}"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
