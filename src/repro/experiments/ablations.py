"""Ablation studies for the design choices DESIGN.md calls out.

Each ablation flips one mechanism and reports the metric it is supposed
to move:

* **commutations** — exchangeable composition orders on/off → best-graph
  delay/cost on requests with commutation links (§2.4's second dimension);
* **metric selection** — composite next-hop metric vs random pruning →
  achieved delay at equal budget (Step 2.3);
* **soft allocation** — probe-time reservations on/off → admission
  conflicts under concurrent load (Step 2.1's stated purpose);
* **backup selection** — overlap-aware §5.2 selection vs random
  qualified graphs → recovery success and switch cost;
* **adaptive γ** — Eq. 2 vs fixed backup counts → backups maintained vs
  failures recovered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.bcp import BCPConfig
from ..core.recovery import select_backups
from ..core.session import RecoveryConfig
from ..sim.metrics import RatioMeter
from ..sim.rng import as_generator
from ..workload.generator import RequestConfig
from ..workload.scenarios import simulation_testbed
from .harness import HeldSessions

__all__ = [
    "AblationConfig",
    "ablate_adaptive_budget",
    "ablate_commutations",
    "ablate_metric_selection",
    "ablate_soft_allocation",
    "ablate_backup_policy",
]


@dataclass(frozen=True)
class AblationConfig:
    n_ip: int = 600
    n_peers: int = 120
    n_functions: int = 30
    requests: int = 40
    budget: int = 32
    seed: int = 0


def _scenario(cfg: AblationConfig, bcp_config: BCPConfig, request_config: RequestConfig, **kw):
    return simulation_testbed(
        n_ip=cfg.n_ip,
        n_peers=cfg.n_peers,
        n_functions=cfg.n_functions,
        bcp_config=bcp_config,
        request_config=request_config,
        seed=cfg.seed,
        **kw,
    )


def ablate_commutations(config: Optional[AblationConfig] = None) -> Dict[str, float]:
    """Delay of the selected graph with vs without commutation exploration."""
    cfg = config or AblationConfig()
    req_cfg = RequestConfig(
        function_count=(3, 4), commutation_probability=1.0, qos_tightness=2.0
    )
    out: Dict[str, float] = {}
    for label, explore in (("with_commutations", True), ("without_commutations", False)):
        scenario = _scenario(
            cfg, BCPConfig(budget=cfg.budget, explore_commutations=explore, objective="delay"), req_cfg
        )
        delays = []
        for _ in range(cfg.requests):
            request = scenario.requests.next_request()
            result = scenario.net.compose(request, budget=cfg.budget, confirm=False)
            if result.success and result.best_qos is not None:
                delays.append(result.best_qos.get("delay"))
        out[label] = float(np.mean(delays)) if delays else float("nan")
    out["delay_improvement"] = (
        (out["without_commutations"] - out["with_commutations"])
        / out["without_commutations"]
        if out.get("without_commutations")
        else float("nan")
    )
    return out


def ablate_metric_selection(config: Optional[AblationConfig] = None) -> Dict[str, float]:
    """Composite next-hop metric vs random pruning at equal budget."""
    cfg = config or AblationConfig()
    req_cfg = RequestConfig(function_count=(3, 3), qos_tightness=2.0)
    out: Dict[str, float] = {}
    for label, metric in (("metric_selection", True), ("random_pruning", False)):
        scenario = _scenario(
            cfg, BCPConfig(budget=cfg.budget, metric_selection=metric, objective="delay"), req_cfg
        )
        delays = []
        for _ in range(cfg.requests):
            request = scenario.requests.next_request()
            result = scenario.net.compose(request, budget=cfg.budget, confirm=False)
            if result.success and result.best_qos is not None:
                delays.append(result.best_qos.get("delay"))
        out[label] = float(np.mean(delays)) if delays else float("nan")
    return out


def ablate_soft_allocation(config: Optional[AblationConfig] = None) -> Dict[str, float]:
    """Admission conflicts with vs without probe-time soft reservations.

    Requests arrive in concurrent *batches*: all requests of a batch
    probe before any commits (the situation Step 2.1's soft allocation
    exists for).  With soft allocation, a probe's reservation is visible
    to concurrently probing requests, so selections never collide.
    Without it, every request selects against the same snapshot and the
    batch's firm admissions conflict — visible as admission failures.
    """
    cfg = config or AblationConfig()
    # few functions + scarce capacity: concurrent requests overlap heavily
    # in their component choices, so stale-snapshot selections collide
    req_cfg = RequestConfig(function_count=(3, 3))
    batch_size = 8
    out: Dict[str, float] = {}
    for label, soft in (("soft_allocation", True), ("no_soft_allocation", False)):
        scenario = simulation_testbed(
            n_ip=cfg.n_ip,
            n_peers=cfg.n_peers,
            n_functions=6,
            bcp_config=BCPConfig(budget=cfg.budget, soft_allocation=soft),
            request_config=req_cfg,
            capacity_scale=0.25,
            seed=cfg.seed,
        )
        net = scenario.net
        held = HeldSessions(net.pool)
        probed = 0
        selected = 0
        admitted = 0
        n_batches = max(cfg.requests // batch_size, 1)
        for _ in range(n_batches):
            batch = [scenario.requests.next_request() for _ in range(batch_size)]
            if soft:
                # reservations persist across the batch: later requests see
                # earlier in-flight claims, exactly as concurrent probing
                # would — selection then *implies* a held reservation, so a
                # selected graph can never fail admission
                for request in batch:
                    result = net.bcp.compose(request, budget=cfg.budget, confirm=True)
                    probed += 1
                    if result.success:
                        selected += 1
                        admitted += 1
                        held.admit(result.session_tokens, release_at=float("inf"))
            else:
                # all requests select on the same stale snapshot, then the
                # chosen graphs are admitted firmly one after another — the
                # batch's choices collide on the same well-placed components
                chosen = []
                for request in batch:
                    result = net.bcp.compose(request, budget=cfg.budget, confirm=False)
                    probed += 1
                    if result.success and result.best is not None:
                        selected += 1
                        chosen.append((request, result.best))
                from repro.core.selection import admit_graph

                for request, graph in chosen:
                    token = (request.request_id, "session")
                    if admit_graph(graph, net.pool, token):
                        admitted += 1
                        held.admit([token], release_at=float("inf"))
        net.pool.check_invariants()
        out[f"{label}_honoured"] = admitted / max(probed, 1)
        # the paper's stated purpose of soft allocation: no conflicted
        # admissions (a selected composition whose setup then fails)
        out[f"{label}_conflicted"] = (selected - admitted) / max(selected, 1)
        held.release_all()
    return out


def ablate_backup_policy(config: Optional[AblationConfig] = None) -> Dict[str, float]:
    """Overlap-aware backup selection (§5.2) vs random qualified graphs.

    Measures the mean switch overlap (components shared with the broken
    graph — higher = cheaper switch) and recovery success under churn.
    """
    cfg = config or AblationConfig()
    rng = as_generator(cfg.seed)
    req_cfg = RequestConfig(function_count=(2, 3), qos_tightness=1.8, duration_mean=200.0)
    out: Dict[str, float] = {}
    for label in ("paper_selection", "random_selection"):
        scenario = _scenario(
            cfg,
            BCPConfig(budget=cfg.budget),
            req_cfg,
            recovery_config=RecoveryConfig(upper_bound=1.4),
            churn_rate=0.02,
        )
        net = scenario.net
        if label == "random_selection":
            # monkey-patchable seam: replace the selection step used at
            # session establishment with a random draw of qualified graphs
            import repro.core.session as session_mod

            original = session_mod.select_backups

            def random_select(current, qualified, count, peer_failure, max_subset_size=3):
                pool = [c for c in qualified]
                rng.shuffle(pool)
                return pool[:count]

            session_mod.select_backups = random_select
        try:
            for _ in range(20):
                net.sessions.establish(scenario.requests.next_request())
            net.start_churn()
            net.run(until=40.0)
            stats = net.sessions.stats
            recovered = stats.proactive_recoveries + stats.reactive_recoveries
            out[f"{label}_recovered_fraction"] = recovered / max(stats.failures, 1)
            # proactive share is the discriminating metric: overlap-aware
            # backups survive the failures that actually occur, random
            # ones force the expensive reactive path more often
            out[f"{label}_proactive_fraction"] = stats.proactive_recoveries / max(
                recovered, 1
            )
            out[f"{label}_mean_backups"] = stats.mean_backups
        finally:
            if label == "random_selection":
                session_mod.select_backups = original
    return out


def ablate_adaptive_budget(config: Optional[AblationConfig] = None) -> Dict[str, float]:
    """Adaptive budget (§4.1 Step 1) vs a fixed budget, at matched cost.

    A mixed workload (2–4 functions, some strict, some loose) runs under
    (a) the adaptive controller and (b) a fixed budget equal to the
    adaptive run's *mean* spend — so the comparison is success per probe,
    not just more probes.
    """
    from repro.core.budget import AdaptiveBudgetPolicy, BudgetPolicyConfig

    cfg = config or AblationConfig()
    req_cfg = RequestConfig(function_count=(2, 4), qos_tightness=0.9)

    def run(policy) -> Dict[str, float]:
        scenario = _scenario(cfg, BCPConfig(budget=cfg.budget), req_cfg)
        net = scenario.net
        meter = RatioMeter()
        spent: List[int] = []
        for _ in range(cfg.requests * 2):
            request = scenario.requests.next_request()
            budget = policy.budget_for(request) if policy else fixed_budget
            result = net.bcp.compose(request, budget=budget, confirm=False)
            if policy:
                policy.record_outcome(result)
            meter.record(result.success)
            spent.append(budget)
        return {"success": meter.ratio, "mean_budget": sum(spent) / len(spent)}

    adaptive = run(AdaptiveBudgetPolicy(BudgetPolicyConfig(base=6, window=10)))
    fixed_budget = max(int(round(adaptive["mean_budget"])), 1)
    fixed = run(None)
    return {
        "adaptive_success": adaptive["success"],
        "adaptive_mean_budget": adaptive["mean_budget"],
        "fixed_success": fixed["success"],
        "fixed_budget": float(fixed_budget),
    }
