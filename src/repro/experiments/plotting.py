"""Terminal plotting for experiment series (no plotting deps required).

The paper's figures are line charts; these helpers render the same
series as Unicode charts so drivers can show the *shape* directly in a
terminal log, next to the numeric tables.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from .harness import Series

__all__ = ["sparkline", "ascii_chart"]

_BLOCKS = "▁▂▃▄▅▆▇█"
_MARKERS = "ox+*#@%&"


def sparkline(values: Sequence[float]) -> str:
    """A one-line block-character rendering of a value sequence."""
    vals = [v for v in values if v is not None and not math.isnan(v)]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    out = []
    for v in values:
        if v is None or math.isnan(v):
            out.append(" ")
            continue
        frac = 0.5 if span == 0 else (v - lo) / span
        out.append(_BLOCKS[min(int(frac * len(_BLOCKS)), len(_BLOCKS) - 1)])
    return "".join(out)


def ascii_chart(
    series: Sequence[Series],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render series as a character-grid line chart with a legend.

    Each series gets a marker; points are plotted at scaled positions and
    connected visually by proximity (good enough to read a trend).
    """
    if not series:
        return "(no series)"
    if width < 10 or height < 4:
        raise ValueError("chart too small to be legible")
    xs = [x for s in series for x in s.x]
    ys = [y for s in series for y in s.y if not math.isnan(y)]
    if not xs or not ys:
        return "(no data)"
    x_lo, x_hi = min(xs), max(xs)
    y_lo = min(ys) if y_min is None else y_min
    y_hi = max(ys) if y_max is None else y_max
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        marker = _MARKERS[si % len(_MARKERS)]
        for x, y in zip(s.x, s.y):
            if math.isnan(y):
                continue
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
            row = height - 1 - max(0, min(row, height - 1))
            col = max(0, min(col, width - 1))
            grid[row][col] = marker

    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    lines: List[str] = []
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(gutter)
        elif r == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}┤{''.join(row)}")
    lines.append(" " * gutter + "└" + "─" * width)
    x_axis = f"{x_lo:.3g}".ljust(width - len(f"{x_hi:.3g}")) + f"{x_hi:.3g}"
    lines.append(" " * (gutter + 1) + x_axis)
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={s.label}" for i, s in enumerate(series)
    )
    lines.append(" " * (gutter + 1) + f"[{x_label}]  {legend}  [{y_label}]")
    return "\n".join(lines)
