"""Figure 8: composition success ratio vs workload, five algorithms.

Paper setup (§6.1): the simulation testbed processes a Poisson-ish
stream of composition requests (x axis: requests per time unit, 50–250);
each admitted session *holds* its resources, so rising workload raises
contention and the "QoS success rate" — the fraction of requests whose
composed graph satisfies function, resource and QoS requirements —
falls.  Expected shape: probing-0.2 tracks the optimal (unbounded
flooding) curve closely, probing-0.1 sits slightly below, random is far
worse, static worst.

Defaults here are scaled (see DESIGN.md): fewer peers and a lower
request rate, with the replication degree and per-session resource
footprint held proportional so the ranking and the decline survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.baselines import optimal_probe_count
from ..core.bcp import BCPConfig
from ..core.strategies import create_strategy
from ..core.quota import budget_for_fraction
from ..sim.metrics import RatioMeter
from ..workload.generator import RequestConfig
from ..workload.scenarios import Scenario, simulation_testbed
from .harness import HeldSessions, Series, format_table

__all__ = ["Fig8Config", "Fig8Result", "run_fig8"]


@dataclass(frozen=True)
class Fig8Config:
    # environment (paper: 10 000 IP / 1000 peers / 200 functions)
    n_ip: int = 800
    n_peers: int = 150
    n_functions: int = 40
    workloads: Tuple[int, ...] = (2, 4, 6, 8, 10)  # requests per time unit
    duration: int = 40  # time units per run (paper: 2000)
    session_duration: float = 20.0  # time units resources stay held
    probing_fractions: Tuple[float, ...] = (0.2, 0.1)
    include_optimal: bool = True
    include_random: bool = True
    include_static: bool = True
    function_count: Tuple[int, int] = (2, 3)
    qos_tightness: float = 1.0
    max_budget: int = 200  # cap per-request budget (keeps runs tractable)
    arrival_model: str = "fixed"  # "fixed" per-tick batches or "poisson"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_model not in ("fixed", "poisson"):
            raise ValueError(f"unknown arrival model {self.arrival_model!r}")


@dataclass
class Fig8Result:
    config: Fig8Config
    series: List[Series]
    messages_per_request: Dict[str, float] = field(default_factory=dict)

    def table(self) -> str:
        return format_table("workload(req/tu)", self.series)


def _algorithms(cfg: Fig8Config) -> List[str]:
    algos = [f"probing-{f:g}" for f in cfg.probing_fractions]
    if cfg.include_optimal:
        algos.append("optimal")
    if cfg.include_random:
        algos.append("random")
    if cfg.include_static:
        algos.append("static")
    return algos


def _build(cfg: Fig8Config) -> Scenario:
    return simulation_testbed(
        n_ip=cfg.n_ip,
        n_peers=cfg.n_peers,
        n_functions=cfg.n_functions,
        request_config=RequestConfig(
            function_count=cfg.function_count,
            qos_tightness=cfg.qos_tightness,
        ),
        bcp_config=BCPConfig(),
        seed=cfg.seed,
    )


def _run_point(cfg: Fig8Config, algorithm: str, workload: int) -> Tuple[float, float]:
    """One (algorithm, workload) cell: returns (success_ratio, msgs/request)."""
    scenario = _build(cfg)
    net, requests = scenario.net, scenario.requests
    held = HeldSessions(net.pool)
    meter = RatioMeter()
    composer = None
    fraction = None
    if algorithm.startswith("probing-"):
        fraction = float(algorithm.split("-", 1)[1])
    else:
        # every non-probing curve resolves through the strategy registry,
        # so any registered composer can be plotted by name
        options = {"rng": cfg.seed} if algorithm in ("random", "static") else {}
        composer = create_strategy(algorithm, net.strategy_context(), **options)
    msgs_before = net.ledger.total_count()
    arrival_rng = np.random.default_rng(cfg.seed + workload)
    for t in range(cfg.duration):
        held.release_due(float(t))
        n_arrivals = (
            workload
            if cfg.arrival_model == "fixed"
            else int(arrival_rng.poisson(workload))
        )
        for _ in range(n_arrivals):
            request = requests.next_request()
            if fraction is not None:
                duplicates = {
                    fn: net.registry.duplicates(fn)
                    for fn in request.function_graph.functions
                }
                opt_probes = optimal_probe_count(request, duplicates)
                budget = min(budget_for_fraction(opt_probes, fraction), cfg.max_budget)
                result = net.bcp.compose(request, budget=budget, confirm=True)
            else:
                result = composer.compose(request, confirm=True)
            meter.record(result.success)
            if result.success and result.session_tokens:
                held.admit(result.session_tokens, release_at=t + cfg.session_duration)
    msgs = net.ledger.total_count() - msgs_before
    held.release_all()
    total_requests = max(meter.total, 1)
    return meter.ratio, msgs / total_requests


def run_fig8(
    config: Optional[Fig8Config] = None, verbose: bool = False, trace=None
) -> Fig8Result:
    """Regenerate Figure 8's curves (success ratio vs workload).

    ``trace`` (a :class:`~repro.sim.tracing.EventTrace`) records one
    ``experiment_point`` event per measured cell."""
    cfg = config or Fig8Config()
    series = [Series(a) for a in _algorithms(cfg)]
    msg_totals: Dict[str, List[float]] = {a: [] for a in _algorithms(cfg)}
    for workload in cfg.workloads:
        for s in series:
            ratio, msgs = _run_point(cfg, s.label, workload)
            s.add(workload, ratio)
            msg_totals[s.label].append(msgs)
            if trace is not None:
                trace.record(
                    "experiment_point", time=float(workload), experiment="fig8",
                    algorithm=s.label, workload=workload,
                    success_ratio=ratio, messages_per_request=msgs,
                )
            if verbose:
                print(f"  {s.label:>12s} @ {workload:3d} req/tu: success={ratio:.3f}")
    result = Fig8Result(
        config=cfg,
        series=series,
        messages_per_request={
            a: sum(v) / len(v) for a, v in msg_totals.items() if v
        },
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_fig8(verbose=True)
    print("\nFigure 8 — composition success ratio vs workload")
    print(result.table())
    print("\nmean messages/request:", {k: round(v, 1) for k, v in result.messages_per_request.items()})


if __name__ == "__main__":  # pragma: no cover
    main()
