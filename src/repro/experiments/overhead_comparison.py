"""The §6.1 overhead claim: BCP vs centralized global-state maintenance.

"Compared to the global-view-based centralized scheme, SpiderNet can
achieve similar performance but with more than one order of magnitude
less overhead since SpiderNet does not perform periodical global view
maintenance."

We run the same request stream through (a) BCP (on-demand probes + DHT
lookups) and (b) a centralized composer fed by periodic per-peer state
updates, count every protocol message on both sides, and report the
per-request overhead ratio together with the achieved success ratios
(they should be comparable — the centralized scheme has a global view,
BCP a probed one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.baselines import CentralizedComposer
from ..core.bcp import BCPConfig
from ..sim.metrics import RatioMeter
from ..workload.generator import RequestConfig
from ..workload.scenarios import simulation_testbed
from .harness import HeldSessions, Series, format_table

__all__ = ["OverheadConfig", "OverheadResult", "run_overhead"]

BCP_CATEGORIES = ("bcp_probe", "bcp_ack", "bcp_failure", "dht_route", "dht_replicate")
CENTRAL_CATEGORIES = ("state_update", "centralized_setup")


@dataclass(frozen=True)
class OverheadConfig:
    n_ip: int = 800
    n_peers: int = 150
    n_functions: int = 40
    duration: int = 30  # time units
    workload: int = 3  # requests per time unit
    session_duration: float = 15.0
    budget: int = 32
    update_period: float = 1.0  # centralized state refresh, per time unit
    function_count: Tuple[int, int] = (2, 3)
    seed: int = 0


@dataclass
class OverheadResult:
    config: OverheadConfig
    bcp_messages: int
    centralized_messages: int
    requests: int
    bcp_success: float
    centralized_success: float
    bcp_breakdown: Dict[str, int] = field(default_factory=dict)
    centralized_breakdown: Dict[str, int] = field(default_factory=dict)

    @property
    def overhead_ratio(self) -> float:
        """centralized msgs / BCP msgs (paper: > 10×)."""
        return self.centralized_messages / max(self.bcp_messages, 1)

    def table(self) -> str:
        per_req_bcp = self.bcp_messages / max(self.requests, 1)
        per_req_cen = self.centralized_messages / max(self.requests, 1)
        rows = [
            f"{'scheme':>12s}  {'messages':>10s}  {'msgs/request':>12s}  {'success':>8s}",
            f"{'-'*12}  {'-'*10}  {'-'*12}  {'-'*8}",
            f"{'SpiderNet':>12s}  {self.bcp_messages:>10d}  {per_req_bcp:>12.1f}  {self.bcp_success:>8.3f}",
            f"{'centralized':>12s}  {self.centralized_messages:>10d}  {per_req_cen:>12.1f}  {self.centralized_success:>8.3f}",
            "",
            f"overhead ratio (centralized / SpiderNet): {self.overhead_ratio:.1f}x",
        ]
        return "\n".join(rows)


def _build(cfg: OverheadConfig):
    return simulation_testbed(
        n_ip=cfg.n_ip,
        n_peers=cfg.n_peers,
        n_functions=cfg.n_functions,
        request_config=RequestConfig(function_count=cfg.function_count),
        bcp_config=BCPConfig(budget=cfg.budget),
        seed=cfg.seed,
    )


def run_overhead(
    config: Optional[OverheadConfig] = None, verbose: bool = False, trace=None
) -> OverheadResult:
    """Count protocol messages for the same workload under both schemes.

    ``trace`` records one ``experiment_point`` per scheme with the
    category breakdown."""
    cfg = config or OverheadConfig()

    # --- SpiderNet / BCP side -----------------------------------------
    scenario = _build(cfg)
    net = scenario.net
    held = HeldSessions(net.pool)
    meter = RatioMeter()
    before = {c: net.ledger.count.get(c, 0) for c in BCP_CATEGORIES}
    n_requests = 0
    for t in range(cfg.duration):
        held.release_due(float(t))
        for _ in range(cfg.workload):
            request = scenario.requests.next_request()
            result = net.bcp.compose(request, budget=cfg.budget, confirm=True)
            n_requests += 1
            meter.record(result.success)
            if result.success:
                held.admit(result.session_tokens, t + cfg.session_duration)
    bcp_breakdown = {
        c: net.ledger.count.get(c, 0) - before[c] for c in BCP_CATEGORIES
    }
    bcp_messages = sum(bcp_breakdown.values())
    bcp_success = meter.ratio
    held.release_all()

    # --- centralized side (fresh, identical environment) ---------------
    scenario2 = _build(cfg)
    net2 = scenario2.net
    composer = CentralizedComposer(
        net2.overlay, net2.pool, net2.registry, ledger=net2.ledger
    )
    held2 = HeldSessions(net2.pool)
    meter2 = RatioMeter()
    next_refresh = 0.0
    for t in range(cfg.duration):
        held2.release_due(float(t))
        while next_refresh <= t:
            composer.refresh()
            next_refresh += cfg.update_period
        for _ in range(cfg.workload):
            request = scenario2.requests.next_request()
            result = composer.compose(request, confirm=True)
            meter2.record(result.success)
            if result.success:
                held2.admit(result.session_tokens, t + cfg.session_duration)
    centralized_breakdown = {
        c: net2.ledger.count.get(c, 0) for c in CENTRAL_CATEGORIES
    }
    centralized_messages = sum(centralized_breakdown.values())
    held2.release_all()

    if trace is not None:
        trace.record(
            "experiment_point", time=0.0, experiment="overhead",
            scheme="spidernet", messages=bcp_messages,
            success=bcp_success, breakdown=dict(bcp_breakdown),
        )
        trace.record(
            "experiment_point", time=0.0, experiment="overhead",
            scheme="centralized", messages=centralized_messages,
            success=meter2.ratio, breakdown=dict(centralized_breakdown),
        )
    result = OverheadResult(
        config=cfg,
        bcp_messages=bcp_messages,
        centralized_messages=centralized_messages,
        requests=n_requests,
        bcp_success=bcp_success,
        centralized_success=meter2.ratio,
        bcp_breakdown=bcp_breakdown,
        centralized_breakdown=centralized_breakdown,
    )
    if verbose:
        print(result.table())
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_overhead(verbose=True)
    print("\nbreakdowns:")
    print("  SpiderNet  :", result.bcp_breakdown)
    print("  centralized:", result.centralized_breakdown)


if __name__ == "__main__":  # pragma: no cover
    main()
