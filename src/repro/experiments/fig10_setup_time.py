"""Figure 10: service session setup time vs function number (WAN testbed).

Paper setup (§6.2): 102 PlanetLab hosts across the US and Europe, one of
six multimedia components per host; >500 requests; the session setup
time — (1) decentralized service discovery, (2) service-graph finding
via BCP, (3) session initialization — is a few seconds and grows with
the number of requested functions.

Our WAN substitute (DESIGN.md) drives the same protocol phases over a
simulated wide-area latency model, so the reported milliseconds come
from actual DHT hop counts and probe/ack round trips, not constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.bcp import BCPConfig
from ..sim.metrics import LatencyStats
from ..workload.generator import RequestConfig
from ..workload.scenarios import planetlab_testbed
from .harness import Series, format_table

__all__ = ["Fig10Config", "Fig10Result", "run_fig10"]


@dataclass(frozen=True)
class Fig10Config:
    n_peers: int = 102
    function_numbers: Tuple[int, ...] = (2, 3, 4, 5, 6)
    requests_per_point: int = 100  # paper uses >500 total
    budget: int = 40
    qos_tightness: float = 3.0  # measure time, not rejection
    seed: int = 0


@dataclass
class Fig10Result:
    config: Fig10Config
    series: List[Series]  # ms: discovery, composition (probing+ack), total
    success_rate: Dict[int, float] = field(default_factory=dict)

    def table(self) -> str:
        return format_table("functions", self.series, float_fmt="{:.0f}")


def run_fig10(
    config: Optional[Fig10Config] = None, verbose: bool = False, trace=None
) -> Fig10Result:
    """Regenerate Figure 10 (setup time split by protocol phase, in ms).

    ``trace`` records one ``composition`` event per request — the same
    category a live cluster emits, so sim and live runs produce
    comparable JSONL logs."""
    cfg = config or Fig10Config()
    scenario = planetlab_testbed(
        n_peers=cfg.n_peers,
        request_config=RequestConfig(
            function_count=(2, 6),  # overridden per request below
            qos_tightness=cfg.qos_tightness,
        ),
        bcp_config=BCPConfig(budget=cfg.budget),
        seed=cfg.seed,
    )
    net, requests = scenario.net, scenario.requests
    discovery = Series("discovery(ms)")
    composition = Series("composition(ms)")
    total = Series("total setup(ms)")
    success_rate: Dict[int, float] = {}
    for k in cfg.function_numbers:
        stats = LatencyStats()
        ok = 0
        n = 0
        while n < cfg.requests_per_point:
            request = requests.next_request(n_functions=k)
            result = net.compose(request, budget=cfg.budget, confirm=False)
            n += 1
            if trace is not None:
                trace.record(
                    "composition", time=net.sim.now, request=request.request_id,
                    functions=k, success=result.success,
                    probes=result.probes_sent, setup_time=result.setup_time,
                )
            if not result.success:
                continue
            ok += 1
            stats.record("discovery", result.phases.get("discovery", 0.0))
            stats.record(
                "composition",
                result.phases.get("composition", 0.0) + result.phases.get("setup_ack", 0.0),
            )
            stats.record("total", result.setup_time)
        success_rate[k] = ok / max(n, 1)
        discovery.add(k, stats.mean("discovery") * 1000.0)
        composition.add(k, stats.mean("composition") * 1000.0)
        total.add(k, stats.mean("total") * 1000.0)
        if verbose:
            print(
                f"  {k} functions: total={total.y[-1]:.0f} ms "
                f"(discovery {discovery.y[-1]:.0f} + composition {composition.y[-1]:.0f}), "
                f"success {success_rate[k]:.2f}"
            )
    return Fig10Result(
        config=cfg,
        series=[discovery, composition, total],
        success_rate=success_rate,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_fig10(verbose=True)
    print("\nFigure 10 — session setup time vs function number")
    print(result.table())


if __name__ == "__main__":  # pragma: no cover
    main()
