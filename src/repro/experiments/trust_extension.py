"""Secure composition via decentralized trust (the §8 extension, evaluated).

Setup: a fraction of peers is malicious — function-qualified, normal
advertised QoS, but they sabotage sessions at runtime.  Sources rate
the service peers of every finished session (beta reputation) and share
opinions through one-level recommendations.

Measured: the clean-session rate over consecutive session batches, with
trust-aware next-hop selection vs the plain composite metric.  Expected
shape: both start near ``(1 - malicious_fraction)^k``; the trust-aware
curve climbs as evidence accumulates, the baseline stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.bcp import BCPConfig, NextHopWeights
from ..sim.rng import as_generator
from ..trust.malice import MaliciousPopulation
from ..trust.reputation import TrustManager
from ..workload.generator import RequestConfig
from ..workload.scenarios import simulation_testbed
from .harness import Series, format_table

__all__ = ["TrustConfig", "TrustResult", "run_trust_extension"]


@dataclass(frozen=True)
class TrustConfig:
    n_ip: int = 500
    n_peers: int = 100
    n_functions: int = 12
    malicious_fraction: float = 0.25
    sabotage_probability: float = 0.9
    sessions: int = 300
    batch: int = 30  # sessions per plotted point
    budget: int = 24
    n_sources: int = 8  # stable set of requesters accumulating evidence
    trust_weight: float = 0.5
    seed: int = 0


@dataclass
class TrustResult:
    config: TrustConfig
    series: List[Series]
    final_clean_rate_with: float = 0.0
    final_clean_rate_without: float = 0.0

    def table(self) -> str:
        return format_table("sessions", self.series)


def _run_mode(cfg: TrustConfig, use_trust: bool) -> Series:
    weights = (
        NextHopWeights(delay=0.2, bandwidth=0.15, failure=0.15, trust=cfg.trust_weight)
        if use_trust
        else NextHopWeights()
    )
    scenario = simulation_testbed(
        n_ip=cfg.n_ip,
        n_peers=cfg.n_peers,
        n_functions=cfg.n_functions,
        request_config=RequestConfig(function_count=(3, 3), qos_tightness=2.0),
        bcp_config=BCPConfig(budget=cfg.budget, nexthop_weights=weights),
        seed=cfg.seed,
    )
    net = scenario.net
    rng = as_generator(cfg.seed + 1)
    sources = [int(p) for p in rng.choice(cfg.n_peers, size=cfg.n_sources, replace=False)]
    malice = MaliciousPopulation.random(
        net.overlay.peers(),
        cfg.malicious_fraction,
        rng=rng,
        sabotage_probability=cfg.sabotage_probability,
        protected=set(sources),
    )
    trust = TrustManager(ledger=net.ledger)
    if use_trust:
        net.bcp.trust = trust
    label = "trust-aware" if use_trust else "baseline"
    series = Series(label)
    clean = 0
    seen = 0
    for i in range(cfg.sessions):
        source = sources[i % len(sources)]
        dest = sources[(i + 1) % len(sources)]
        request = scenario.requests.next_request(source=source, dest=dest)
        result = net.compose(request, budget=cfg.budget, confirm=False)
        seen += 1
        if result.success and result.best is not None:
            service_peers = [m.peer for m in result.best.components()]
            ok = malice.session_outcome(service_peers, rng)
            # the source rates what it observed, trust-aware or not —
            # evidence only *influences selection* in trust-aware mode.
            # It also endorses the (honest) receiving endpoint, which is
            # how the requester population becomes each other's
            # recommenders: a source evaluating a stranger component asks
            # the endpoints it has streamed with.
            trust.session_feedback(source, service_peers, ok)
            trust.record_interaction(source, dest, positive=True)
            if ok:
                clean += 1
        if (i + 1) % cfg.batch == 0:
            series.add(i + 1, clean / max(seen, 1))
            clean = 0
            seen = 0
    return series


def run_trust_extension(
    config: Optional[TrustConfig] = None, verbose: bool = False, trace=None
) -> TrustResult:
    cfg = config or TrustConfig()
    baseline = _run_mode(cfg, use_trust=False)
    aware = _run_mode(cfg, use_trust=True)
    if trace is not None:
        for s in (baseline, aware):
            for x, y in zip(s.x, s.y):
                trace.record(
                    "experiment_point", time=float(x), experiment="trust",
                    mode=s.label, sessions=int(x), clean_rate=y,
                )
    result = TrustResult(
        config=cfg,
        series=[baseline, aware],
        final_clean_rate_with=aware.y[-1] if aware.y else float("nan"),
        final_clean_rate_without=baseline.y[-1] if baseline.y else float("nan"),
    )
    if verbose:
        print(result.table())
        print(
            f"final clean-session rate: trust-aware {result.final_clean_rate_with:.3f} "
            f"vs baseline {result.final_clean_rate_without:.3f} "
            f"({cfg.malicious_fraction:.0%} malicious peers)"
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    run_trust_extension(verbose=True)


if __name__ == "__main__":  # pragma: no cover
    main()
