"""Shared experiment plumbing: tables, series, resource-holding workloads."""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Series", "format_table", "HeldSessions"]


@dataclass
class Series:
    """One plotted curve: label + x/y points (what a paper figure shows)."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def as_rows(self) -> List[Tuple[float, float]]:
        return list(zip(self.x, self.y))


def format_table(
    x_label: str,
    series: Sequence[Series],
    float_fmt: str = "{:.3f}",
) -> str:
    """Render aligned columns: x | series1 | series2 ... (figure-as-text)."""
    if not series:
        return "(no data)"
    xs = series[0].x
    for s in series[1:]:
        if s.x != xs:
            raise ValueError(f"series {s.label!r} has mismatched x values")
    headers = [x_label] + [s.label for s in series]
    rows = []
    for i, x in enumerate(xs):
        row = [_fmt(x, float_fmt)]
        for s in series:
            row.append(_fmt(s.y[i], float_fmt))
        rows.append(row)
    widths = [max(len(h), *(len(r[c]) for r in rows)) if rows else len(h) for c, h in enumerate(headers)]
    out = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for row in rows:
        out.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(out)


def _fmt(v: float, float_fmt: str) -> str:
    if v is None or (isinstance(v, float) and math.isnan(v)):
        return "-"
    if float(v).is_integer() and abs(v) >= 1:
        return str(int(v))
    return float_fmt.format(v)


class HeldSessions:
    """Deterministic-duration resource holding for throughput experiments.

    Figure 8's load comes from admitted sessions *holding* their resources
    for their lifetime; this helper releases expired claims as virtual
    time advances without needing the full event engine in a tight sweep
    loop.
    """

    def __init__(self, pool) -> None:
        self.pool = pool
        self._heap: List[Tuple[float, int, Tuple]] = []
        self._seq = 0
        self.active = 0

    def admit(self, tokens: Iterable[Tuple], release_at: float) -> None:
        for token in tokens:
            heapq.heappush(self._heap, (release_at, self._seq, token))
            self._seq += 1
        self.active += 1

    def release_due(self, now: float) -> int:
        """Release every claim whose session ended by ``now``."""
        released = 0
        while self._heap and self._heap[0][0] <= now:
            _, _, token = heapq.heappop(self._heap)
            self.pool.release(token)
            released += 1
        return released

    def release_all(self) -> None:
        while self._heap:
            _, _, token = heapq.heappop(self._heap)
            self.pool.release(token)
        self.active = 0
