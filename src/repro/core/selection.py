"""Optimal composition selection at the destination (paper §4.3).

With a linear function graph every arriving probe records a complete
composition.  With a DAG, each probe covers one branch, so the
destination first **merges** branch probes into complete service graphs:
probes are compatible when they agree on the components of every
function they share (they then necessarily descend from the same probing
lineage at the shared prefix).  Merged candidates are filtered against
the user's QoS requirements and ranked by the load-balancing cost ψλ;
the minimum-cost qualified graph wins, and the remaining qualified
graphs are returned to seed the backup set (§5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..discovery.metadata import ServiceMetadata
from ..sim.metrics import summary_stats
from ..topology.overlay import Overlay
from .cost import CostWeights, psi_cost
from .probe import Probe
from .qos import QoSRequirement, QoSVector
from .request import CompositeRequest
from .resources import ResourcePool
from .service_graph import ServiceGraph

__all__ = [
    "CandidateGraph",
    "SelectionOutcome",
    "admit_graph",
    "merge_probes",
    "select_composition",
]


@dataclass
class CandidateGraph:
    """A complete candidate composition with its evaluated QoS and cost."""

    graph: ServiceGraph
    qos: QoSVector
    arrival_elapsed: float = 0.0
    cost: float = math.inf


@dataclass
class SelectionOutcome:
    best: Optional[CandidateGraph]
    qualified: List[CandidateGraph] = field(default_factory=list)
    n_candidates: int = 0


@dataclass
class _Partial:
    assignment: Dict[str, ServiceMetadata]
    elapsed: float


def admit_graph(graph: ServiceGraph, pool: ResourcePool, token: Tuple) -> bool:
    """Firmly admit a selected graph's resources; all-or-nothing.

    Reserves every component's end-system resources and every service
    link's bandwidth under ``token``; on any shortfall the partial claim
    is rolled back and False is returned.
    """
    ok = True
    for meta in graph.components():
        if not pool.soft_allocate_peer(token, meta.peer, meta.resources):
            ok = False
            break
    if ok:
        for link in graph.service_links():
            if link.src_peer == link.dst_peer:
                continue
            if not pool.soft_allocate_path(token, link.src_peer, link.dst_peer, link.bandwidth):
                ok = False
                break
    if not ok:
        pool.cancel(token)
        return False
    pool.confirm(token)
    return True


def merge_probes(
    request: CompositeRequest,
    arrivals: Sequence[Probe],
    overlay: Overlay,
    max_patterns: int = 8,
    max_candidates: int = 512,
) -> List[CandidateGraph]:
    """Merge branch probes into complete, deduplicated candidate graphs."""
    fg = request.function_graph
    patterns = fg.composition_patterns(max_patterns)
    candidates: List[CandidateGraph] = []
    seen: Set[Tuple] = set()
    for _, pattern in patterns:
        branches = pattern.branches()
        per_branch: Dict[Tuple[str, ...], List[Probe]] = {b: [] for b in branches}
        for probe in arrivals:
            if probe.branch in per_branch:
                per_branch[probe.branch].append(probe)
        if any(not probes for probes in per_branch.values()):
            continue  # some mandatory branch was never covered in this pattern
        partials: List[_Partial] = [_Partial({}, 0.0)]
        for branch in branches:
            new_partials: List[_Partial] = []
            for partial in partials:
                for probe in per_branch[branch]:
                    if not _compatible(partial.assignment, probe.assignment):
                        continue
                    merged = dict(partial.assignment)
                    merged.update(probe.assignment)
                    new_partials.append(
                        _Partial(merged, max(partial.elapsed, probe.elapsed))
                    )
                    if len(new_partials) >= max_candidates:
                        break
                if len(new_partials) >= max_candidates:
                    break
            partials = new_partials
            if not partials:
                break
        for partial in partials:
            if set(partial.assignment) != set(pattern.functions):
                continue
            graph = ServiceGraph(
                pattern=pattern,
                assignment=partial.assignment,
                source_peer=request.source_peer,
                dest_peer=request.dest_peer,
                base_bandwidth=request.bandwidth,
            )
            sig = graph.signature()
            if sig in seen:
                continue
            seen.add(sig)
            candidates.append(
                CandidateGraph(
                    graph=graph,
                    qos=graph.end_to_end_qos(overlay),
                    arrival_elapsed=partial.elapsed,
                )
            )
            if len(candidates) >= max_candidates:
                return candidates
    return candidates


def _compatible(
    a: Dict[str, ServiceMetadata], b: Dict[str, ServiceMetadata]
) -> bool:
    """Probes merge only when shared functions use identical components."""
    if len(b) < len(a):
        a, b = b, a
    for fn, meta in a.items():
        other = b.get(fn)
        if other is not None and other.component_id != meta.component_id:
            return False
    return True


def select_composition(
    candidates: Sequence[CandidateGraph],
    qos_req: QoSRequirement,
    pool: ResourcePool,
    weights: Optional[CostWeights] = None,
    objective: str = "cost",
) -> SelectionOutcome:
    """Filter by Qreq, rank, return best + all qualified graphs.

    ``objective="cost"`` ranks by ψλ (the paper's default, §4.3);
    ``objective="delay"`` ranks by end-to-end delay (the §6.2 PlanetLab
    experiment asks for "the best qualified service composition that has
    minimum end-to-end service delay").
    """
    if objective not in ("cost", "delay"):
        raise ValueError(f"unknown selection objective {objective!r}")
    qualified: List[CandidateGraph] = []
    for cand in candidates:
        if not qos_req.satisfied_by(cand.qos):
            continue
        cand.cost = psi_cost(cand.graph, pool, weights)
        if math.isinf(cand.cost):
            continue  # some resource fully exhausted: not actually admittable
        qualified.append(cand)
    if objective == "cost":
        qualified.sort(key=lambda c: (c.cost, c.qos.values.get("delay", 0.0)))
    else:
        qualified.sort(key=lambda c: (c.qos.values.get("delay", 0.0), c.cost))
    best = qualified[0] if qualified else None
    return SelectionOutcome(best=best, qualified=qualified, n_candidates=len(candidates))
