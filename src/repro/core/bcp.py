"""Bounded Composition Probing (BCP) — paper §4.

The four steps of the protocol:

1. **Initialize the probe** — the source creates a probe carrying the
   function graph, the QoS/resource requirements and a probing budget β.
2. **Distributed probe processing** — each peer processes probes with
   local information only: check accumulated QoS/resources and drop
   violators, soft-allocate resources, derive next-hop functions from
   dependency *and commutation* links, discover duplicated components
   via the DHT, select the most promising ones within quota, split the
   budget, and spawn child probes (Fig. 6).
3. **Optimal composition selection** — the destination collects probes
   within a timeout, merges DAG branches into complete service graphs,
   filters by the user's QoS requirements, and picks the qualified graph
   with minimum ψλ (Eq. 1).
4. **Setup** — an ack travels the reversed service graph confirming the
   soft resource allocations and initialising components.

Two execution styles share this module's per-hop logic: the synchronous
wave execution below (probes processed in elapsed-time order, so the
collection timeout behaves like the event-driven original), and the
session layer which replays the same steps against the live simulator
clock for recovery experiments.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..discovery.metadata import ServiceMetadata
from ..discovery.registry import ServiceRegistry, WaveLookupCache
from ..perf.timers import PhaseTimer
from ..sim.metrics import MessageLedger
from ..sim.rng import as_generator
from ..topology.overlay import Overlay
from .cost import CostWeights, psi_cost
from .function_graph import CommutationPair, FunctionGraph
from .probe import Probe
from .qos import QoSVector
from .quota import QuotaPolicy, ReplicationProportionalQuota, split_budget
from .request import CompositeRequest
from .resources import ResourcePool
from .selection import CandidateGraph, admit_graph, merge_probes, select_composition
from .service_graph import ServiceGraph


class _AdmissionFailed(Exception):
    """Internal: setup-time admission failed (no-soft-allocation mode)."""

__all__ = [
    "NextHopWeights",
    "BCPConfig",
    "CompositionResult",
    "BCP",
    "derive_next_functions",
]

SOURCE_ID = -1  # pseudo component id for the application sender
DEST_ID = -2  # pseudo component id for the receiver


@dataclass(frozen=True)
class NextHopWeights:
    """Weights of the composite next-hop selection metric (Step 2.3):
    network delay to the candidate, bandwidth headroom on the path to it,
    the candidate peer's failure probability, and (when a trust manager
    is attached — the §8 secure-composition extension) the candidate's
    distrust as seen by the request source."""

    delay: float = 0.4
    bandwidth: float = 0.3
    failure: float = 0.3
    trust: float = 0.0

    def __post_init__(self) -> None:
        if min(self.delay, self.bandwidth, self.failure, self.trust) < 0:
            raise ValueError("next-hop weights must be non-negative")
        if self.delay + self.bandwidth + self.failure + self.trust <= 0:
            raise ValueError("at least one next-hop weight must be positive")


@dataclass(frozen=True)
class BCPConfig:
    """Tunables of the probing protocol (defaults follow the paper)."""

    budget: int = 16
    quota_policy: QuotaPolicy = field(default_factory=ReplicationProportionalQuota)
    cost_weights: Optional[CostWeights] = None  # None -> uniform over pool types
    nexthop_weights: NextHopWeights = field(default_factory=NextHopWeights)
    collect_timeout: float = 5.0  # destination's probe collection window (s)
    hop_processing_delay: float = 0.002  # per-hop probe handling cost (s)
    component_init_delay: float = 0.050  # per-component init during ack pass (s)
    max_patterns: int = 8  # commutation pattern expansion cap
    max_candidates: int = 512  # DAG merge cap
    explore_commutations: bool = True  # ablation: exchangeable orders on/off
    soft_allocation: bool = True  # ablation: probe-time reservations on/off
    qos_pruning: bool = True  # ablation: per-hop violation drops on/off
    metric_selection: bool = True  # ablation: composite metric vs random pruning
    objective: str = "cost"  # destination ranking: "cost" (ψλ) or "delay"
    # fast-path switches: both are behaviour-preserving (the seeded A/B
    # test in tests/test_perf_fastpath.py proves identical compositions);
    # they exist so the equivalence stays checkable
    wave_memoization: bool = True  # memoize discovery lookups per wave
    vectorized_scoring: bool = True  # NumPy candidate scoring in Step 2.3b


@dataclass
class CompositionResult:
    """Everything the source learns when BCP terminates."""

    request: CompositeRequest
    success: bool
    best: Optional[ServiceGraph] = None
    best_qos: Optional[QoSVector] = None
    best_cost: float = math.inf
    qualified: List[CandidateGraph] = field(default_factory=list)
    probes_sent: int = 0  # probe transmissions (hop messages)
    candidates_examined: int = 0  # probes that reached the destination
    setup_time: float = 0.0
    phases: Dict[str, float] = field(default_factory=dict)
    failure_reason: Optional[str] = None
    session_tokens: List[Tuple] = field(default_factory=list)

    @property
    def backup_candidates(self) -> List[CandidateGraph]:
        """Qualified graphs other than the selected one (for §5 backups)."""
        if self.best is None:
            return list(self.qualified)
        best_sig = self.best.signature()
        return [c for c in self.qualified if c.graph.signature() != best_sig]


def derive_next_functions(
    graph: FunctionGraph,
    current: Optional[str],
    applied: FrozenSet[CommutationPair],
    explore_commutations: bool = True,
) -> List[Tuple[str, FunctionGraph, FrozenSet[CommutationPair], bool]]:
    """Step 2.2: next-hop functions from dependency and commutation links.

    Returns ``(function, effective_graph, applied_swaps, is_dependency)``
    tuples.  Dependency successors keep the probe's current pattern; a
    commutation alternative Fl of a successor Fk rewrites the pattern
    with the pair exchanged (the probe visits Fl first).
    """
    deps = graph.sources() if current is None else graph.successors(current)
    out: List[Tuple[str, FunctionGraph, FrozenSet[CommutationPair], bool]] = [
        (fk, graph, applied, True) for fk in deps
    ]
    if not explore_commutations:
        return out
    for fk in deps:
        partner = graph.commutation_partner(fk)
        if partner is None:
            continue
        pair = frozenset({fk, partner})
        if pair in applied:
            continue
        if graph.ordered_pair(pair) == (fk, partner):
            swapped = graph.swap(fk, partner)
            out.append((partner, swapped, applied | {pair}, False))
    return out


class BCP:
    """The probing engine bound to one overlay/pool/registry triple."""

    # below this many candidates the scalar scoring loop wins on NumPy
    # dispatch overhead; both paths produce bit-identical scores so the
    # threshold never changes composition results
    VECTORIZE_MIN_CANDIDATES = 24

    def __init__(
        self,
        overlay: Overlay,
        pool: ResourcePool,
        registry: ServiceRegistry,
        config: Optional[BCPConfig] = None,
        ledger: Optional[MessageLedger] = None,
        peer_failure: Optional[Callable[[int], float]] = None,
        alive: Optional[Callable[[int], bool]] = None,
        rng=None,
        trust=None,
    ) -> None:
        self.overlay = overlay
        self.pool = pool
        self.registry = registry
        self.config = config or BCPConfig()
        self.ledger = ledger if ledger is not None else MessageLedger()
        self.peer_failure = peer_failure or (lambda peer: 0.01)
        self.alive = alive or (lambda peer: True)
        self.rng = as_generator(rng)
        # optional TrustManager (repro.trust) for secure composition: the
        # next-hop metric then penalises candidates the request source
        # distrusts (weight = config.nexthop_weights.trust)
        self.trust = trust
        # per-pair link QoS and per-component Qp vectors are static while
        # the overlay/registry are (overlay.clear_caches() invalidates)
        self._pair_qos: Dict[Tuple[int, int], QoSVector] = {}
        self._comp_qos: Dict[int, QoSVector] = {}
        if hasattr(overlay, "add_cache_listener"):
            overlay.add_cache_listener(self.clear_caches)

    def clear_caches(self) -> None:
        """Drop memoized link-QoS/Qp vectors (overlay invalidation hook)."""
        self._pair_qos.clear()
        self._comp_qos.clear()

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def compose(
        self,
        request: CompositeRequest,
        budget: Optional[int] = None,
        confirm: bool = True,
        now: Optional[float] = None,
    ) -> CompositionResult:
        """Run the full BCP protocol for one request.

        ``confirm=True`` leaves the winning graph's resource reservations
        held (as soft claims re-keyed under the returned session tokens);
        ``confirm=False`` releases everything (measurement-only runs).
        """
        cfg = self.config
        beta = cfg.budget if budget is None else budget
        if beta < 1:
            raise ValueError(f"probing budget must be >= 1, got {beta}")
        result = CompositionResult(request=request, success=False)
        tokens: Set[Tuple] = set()
        wave = self.registry.wave_cache() if cfg.wave_memoization else None
        timer = PhaseTimer()
        try:
            with timer.phase("probe"):
                arrivals, discovery_time = self._probe_phase(
                    request, beta, result, tokens, now, wave
                )
            result.phases["discovery"] = discovery_time
            if not arrivals:
                result.failure_reason = "no probe reached the destination"
                self.ledger.record("bcp_failure", 64)
                return result
            with timer.phase("selection"):
                self._selection_phase(request, arrivals, result, tokens)
            if result.best is None:
                self.ledger.record("bcp_failure", 64)
                return result
            try:
                with timer.phase("setup"):
                    self._setup_phase(request, result, tokens, confirm)
            except _AdmissionFailed:
                self.ledger.record("bcp_failure", 64)
                return result
            result.success = True
            return result
        finally:
            if not result.success or not confirm:
                for token in tokens:
                    self.pool.cancel(token)
                result.session_tokens = [] if not result.success else result.session_tokens
            # wall-clock breakdown (CPU spent in this process, distinct
            # from the simulated-seconds keys above) — see repro.perf
            result.phases.update(timer.as_dict(prefix="wall_"))

    # ------------------------------------------------------------------
    # step 1 + 2: probing
    # ------------------------------------------------------------------
    def _probe_phase(
        self,
        request: CompositeRequest,
        beta: int,
        result: CompositionResult,
        tokens: Set[Tuple],
        now: Optional[float],
        wave: Optional[WaveLookupCache] = None,
    ) -> Tuple[List[Probe], float]:
        cfg = self.config
        root = Probe.initial(request, beta)
        # min-heap on elapsed time approximates event ordering, so the
        # destination timeout cuts off genuinely-late probes
        counter = itertools.count()
        queue: List[Tuple[float, int, Probe]] = [(0.0, next(counter), root)]
        arrivals: Dict[Tuple, Probe] = {}
        seen_children: Set[Tuple] = set()
        discovery_time = 0.0
        deadline = cfg.collect_timeout
        while queue:
            elapsed, _, probe = heapq.heappop(queue)
            if elapsed > deadline:
                continue  # late probe: destination already stopped collecting
            if probe.at_sink:
                arrival = self._final_hop(probe, tokens, result)
                if arrival is not None and arrival.elapsed <= deadline:
                    key = arrival.dedup_key()
                    prev = arrivals.get(key)
                    if prev is None or arrival.elapsed < prev.elapsed:
                        arrivals[key] = arrival
                continue
            children, lookup_rtt = self._expand(
                probe, tokens, result, seen_children, now, wave
            )
            if probe.branch == ():  # the source's initial lookups = discovery phase
                discovery_time = lookup_rtt
            for child in children:
                heapq.heappush(queue, (child.elapsed, next(counter), child))
        result.candidates_examined = len(arrivals)
        return list(arrivals.values()), discovery_time

    def _expand(
        self,
        probe: Probe,
        tokens: Set[Tuple],
        result: CompositionResult,
        seen_children: Set[Tuple],
        now: Optional[float],
        wave: Optional[WaveLookupCache] = None,
    ) -> Tuple[List[Probe], float]:
        """Per-hop probe processing (Steps 2.1–2.4) at ``probe.current_peer``."""
        cfg = self.config
        candidates = derive_next_functions(
            probe.graph, probe.current_function, probe.applied_swaps, cfg.explore_commutations
        )
        if not candidates:
            return [], 0.0
        # Step 2.3a: per-function discovery of duplicated components.
        # Lookups for all next-hop functions proceed in parallel; the
        # probe waits for the slowest one.  The wave cache elides repeat
        # DHT routing while charging the ledger for the logical query.
        lookup = self.registry.lookup if wave is None else wave.lookup
        lookups: List[List[ServiceMetadata]] = []
        max_rtt = 0.0
        for fn, _, _, _ in candidates:
            res = lookup(fn, probe.current_peer, now=now)
            lookups.append(res.components)
            max_rtt = max(max_rtt, res.rtt)
        entries = [
            (fn, self.config.quota_policy(fn, len(comps)), is_dep)
            for (fn, _, _, is_dep), comps in zip(candidates, lookups)
        ]
        shares = split_budget(probe.budget, entries)
        children: List[Probe] = []
        for idx, ((fn, graph, applied, _), comps) in enumerate(zip(candidates, lookups)):
            beta_k = shares.get(idx, 0)
            if beta_k < 1 or not comps:
                continue
            alpha_k = entries[idx][1]
            viable = self._filter_components(probe, comps)
            if not viable:
                continue
            i_k = min(beta_k, alpha_k, len(viable))
            chosen = self._select_components(probe, viable, i_k)
            child_budget = max(1, beta_k // max(len(chosen), 1))
            for comp in chosen:
                result.probes_sent += 1
                self.ledger.record("bcp_probe", 256)
                child = self._admit(probe, fn, comp, graph, applied, child_budget, max_rtt, tokens)
                if child is None:
                    continue
                key = child.dedup_key()
                if key in seen_children:
                    continue
                seen_children.add(key)
                children.append(child)
        return children, max_rtt

    def _filter_components(
        self, probe: Probe, comps: Sequence[ServiceMetadata]
    ) -> List[ServiceMetadata]:
        """Function-qualified duplicates that are alive and quality-compatible."""
        prev = probe.last_component()
        out = []
        for c in comps:
            if not self.alive(c.peer):
                continue
            if prev is not None and not prev.output_quality.compatible_with(c.input_quality):
                continue
            out.append(c)
        return out

    def _select_components(
        self, probe: Probe, comps: List[ServiceMetadata], k: int
    ) -> List[ServiceMetadata]:
        """Step 2.3b: the Iₖ most promising duplicates by the composite metric."""
        if k >= len(comps):
            return list(comps)
        if not self.config.metric_selection:
            idx = self.rng.choice(len(comps), size=k, replace=False)
            return [comps[i] for i in idx]
        # the two scorers are bit-identical (the NumPy pass mirrors the
        # scalar loop's IEEE-754 op order), so the dispatch is purely a
        # speed choice: ufunc dispatch overhead beats the scalar loop
        # only once the candidate list is reasonably wide
        if self.config.vectorized_scoring and len(comps) >= self.VECTORIZE_MIN_CANDIDATES:
            scores = self._score_components_vec(probe, comps)
        else:
            scores = self._score_components_scalar(probe, comps)
        order = sorted(range(len(comps)), key=lambda i: (scores[i], comps[i].component_id))
        return [comps[i] for i in order[:k]]

    def _score_components_scalar(
        self, probe: Probe, comps: List[ServiceMetadata]
    ) -> List[float]:
        """Reference scoring loop (the A/B baseline for the NumPy path)."""
        w = self.config.nexthop_weights
        delays = [self.overlay.latency(probe.current_peer, c.peer) for c in comps]
        max_delay = max(max(delays), 1e-9)
        fails = [self.peer_failure(c.peer) for c in comps]
        max_fail = max(max(fails), 1e-9)
        scores = []
        for c, d, f in zip(comps, delays, fails):
            if w.bandwidth > 0:
                ba = self.pool.path_available_bandwidth(probe.current_peer, c.peer)
                bw_pen = min(probe.out_bandwidth / ba, 2.0) if math.isfinite(ba) and ba > 0 else 2.0
            else:
                bw_pen = 0.0
            score = w.delay * d / max_delay + w.bandwidth * bw_pen + w.failure * f / max_fail
            if self.trust is not None and w.trust > 0:
                distrust = 1.0 - self.trust.trust(probe.request.source_peer, c.peer)
                score += w.trust * distrust
            scores.append(score)
        return scores

    def _score_components_vec(
        self, probe: Probe, comps: List[ServiceMetadata]
    ) -> List[float]:
        """One-pass NumPy scoring over the precomputed delay matrix and a
        batched bandwidth-headroom query.  Every arithmetic step mirrors
        the scalar loop in IEEE-754 order, so scores — and therefore the
        ``(score, component_id)`` tie-break — are bit-identical."""
        w = self.config.nexthop_weights
        n = len(comps)
        peers = [c.peer for c in comps]
        delays = self.overlay.router.delays(probe.current_peer, peers)
        max_delay = max(float(delays.max()), 1e-9)
        fails = np.fromiter((self.peer_failure(p) for p in peers), dtype=float, count=n)
        max_fail = max(float(fails.max()), 1e-9)
        if w.bandwidth > 0:
            ba = self.pool.path_available_bandwidth_batch(probe.current_peer, peers)
            valid = np.isfinite(ba) & (ba > 0)
            if valid.all():
                bw_pen = np.minimum(probe.out_bandwidth / ba, 2.0)
            else:
                # zero/unreachable paths take the scalar loop's flat 2.0
                # penalty; divide only where defined (no FP warnings)
                bw_pen = np.full(n, 2.0)
                quot = np.divide(
                    probe.out_bandwidth, ba, out=np.zeros_like(ba), where=valid
                )
                np.minimum(quot, 2.0, out=bw_pen, where=valid)
        else:
            bw_pen = 0.0
        scores = w.delay * delays / max_delay + w.bandwidth * bw_pen + w.failure * fails / max_fail
        if self.trust is not None and w.trust > 0:
            distrust = np.array(
                [1.0 - self.trust.trust(probe.request.source_peer, p) for p in peers]
            )
            scores = scores + w.trust * distrust
        return scores.tolist()

    def _admit(
        self,
        probe: Probe,
        fn: str,
        comp: ServiceMetadata,
        graph: FunctionGraph,
        applied: FrozenSet[CommutationPair],
        budget: int,
        lookup_rtt: float,
        tokens: Set[Tuple],
    ) -> Optional[Probe]:
        """Step 2.1 at the receiving peer: QoS/resource check + soft allocation."""
        cfg = self.config
        request = probe.request
        rid = request.request_id
        link_qos = self._link_qos(probe.current_peer, comp.peer)
        qos = probe.qos + link_qos + self._qp_as_qos(comp)
        if cfg.qos_pruning and request.qos.violation(qos) > 0:
            return None
        # bandwidth admission on the overlay path carrying this service link
        from_id = probe.last_component().component_id if probe.last_component() else SOURCE_ID
        link_token = (rid, "link", from_id, comp.component_id)
        if not self._reserve_path(link_token, probe.current_peer, comp.peer, probe.out_bandwidth, tokens):
            return None
        # end-system resources on the hosting peer
        comp_token = (rid, "comp", comp.component_id)
        if not self._reserve_peer(comp_token, comp.peer, comp.resources, tokens):
            return None
        # link_qos already carries latency(current_peer, comp.peer)
        elapsed = probe.elapsed + lookup_rtt + cfg.hop_processing_delay + link_qos.get("delay")
        return probe.spawn(fn, comp, graph, applied, qos, budget, elapsed)

    def _final_hop(
        self, probe: Probe, tokens: Set[Tuple], result: CompositionResult
    ) -> Optional[Probe]:
        """The hop from the branch's last component to the destination peer."""
        request = probe.request
        result.probes_sent += 1
        self.ledger.record("bcp_probe", 256)
        last = probe.last_component()
        assert last is not None
        link_qos = self._link_qos(probe.current_peer, request.dest_peer)
        qos = probe.qos + link_qos
        if self.config.qos_pruning and request.qos.violation(qos) > 0:
            return None
        link_token = (request.request_id, "link", last.component_id, DEST_ID)
        if not self._reserve_path(
            link_token, probe.current_peer, request.dest_peer, probe.out_bandwidth, tokens
        ):
            return None
        elapsed = (
            probe.elapsed
            + self.config.hop_processing_delay
            + link_qos.get("delay")
        )
        return probe.arrived(qos, elapsed)

    # ------------------------------------------------------------------
    # step 3: selection
    # ------------------------------------------------------------------
    def _selection_phase(
        self,
        request: CompositeRequest,
        arrivals: List[Probe],
        result: CompositionResult,
        tokens: Set[Tuple],
    ) -> None:
        cfg = self.config
        candidates = merge_probes(
            request,
            arrivals,
            self.overlay,
            max_patterns=cfg.max_patterns,
            max_candidates=cfg.max_candidates,
        )
        selection = select_composition(
            candidates, request.qos, self.pool, cfg.cost_weights, objective=cfg.objective
        )
        result.qualified = selection.qualified
        if selection.best is None:
            result.failure_reason = (
                f"no qualified service graph among {len(candidates)} candidates"
            )
            return
        result.best = selection.best.graph
        result.best_qos = selection.best.qos
        result.best_cost = selection.best.cost

    # ------------------------------------------------------------------
    # step 4: setup (ack pass)
    # ------------------------------------------------------------------
    def _setup_phase(
        self,
        request: CompositeRequest,
        result: CompositionResult,
        tokens: Set[Tuple],
        confirm: bool,
    ) -> None:
        cfg = self.config
        best = result.best
        assert best is not None
        # ack travels the reversed service graph, confirming allocations
        # and initialising each component
        ack_time = 0.0
        for peers in best.branch_paths():
            t = sum(
                self.overlay.latency(u, v) for u, v in zip(peers, peers[1:]) if u != v
            )
            t += cfg.component_init_delay * (len(peers) - 2)
            ack_time = max(ack_time, t)
            self.ledger.record("bcp_ack", 128, max(len(peers) - 1, 1))
        arrivals_done = max((c.arrival_elapsed for c in result.qualified), default=0.0)
        probing_time = min(arrivals_done, cfg.collect_timeout)
        result.phases["composition"] = max(probing_time - result.phases.get("discovery", 0.0), 0.0)
        result.phases["setup_ack"] = ack_time
        result.setup_time = probing_time + ack_time
        # keep the winning graph's reservations; drop the rest
        keep = self._tokens_of(best, request.request_id)
        for token in list(tokens):
            if token not in keep:
                self.pool.cancel(token)
                tokens.discard(token)
        if confirm:
            if cfg.soft_allocation:
                for token in keep:
                    if self.pool.has_token(token):
                        self.pool.confirm(token)
                result.session_tokens = sorted(tokens)
            else:
                # without probe-time reservations admission happens only
                # now, against whatever state concurrent requests left —
                # the conflicted-admission risk soft allocation removes
                token = (request.request_id, "session")
                if not admit_graph(best, self.pool, token):
                    result.best = None
                    result.failure_reason = "admission failed at setup (no soft allocation)"
                    raise _AdmissionFailed()
                result.session_tokens = [token]

    def _tokens_of(self, graph: ServiceGraph, rid: int) -> Set[Tuple]:
        keep: Set[Tuple] = set()
        for cid in graph.component_ids():
            keep.add((rid, "comp", cid))
        for link in graph.service_links():
            from_id = SOURCE_ID if link.from_fn is None else graph.component(link.from_fn).component_id
            to_id = DEST_ID if link.to_fn is None else graph.component(link.to_fn).component_id
            keep.add((rid, "link", from_id, to_id))
        return keep

    def _required_tokens(self, graph: ServiceGraph, rid: int) -> Set[Tuple]:
        """The subset of ``_tokens_of`` that was actually reserved.

        ``_reserve_path`` never allocates for a same-peer hop (e.g. the
        last component hosted on the destination itself), so those link
        tokens exist in the keep set but not in the pool.  Setup-ack
        checks must not treat them as expired reservations."""
        cid_peer = {m.component_id: m.peer for m in graph.assignment.values()}
        required: Set[Tuple] = set()
        for token in self._tokens_of(graph, rid):
            if token[1] == "link":
                _, _, from_id, to_id = token
                u = graph.source_peer if from_id == SOURCE_ID else cid_peer[from_id]
                v = graph.dest_peer if to_id == DEST_ID else cid_peer[to_id]
                if u == v:
                    continue
            required.add(token)
        return required

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def _link_qos(self, u: int, v: int) -> QoSVector:
        key = (u, v)
        hit = self._pair_qos.get(key)
        if hit is not None:
            return hit
        if u == v:
            out = QoSVector({"delay": 0.0, "loss": 0.0})
        else:
            out = QoSVector(
                {"delay": self.overlay.latency(u, v), "loss": self.overlay.path_loss_add(u, v)}
            )
        self._pair_qos[key] = out
        return out

    def _qp_as_qos(self, comp: ServiceMetadata) -> QoSVector:
        hit = self._comp_qos.get(comp.component_id)
        if hit is not None:
            return hit
        qp = comp.qp.values
        out = QoSVector({"delay": qp.get("delay", 0.0), "loss": qp.get("loss", 0.0)})
        self._comp_qos[comp.component_id] = out
        return out

    def _reserve_peer(self, token: Tuple, peer: int, res, tokens: Set[Tuple]) -> bool:
        if not self.config.soft_allocation:
            return self.pool.can_host(peer, res)
        if self.pool.has_token(token):
            return True  # another probe of this request already reserved it
        if not self.pool.soft_allocate_peer(token, peer, res):
            return False
        tokens.add(token)
        return True

    def _reserve_path(
        self, token: Tuple, src: int, dst: int, bandwidth: float, tokens: Set[Tuple]
    ) -> bool:
        if src == dst:
            return True
        if not self.config.soft_allocation:
            return self.pool.can_carry(src, dst, bandwidth)
        if self.pool.has_token(token):
            return True
        if not self.pool.soft_allocate_path(token, src, dst, bandwidth):
            return False
        tokens.add(token)
        return True
