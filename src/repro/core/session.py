"""Service session runtime with proactive failure recovery (paper §5).

A session owns an admitted service graph (firm resource claims), a set
of backup service graphs selected per §5.2, and a low-rate maintenance
process that probes backup liveness/qualification.  On a peer departure
that breaks the current graph the manager

1. detects the failure (after a configurable detection delay),
2. switches to the best live, still-qualified backup whose resources
   admit — **proactive recovery**: no new probing, switch cost is one
   ack pass over the backup graph;
3. falls back to re-running BCP only when every backup is unusable —
   **reactive recovery** (§5: "triggered only when all backup service
   graphs become unqualified as well");
4. declares the session failed if reactive composition also fails.

Backups are *monitored, not reserved*: the paper sends only low-rate
measurement probes along them, so a backup can be stolen by other
sessions between failures — admission is re-checked at switch time.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.engine import PeriodicTask, Simulator
from ..sim.metrics import MessageLedger

from .bcp import BCP, CompositionResult
from .recovery import backup_count, revalidate_backup, select_backups
from .request import CompositeRequest
from .selection import CandidateGraph
from .service_graph import ServiceGraph

__all__ = ["SessionState", "RecoveryConfig", "ServiceSession", "SessionManager"]


class SessionState(enum.Enum):
    ACTIVE = "active"
    FAILED = "failed"
    CLOSED = "closed"


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs of the proactive recovery scheme.

    Failure detection (the paper omits its design, footnote 4): with
    ``heartbeat_interval`` unset, departures are detected after a fixed
    ``detection_delay`` (an oracle with constant lag).  With it set, the
    source pings the session's peers every interval, so detection takes
    the residual time to the next heartbeat — uniform in [0, interval) —
    plus ``detection_delay`` as the reply-timeout margin, and heartbeat
    traffic is charged to the ledger.
    """

    upper_bound: float = 1.0  # U of Eq. 2
    maintenance_interval: float = 5.0  # backup probing period (virtual s)
    detection_delay: float = 0.5  # failure detection latency / reply timeout
    heartbeat_interval: Optional[float] = None  # None -> oracle detection
    proactive: bool = True  # ablation: backups on/off
    reactive: bool = True  # fall back to re-running BCP when backups fail
    replenish: bool = True  # refill backups from the qualified pool
    recompose_budget: Optional[int] = None  # budget for reactive BCP (None -> default)

    def __post_init__(self) -> None:
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")


@dataclass
class ServiceSession:
    """One active composed service session."""

    session_id: int
    request: CompositeRequest
    current: ServiceGraph
    tokens: List[Tuple]
    backups: List[CandidateGraph] = field(default_factory=list)
    spare_qualified: List[CandidateGraph] = field(default_factory=list)
    state: SessionState = SessionState.ACTIVE
    established_at: float = 0.0
    target_backups: int = 0
    recoveries: int = 0
    maintenance_task: Optional[PeriodicTask] = None
    heartbeat_task: Optional[PeriodicTask] = None

    @property
    def active(self) -> bool:
        return self.state is SessionState.ACTIVE


@dataclass
class SessionManagerStats:
    sessions_established: int = 0
    sessions_rejected: int = 0
    failures: int = 0  # session-breaking peer departures observed
    proactive_recoveries: int = 0
    reactive_recoveries: int = 0
    unrecovered_failures: int = 0
    recovery_times: List[float] = field(default_factory=list)
    backup_counts: List[int] = field(default_factory=list)

    @property
    def mean_backups(self) -> float:
        return sum(self.backup_counts) / len(self.backup_counts) if self.backup_counts else 0.0


FailureListener = Callable[[float, bool], None]  # (time, recovered)


class SessionManager:
    """Establishes sessions via BCP and keeps them alive through churn."""

    def __init__(
        self,
        sim: Simulator,
        bcp: BCP,
        config: Optional[RecoveryConfig] = None,
        alive: Optional[Callable[[int], bool]] = None,
        ledger: Optional[MessageLedger] = None,
        rng=None,
    ) -> None:
        from ..sim.rng import as_generator

        self.sim = sim
        self.bcp = bcp
        self.pool = bcp.pool
        self.overlay = bcp.overlay
        self.config = config or RecoveryConfig()
        self.alive = alive or bcp.alive
        self.ledger = ledger if ledger is not None else bcp.ledger
        self.rng = as_generator(rng)
        self.sessions: Dict[int, ServiceSession] = {}
        self.stats = SessionManagerStats()
        self._ids = itertools.count(1)
        self._failure_listeners: List[FailureListener] = []
        self._pending_detection: Dict[int, float] = {}

    def _detection_delay(self) -> float:
        """Time from a peer departure to the source noticing it."""
        cfg = self.config
        if cfg.heartbeat_interval is None:
            return cfg.detection_delay
        residual = float(self.rng.uniform(0.0, cfg.heartbeat_interval))
        return residual + cfg.detection_delay

    def on_failure(self, fn: FailureListener) -> None:
        """Subscribe to session-failure events: fn(time, recovered)."""
        self._failure_listeners.append(fn)

    # ------------------------------------------------------------------
    # establishment / teardown
    # ------------------------------------------------------------------
    def establish(
        self, request: CompositeRequest, budget: Optional[int] = None
    ) -> Optional[ServiceSession]:
        """Compose and admit a session; None when composition fails."""
        result = self.bcp.compose(request, budget=budget, confirm=True)
        if not result.success or result.best is None:
            self.stats.sessions_rejected += 1
            return None
        session = ServiceSession(
            session_id=next(self._ids),
            request=request,
            current=result.best,
            tokens=list(result.session_tokens),
            established_at=self.sim.now,
        )
        self._install_backups(session, result)
        self.sessions[session.session_id] = session
        self.stats.sessions_established += 1
        self.stats.backup_counts.append(len(session.backups))
        self.sim.schedule(request.duration, self._expire, session.session_id)
        if self.config.proactive and self.config.maintenance_interval > 0:
            session.maintenance_task = self.sim.every(
                self.config.maintenance_interval, self._maintain, session.session_id
            )
        if self.config.heartbeat_interval is not None:
            session.heartbeat_task = self.sim.every(
                self.config.heartbeat_interval, self._heartbeat, session.session_id
            )
        return session

    def _heartbeat(self, session_id: int) -> None:
        session = self.sessions.get(session_id)
        if session is None or not session.active:
            return
        self.ledger.record("heartbeat", 32, len(session.current.peers()))

    def _install_backups(self, session: ServiceSession, result: CompositionResult) -> None:
        if not self.config.proactive:
            session.target_backups = 0
            return
        assert result.best_qos is not None and result.best is not None
        f_lambda = result.best.failure_probability(self.bcp.peer_failure)
        gamma = backup_count(
            result.best_qos,
            session.request.qos,
            f_lambda,
            session.request.failure_req,
            n_qualified=max(len(result.qualified), 1),
            upper_bound=self.config.upper_bound,
        )
        session.target_backups = gamma
        pool_candidates = result.backup_candidates
        session.backups = select_backups(
            result.best, pool_candidates, gamma, self.bcp.peer_failure
        )
        chosen = {c.graph.signature() for c in session.backups}
        session.spare_qualified = [
            c for c in pool_candidates if c.graph.signature() not in chosen
        ]

    def teardown(self, session_id: int) -> None:
        session = self.sessions.get(session_id)
        if session is None or session.state is SessionState.CLOSED:
            return
        self._release(session)
        session.state = SessionState.CLOSED

    def _expire(self, session_id: int) -> None:
        session = self.sessions.get(session_id)
        if session is not None and session.active:
            self.teardown(session_id)

    def _release(self, session: ServiceSession) -> None:
        for token in session.tokens:
            self.pool.release(token)
        session.tokens = []
        if session.maintenance_task is not None:
            session.maintenance_task.stop()
            session.maintenance_task = None
        if session.heartbeat_task is not None:
            session.heartbeat_task.stop()
            session.heartbeat_task = None

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def peer_departed(self, peer: int, _time: float = 0.0) -> None:
        """Churn hook: check every active session against the lost peer."""
        broken = [
            s
            for s in self.sessions.values()
            if s.active and (s.current.uses_peer(peer) or peer in (s.request.source_peer, s.request.dest_peer))
        ]
        for session in broken:
            if peer in (session.request.source_peer, session.request.dest_peer):
                # an endpoint died: nothing to recover to (paper assumes
                # stable endpoints; guarded here for robustness)
                self._fail(session)
                continue
            delay = self._detection_delay()
            self._pending_detection[session.session_id] = delay
            self.sim.schedule(delay, self._recover, session.session_id)

    def _fail(self, session: ServiceSession) -> None:
        self.stats.failures += 1
        self.stats.unrecovered_failures += 1
        self._emit_failure(recovered=False)
        self._release(session)
        session.state = SessionState.FAILED

    def _emit_failure(self, recovered: bool) -> None:
        now = self.sim.now
        for fn in self._failure_listeners:
            fn(now, recovered)

    def _recover(self, session_id: int) -> None:
        session = self.sessions.get(session_id)
        if session is None or not session.active:
            return
        # the failure may have healed meanwhile (peer revived) — still
        # treat it as a failure event: streaming broke at departure time
        if all(self.alive(p) for p in session.current.peers()):
            dead_again = False
        else:
            dead_again = True
        if not dead_again:
            return
        self.stats.failures += 1
        # free the broken graph's firm claims *before* trying backups:
        # select_backups maximises overlap with the current graph, so its
        # strongest picks are exactly the graphs admission would reject
        # for capacity the failed session itself still holds.  The graph
        # is broken either way — nothing streams over those claims.
        self._release_claims_only(session)
        if self.config.proactive and self._switch_to_backup(session):
            return
        if self.config.reactive and self._reactive_recover(session):
            return
        self.stats.unrecovered_failures += 1
        self._emit_failure(recovered=False)
        self._release(session)
        session.state = SessionState.FAILED

    def _switch_to_backup(self, session: ServiceSession) -> bool:
        """Proactive path: first live, qualified, admittable backup wins."""
        while session.backups:
            cand = session.backups.pop(0)
            graph = cand.graph
            token = (session.session_id, "switch", session.recoveries, graph.signature()[1])
            if not revalidate_backup(cand, self.pool, self.alive, token):
                continue
            session.tokens = [token]
            session.current = graph
            session.recoveries += 1
            self.stats.proactive_recoveries += 1
            detection = self._pending_detection.pop(
                session.session_id, self.config.detection_delay
            )
            switch_time = detection + self._ack_time(graph)
            self.stats.recovery_times.append(switch_time)
            self.ledger.record("recovery_switch", 128, len(graph.components()) + 1)
            self._emit_failure(recovered=True)
            self._replenish(session)
            return True
        return False

    def _reactive_recover(self, session: ServiceSession) -> bool:
        """All backups unusable: re-run BCP (the reactive path)."""
        result = self.bcp.compose(
            session.request, budget=self.config.recompose_budget, confirm=True
        )
        if not result.success or result.best is None:
            return False
        session.tokens = list(result.session_tokens)
        session.current = result.best
        session.recoveries += 1
        self.stats.reactive_recoveries += 1
        detection = self._pending_detection.pop(
            session.session_id, self.config.detection_delay
        )
        self.stats.recovery_times.append(detection + result.setup_time)
        self._emit_failure(recovered=True)
        self._install_backups(session, result)
        return True

    def _release_claims_only(self, session: ServiceSession) -> None:
        for token in session.tokens:
            self.pool.release(token)
        session.tokens = []

    def _ack_time(self, graph: ServiceGraph) -> float:
        return max(
            sum(self.overlay.latency(u, v) for u, v in zip(p, p[1:]) if u != v)
            for p in graph.branch_paths()
        )

    # ------------------------------------------------------------------
    # backup maintenance (low-rate probing)
    # ------------------------------------------------------------------
    def _maintain(self, session_id: int) -> None:
        session = self.sessions.get(session_id)
        if session is None or not session.active:
            return
        kept: List[CandidateGraph] = []
        for cand in session.backups:
            # one low-rate measurement probe per branch of the backup
            self.ledger.record("maintenance_probe", 64, len(cand.graph.branch_paths()))
            if all(self.alive(p) for p in cand.graph.peers()):
                kept.append(cand)
        session.backups = kept
        self._replenish(session)

    def _replenish(self, session: ServiceSession) -> None:
        if not self.config.replenish:
            return
        while len(session.backups) < session.target_backups and session.spare_qualified:
            chosen = {c.graph.signature() for c in session.backups}
            chosen.add(session.current.signature())
            pool = [
                c
                for c in session.spare_qualified
                if c.graph.signature() not in chosen
                and all(self.alive(p) for p in c.graph.peers())
            ]
            if not pool:
                break
            extra = select_backups(
                session.current,
                pool,
                session.target_backups - len(session.backups),
                self.bcp.peer_failure,
            )
            if not extra:
                break
            session.backups.extend(extra)
            extra_sigs = {c.graph.signature() for c in extra}
            session.spare_qualified = [
                c for c in session.spare_qualified if c.graph.signature() not in extra_sigs
            ]

    # ------------------------------------------------------------------
    def active_sessions(self) -> List[ServiceSession]:
        return [s for s in self.sessions.values() if s.active]
