"""Human-readable renderings of function graphs and service graphs.

The paper communicates compositions as box-and-arrow diagrams (Figs.
2, 4–7); these helpers produce the terminal equivalent so examples and
experiment logs can show *what* was composed, not just scores:

>>> fg = FunctionGraph.linear(["downscale", "ticker"])
>>> print(render_function_graph(fg))
[downscale] ──▶ [ticker]
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..topology.overlay import Overlay
from .function_graph import FunctionGraph
from .service_graph import ServiceGraph

__all__ = ["render_function_graph", "render_service_graph", "describe_composition"]

_ARROW = " ──▶ "


def render_function_graph(graph: FunctionGraph) -> str:
    """Render a function graph, one branch per line; commutations marked.

    Linear graphs render as a single chain.  DAGs render each source→sink
    branch on its own line (shared prefixes repeat — branch paths are how
    the paper decomposes service graphs, §2.2).  A ``~`` joins functions
    whose order is exchangeable.
    """
    commuting = {tuple(sorted(pair)) for pair in graph.commutations}

    def fmt(fn: str, nxt: Optional[str]) -> str:
        if nxt is not None and tuple(sorted((fn, nxt))) in commuting:
            return f"[{fn}] ~"
        return f"[{fn}]"

    lines = []
    for branch in graph.branches():
        parts = []
        for i, fn in enumerate(branch):
            nxt = branch[i + 1] if i + 1 < len(branch) else None
            parts.append(fmt(fn, nxt))
        lines.append(_ARROW.join(parts).replace("] ~" + _ARROW, "] ~▶ "))
    return "\n".join(lines)


def render_service_graph(graph: ServiceGraph) -> str:
    """Render an instantiated composition with hosts, one branch per line.

    ``(src)`` and ``(dst)`` bracket each branch; every mapped component
    shows ``function@peer``.
    """
    lines = []
    for branch in graph.pattern.branches():
        parts = [f"(v{graph.source_peer})"]
        for fn in branch:
            meta = graph.component(fn)
            parts.append(f"[{fn} s{meta.component_id}@v{meta.peer}]")
        parts.append(f"(v{graph.dest_peer})")
        lines.append(_ARROW.join(parts))
    return "\n".join(lines)


def describe_composition(
    graph: ServiceGraph, overlay: Optional[Overlay] = None
) -> str:
    """A multi-line summary: rendering + per-branch QoS + link table."""
    lines = [render_service_graph(graph)]
    if overlay is not None:
        for branch in graph.pattern.branches():
            q = graph.branch_qos(overlay, branch)
            lines.append(
                f"  branch {'→'.join(branch)}: "
                f"delay {q.get('delay')*1000:.1f} ms, loss(add) {q.get('loss'):.4f}"
            )
        e2e = graph.end_to_end_qos(overlay)
        lines.append(
            f"  end-to-end (worst branch): delay {e2e.get('delay')*1000:.1f} ms"
        )
    lines.append("  service links:")
    for link in graph.service_links():
        frm = link.from_fn or "sender"
        to = link.to_fn or "receiver"
        lines.append(
            f"    {frm} (v{link.src_peer}) → {to} (v{link.dst_peer}): "
            f"{link.bandwidth:.2f} Mbps"
        )
    return "\n".join(lines)
