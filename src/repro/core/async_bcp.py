"""Event-driven execution of the BCP protocol (simulated mode).

:class:`~repro.core.bcp.BCP` executes probing synchronously in
elapsed-time order — ideal for large parameter sweeps.  This module runs
the *same per-hop logic* as actual simulator events, which adds the
dynamics the synchronous mode abstracts away:

* probes are in flight for real virtual time: peers can **die mid-probe**
  and the probe is silently lost, exactly like a dropped message;
* **soft resource allocations expire** on a timer unless the setup ack
  confirms them (§4.1 Step 2.1: "the resource allocation is soft since
  it will be cancelled after certain timeout period if the peer does not
  receive a confirmation message");
* the destination's **collection window** is a real timer: whatever has
  arrived when it fires is what selection sees;
* the **ack pass** travels the reverse service graph hop by hop and can
  find a reservation already expired or a peer already gone — in which
  case session setup fails even though selection succeeded;
* multiple requests **interleave**, contending for resources through
  their soft reservations — the situation soft allocation exists for.

The two modes share all per-hop decision logic (component filtering,
composite next-hop metric, budget splitting, QoS accumulation) via the
wrapped :class:`BCP` instance, so there is exactly one implementation of
the paper's Steps 2.1–2.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..sim.engine import EventHandle, Simulator
from .bcp import BCP, CompositionResult, DEST_ID, SOURCE_ID
from .probe import Probe
from .quota import split_budget
from .request import CompositeRequest
from .selection import merge_probes, select_composition

__all__ = ["AsyncBCP", "InFlightComposition"]

CompletionCallback = Callable[[CompositionResult], None]


@dataclass
class InFlightComposition:
    """Book-keeping for one request being composed event-driven."""

    request: CompositeRequest
    budget: int
    confirm: bool
    callback: Optional[CompletionCallback]
    started_at: float
    arrivals: Dict[Tuple, Probe] = field(default_factory=dict)
    tokens: Set[Tuple] = field(default_factory=set)
    token_timers: Dict[Tuple, EventHandle] = field(default_factory=dict)
    seen_children: Set[Tuple] = field(default_factory=set)
    probes_sent: int = 0
    discovery_time: float = 0.0
    selection_timer: Optional[EventHandle] = None
    done: bool = False
    result: Optional[CompositionResult] = None

    @property
    def request_id(self) -> int:
        return self.request.request_id


class AsyncBCP:
    """Runs BCP compositions as simulator events over a shared pool."""

    def __init__(
        self,
        sim: Simulator,
        bcp: BCP,
        soft_state_timeout: float = 30.0,
    ) -> None:
        if soft_state_timeout <= 0:
            raise ValueError("soft_state_timeout must be positive")
        self.sim = sim
        self.bcp = bcp  # shared per-hop logic + pool/registry/overlay/ledger
        self.soft_state_timeout = soft_state_timeout
        self.active: Dict[int, InFlightComposition] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def compose(
        self,
        request: CompositeRequest,
        budget: Optional[int] = None,
        confirm: bool = True,
        callback: Optional[CompletionCallback] = None,
    ) -> InFlightComposition:
        """Launch a composition; the result arrives via ``callback`` (and
        on the returned handle) once the collection window + ack pass end."""
        beta = self.bcp.config.budget if budget is None else budget
        if beta < 1:
            raise ValueError(f"probing budget must be >= 1, got {beta}")
        comp = InFlightComposition(
            request=request,
            budget=beta,
            confirm=confirm,
            callback=callback,
            started_at=self.sim.now,
        )
        self.active[request.request_id] = comp
        root = Probe.initial(request, beta)
        # the source processes the initial probe immediately
        self.sim.schedule(0.0, self._process_probe, comp, root)
        # destination stops collecting at the timeout, then selects
        comp.selection_timer = self.sim.schedule(
            self.bcp.config.collect_timeout, self._select, comp
        )
        return comp

    # ------------------------------------------------------------------
    # probe plane
    # ------------------------------------------------------------------
    def _process_probe(self, comp: InFlightComposition, probe: Probe) -> None:
        """Per-hop processing at ``probe.current_peer`` (Steps 2.2–2.4)."""
        if comp.done or not self.bcp.alive(probe.current_peer):
            return
        cfg = self.bcp.config
        if probe.at_sink:
            self._send_final_hop(comp, probe)
            return
        from .bcp import derive_next_functions

        candidates = derive_next_functions(
            probe.graph, probe.current_function, probe.applied_swaps,
            cfg.explore_commutations,
        )
        if not candidates:
            return
        lookups = []
        max_rtt = 0.0
        for fn, _, _, _ in candidates:
            res = self.bcp.registry.lookup(fn, probe.current_peer, now=self.sim.now)
            lookups.append(res.components)
            max_rtt = max(max_rtt, res.rtt)
        if probe.branch == ():
            comp.discovery_time = max_rtt
        entries = [
            (fn, cfg.quota_policy(fn, len(comps)), is_dep)
            for (fn, _, _, is_dep), comps in zip(candidates, lookups)
        ]
        shares = split_budget(probe.budget, entries)
        # the lookup round-trip delays everything sent from this hop
        base_delay = max_rtt + cfg.hop_processing_delay
        for idx, ((fn, graph, applied, _), comps) in enumerate(zip(candidates, lookups)):
            beta_k = shares.get(idx, 0)
            if beta_k < 1 or not comps:
                continue
            viable = self.bcp._filter_components(probe, comps)
            if not viable:
                continue
            i_k = min(beta_k, entries[idx][1], len(viable))
            chosen = self.bcp._select_components(probe, viable, i_k)
            child_budget = max(1, beta_k // max(len(chosen), 1))
            for comp_meta in chosen:
                comp.probes_sent += 1
                self.bcp.ledger.record("bcp_probe", 256)
                link_delay = self.bcp.overlay.latency(probe.current_peer, comp_meta.peer)
                self.sim.schedule(
                    base_delay + link_delay,
                    self._receive_probe,
                    comp, probe, fn, comp_meta, graph, applied, child_budget,
                )

    def _receive_probe(
        self, comp, parent: Probe, fn, meta, graph, applied, budget: int
    ) -> None:
        """Step 2.1 at the receiving peer, in real virtual time."""
        if comp.done or not self.bcp.alive(meta.peer):
            return  # peer died while the probe was in flight
        request = comp.request
        cfg = self.bcp.config
        qos = parent.qos + self.bcp._link_qos(parent.current_peer, meta.peer) \
            + self.bcp._qp_as_qos(meta)
        if cfg.qos_pruning and request.qos.violation(qos) > 0:
            return
        from_id = (
            parent.last_component().component_id if parent.last_component() else SOURCE_ID
        )
        link_token = (request.request_id, "link", from_id, meta.component_id)
        if not self._reserve_path(comp, link_token, parent.current_peer, meta.peer,
                                  parent.out_bandwidth):
            return
        comp_token = (request.request_id, "comp", meta.component_id)
        if not self._reserve_peer(comp, comp_token, meta.peer, meta.resources):
            return
        child = parent.spawn(
            fn, meta, graph, applied, qos, budget,
            elapsed=self.sim.now - comp.started_at,
        )
        key = child.dedup_key()
        if key in comp.seen_children:
            return
        comp.seen_children.add(key)
        self._process_probe(comp, child)

    def _send_final_hop(self, comp, probe: Probe) -> None:
        request = comp.request
        comp.probes_sent += 1
        self.bcp.ledger.record("bcp_probe", 256)
        delay = (
            self.bcp.config.hop_processing_delay
            + self.bcp.overlay.latency(probe.current_peer, request.dest_peer)
        )
        self.sim.schedule(delay, self._arrive, comp, probe)

    def _arrive(self, comp, probe: Probe) -> None:
        if comp.done or not self.bcp.alive(comp.request.dest_peer):
            return
        request = comp.request
        qos = probe.qos + self.bcp._link_qos(probe.current_peer, request.dest_peer)
        if self.bcp.config.qos_pruning and request.qos.violation(qos) > 0:
            return
        last = probe.last_component()
        link_token = (request.request_id, "link", last.component_id, DEST_ID)
        if not self._reserve_path(comp, link_token, probe.current_peer,
                                  request.dest_peer, probe.out_bandwidth):
            return
        arrived = probe.arrived(qos, elapsed=self.sim.now - comp.started_at)
        key = arrived.dedup_key()
        prev = comp.arrivals.get(key)
        if prev is None or arrived.elapsed < prev.elapsed:
            comp.arrivals[key] = arrived

    # ------------------------------------------------------------------
    # soft-state reservations with expiry
    # ------------------------------------------------------------------
    def _reserve_peer(self, comp, token, peer, resources) -> bool:
        if not self.bcp.config.soft_allocation:
            return self.bcp.pool.can_host(peer, resources)
        if self.bcp.pool.has_token(token):
            return True
        if not self.bcp.pool.soft_allocate_peer(token, peer, resources):
            return False
        self._arm_expiry(comp, token)
        return True

    def _reserve_path(self, comp, token, src, dst, bandwidth) -> bool:
        if src == dst:
            return True
        if not self.bcp.config.soft_allocation:
            return self.bcp.pool.can_carry(src, dst, bandwidth)
        if self.bcp.pool.has_token(token):
            return True
        if not self.bcp.pool.soft_allocate_path(token, src, dst, bandwidth):
            return False
        self._arm_expiry(comp, token)
        return True

    def _arm_expiry(self, comp, token) -> None:
        comp.tokens.add(token)
        comp.token_timers[token] = self.sim.schedule(
            self.soft_state_timeout, self._expire_token, comp, token
        )

    def _expire_token(self, comp, token) -> None:
        """Soft-state timeout: the reservation evaporates unconfirmed."""
        if token in comp.tokens:
            comp.tokens.discard(token)
            comp.token_timers.pop(token, None)
            self.bcp.pool.cancel(token)

    def _drop_token(self, comp, token) -> None:
        timer = comp.token_timers.pop(token, None)
        if timer is not None:
            timer.cancel()
        comp.tokens.discard(token)
        self.bcp.pool.cancel(token)

    # ------------------------------------------------------------------
    # selection + ack pass
    # ------------------------------------------------------------------
    def _select(self, comp: InFlightComposition) -> None:
        if comp.done:
            return
        cfg = self.bcp.config
        request = comp.request
        result = CompositionResult(request=request, success=False)
        result.probes_sent = comp.probes_sent
        result.candidates_examined = len(comp.arrivals)
        result.phases["discovery"] = comp.discovery_time
        if not comp.arrivals:
            result.failure_reason = "no probe reached the destination"
            self.bcp.ledger.record("bcp_failure", 64)
            self._finish(comp, result)
            return
        candidates = merge_probes(
            request, list(comp.arrivals.values()), self.bcp.overlay,
            max_patterns=cfg.max_patterns, max_candidates=cfg.max_candidates,
        )
        selection = select_composition(
            candidates, request.qos, self.bcp.pool, cfg.cost_weights,
            objective=cfg.objective,
        )
        result.qualified = selection.qualified
        if selection.best is None:
            result.failure_reason = (
                f"no qualified service graph among {len(candidates)} candidates"
            )
            self.bcp.ledger.record("bcp_failure", 64)
            self._finish(comp, result)
            return
        result.best = selection.best.graph
        result.best_qos = selection.best.qos
        result.best_cost = selection.best.cost
        result.phases["composition"] = max(
            (self.sim.now - comp.started_at) - comp.discovery_time, 0.0
        )
        # release every reservation the winning graph does not need; the
        # ack pass will confirm the kept ones hop by hop
        keep = self.bcp._tokens_of(result.best, request.request_id)
        for token in list(comp.tokens):
            if token not in keep:
                self._drop_token(comp, token)
        ack_time = self._ack_duration(result.best)
        self.bcp.ledger.record(
            "bcp_ack", 128,
            sum(max(len(p) - 1, 1) for p in result.best.branch_paths()),
        )
        self.sim.schedule(ack_time, self._confirm_setup, comp, result, keep, ack_time)

    def _ack_duration(self, graph) -> float:
        cfg = self.bcp.config
        ack = 0.0
        for peers in graph.branch_paths():
            t = sum(
                self.bcp.overlay.latency(u, v)
                for u, v in zip(peers, peers[1:])
                if u != v
            )
            t += cfg.component_init_delay * (len(peers) - 2)
            ack = max(ack, t)
        return ack

    def _confirm_setup(self, comp, result, keep, ack_time) -> None:
        """The ack arrived everywhere: confirm reservations (if they and
        their hosts survived) and deliver the result."""
        request = comp.request
        graph = result.best
        alive_ok = all(self.bcp.alive(p) for p in graph.peers())
        # same-peer hops never reserved a link token (BCP._reserve_path),
        # so only the tokens that must exist can count as expired
        required = self.bcp._required_tokens(graph, request.request_id)
        if comp.confirm and self.bcp.config.soft_allocation:
            tokens_ok = all(
                token in comp.tokens and self.bcp.pool.has_token(token)
                for token in required
            )
        else:
            tokens_ok = True
        if comp.confirm and self.bcp.config.soft_allocation and (not alive_ok or not tokens_ok):
            # a reservation expired or a host died before the ack landed:
            # setup fails, everything is released
            result.success = False
            result.best = None
            result.failure_reason = "setup ack found expired reservation or dead peer"
            self.bcp.ledger.record("bcp_failure", 64)
            self._finish(comp, result)
            return
        result.phases["setup_ack"] = ack_time
        result.setup_time = (self.sim.now - comp.started_at)
        if comp.confirm and self.bcp.config.soft_allocation:
            for token in required:
                timer = comp.token_timers.pop(token, None)
                if timer is not None:
                    timer.cancel()
                self.bcp.pool.confirm(token)
            comp.tokens -= keep
            result.session_tokens = sorted(required)
        result.success = True
        self._finish(comp, result)

    def _finish(self, comp: InFlightComposition, result: CompositionResult) -> None:
        comp.done = True
        comp.result = result
        if comp.selection_timer is not None:
            comp.selection_timer.cancel()
        # release whatever soft state remains (losers/failures); kept
        # session tokens were already confirmed and removed from the set
        for token in list(comp.tokens):
            self._drop_token(comp, token)
        self.active.pop(comp.request_id, None)
        if comp.callback is not None:
            comp.callback(result)
