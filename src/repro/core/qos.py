"""QoS vectors and requirements.

The paper's QoS model (§2.1): a request carries requirements
``Qreq = [q1, ..., qm]`` over quality parameters such as delay and data
loss rate, and "all QoS metrics are additive since a multiplicative
metric (e.g., loss rate) can be transformed into additive parameters
using logarithmic function".  We implement exactly that: a
:class:`QoSVector` is an additive vector over named metrics, with helpers
to move loss rates in and out of the additive (−log survival) domain.

Bandwidth is *not* a QoS metric here — the paper treats it as a resource
(§2.1 footnote), handled in :mod:`repro.core.resources`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

__all__ = [
    "QoSVector",
    "QoSRequirement",
    "loss_to_additive",
    "additive_to_loss",
    "DEFAULT_METRICS",
]

DEFAULT_METRICS: Tuple[str, ...] = ("delay", "loss")


def loss_to_additive(loss_rate: float) -> float:
    """Map a loss rate in [0, 1) to the additive domain: −ln(1 − loss).

    Additivity: if two hops independently lose ``a`` and ``b`` fractions,
    the end-to-end survival is (1−a)(1−b), so −ln survival adds.
    """
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
    return -math.log1p(-loss_rate)


def additive_to_loss(additive: float) -> float:
    """Inverse of :func:`loss_to_additive`."""
    if additive < 0:
        raise ValueError(f"additive loss must be >= 0, got {additive}")
    return -math.expm1(-additive)


@dataclass(frozen=True)
class QoSVector:
    """An immutable additive QoS vector (e.g. accumulated delay + loss).

    All arithmetic is metric-wise; adding vectors with different metric
    sets is an error (it would silently drop constraints).
    """

    values: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", dict(self.values))
        for k, v in self.values.items():
            if v < 0 or math.isnan(v):
                raise ValueError(f"QoS metric {k!r} must be >= 0, got {v}")

    @classmethod
    def _from_trusted(cls, values: Dict[str, float]) -> "QoSVector":
        """Construct from an already-validated plain dict.

        Metric-wise arithmetic on validated vectors cannot produce a
        negative or NaN entry, so results of ``+`` / ``elementwise_max``
        skip the defensive copy and re-validation in ``__post_init__``
        (they dominate BCP's per-hop admission cost)."""
        self = object.__new__(cls)
        object.__setattr__(self, "values", values)
        return self

    @classmethod
    def zero(cls, metrics: Iterable[str] = DEFAULT_METRICS) -> "QoSVector":
        return cls._from_trusted({m: 0.0 for m in metrics})

    def metrics(self) -> Tuple[str, ...]:
        return tuple(sorted(self.values))

    def get(self, metric: str) -> float:
        return self.values[metric]

    def __add__(self, other: "QoSVector") -> "QoSVector":
        if set(self.values) != set(other.values):
            raise ValueError(
                f"metric mismatch: {sorted(self.values)} vs {sorted(other.values)}"
            )
        return QoSVector._from_trusted(
            {m: self.values[m] + other.values[m] for m in self.values}
        )

    def elementwise_max(self, other: "QoSVector") -> "QoSVector":
        """Metric-wise maximum — aggregates parallel DAG branches, where the
        end-to-end value is dominated by the worst branch."""
        if set(self.values) != set(other.values):
            raise ValueError("metric mismatch in elementwise_max")
        return QoSVector._from_trusted(
            {m: max(self.values[m], other.values[m]) for m in self.values}
        )

    def scaled(self, factor: float) -> "QoSVector":
        if factor < 0:
            raise ValueError("negative scale factor")
        return QoSVector({m: v * factor for m, v in self.values.items()})

    def as_dict(self) -> Dict[str, float]:
        return dict(self.values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.4g}" for k, v in sorted(self.values.items()))
        return f"QoSVector({inner})"


@dataclass(frozen=True)
class QoSRequirement:
    """Upper bounds on each additive QoS metric (the user's ``Qreq``)."""

    bounds: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "bounds", dict(self.bounds))
        for k, v in self.bounds.items():
            if v <= 0 or math.isnan(v):
                raise ValueError(f"QoS bound {k!r} must be > 0, got {v}")

    def metrics(self) -> Tuple[str, ...]:
        return tuple(sorted(self.bounds))

    def zero_vector(self) -> QoSVector:
        return QoSVector.zero(self.bounds)

    def satisfied_by(self, qos: QoSVector) -> bool:
        """All constrained metrics within bounds (extra metrics ignored)."""
        return all(qos.values.get(m, math.inf) <= b for m, b in self.bounds.items())

    def violation(self, qos: QoSVector) -> float:
        """Worst relative overshoot; <= 0 means satisfied."""
        if not self.bounds:
            return 0.0
        values = qos.values
        worst = -math.inf
        for m, b in self.bounds.items():
            v = (values.get(m, math.inf) - b) / b
            if v > worst:
                worst = v
        return worst

    def utilisation(self, qos: QoSVector) -> float:
        """Σ qᵢ/qᵢ_req — the QoS term of the backup-count formula (Eq. 2)."""
        return sum(qos.values.get(m, math.inf) / b for m, b in self.bounds.items())

    def relax(self, factor: float) -> "QoSRequirement":
        """A requirement with every bound multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("relax factor must be positive")
        return QoSRequirement({m: b * factor for m, b in self.bounds.items()})

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}<={v:.4g}" for k, v in sorted(self.bounds.items()))
        return f"QoSRequirement({inner})"
