"""Service graphs: function graphs instantiated onto concrete components.

The middle tier of the paper's Fig. 2: each function of a composition
pattern is mapped to one duplicated service component; **service links**
connect consecutive components (plus the application sender at the head
and receiver at the tail) and each maps onto an overlay network path.
A service graph decomposes into **branch paths**, QoS accumulates
additively along each branch, and the graph's end-to-end QoS is the
metric-wise worst branch (a DAG's output cannot be earlier/cleaner than
its slowest/lossiest branch).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..discovery.metadata import ServiceMetadata
from ..topology.overlay import Overlay
from .function_graph import FunctionGraph
from .qos import QoSVector

__all__ = ["ServiceLink", "ServiceGraph"]


@dataclass(frozen=True)
class ServiceLink:
    """One service link: ``from_fn@src_peer → to_fn@dst_peer``.

    ``None`` function names denote the virtual endpoints (application
    sender/receiver).  ``bandwidth`` is the stream rate this link must
    carry — the base request bandwidth scaled by the bandwidth factors of
    every upstream component (transcoders shrink the stream, upscalers
    grow it).
    """

    from_fn: Optional[str]
    to_fn: Optional[str]
    src_peer: int
    dst_peer: int
    bandwidth: float


@dataclass(frozen=True)
class ServiceGraph:
    """An instantiated composition: pattern + per-function component choice."""

    pattern: FunctionGraph
    assignment: Mapping[str, ServiceMetadata]
    source_peer: int
    dest_peer: int
    base_bandwidth: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignment", dict(self.assignment))
        missing = set(self.pattern.functions) - set(self.assignment)
        if missing:
            raise ValueError(f"unassigned functions: {sorted(missing)}")
        for fn, meta in self.assignment.items():
            if meta.function != fn:
                raise ValueError(
                    f"component {meta.component_id} provides {meta.function!r}, "
                    f"assigned to {fn!r}"
                )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def component(self, fn: str) -> ServiceMetadata:
        return self.assignment[fn]

    def components(self) -> List[ServiceMetadata]:
        return [self.assignment[f] for f in self.pattern.functions]

    def component_ids(self) -> FrozenSet[int]:
        return frozenset(m.component_id for m in self.assignment.values())

    def peers(self, include_endpoints: bool = False) -> List[int]:
        out = [self.assignment[f].peer for f in self.pattern.functions]
        if include_endpoints:
            out = [self.source_peer] + out + [self.dest_peer]
        # preserve order, drop duplicates
        seen: Dict[int, None] = {}
        for p in out:
            seen.setdefault(p)
        return list(seen)

    def uses_peer(self, peer: int) -> bool:
        return any(m.peer == peer for m in self.assignment.values())

    def uses_component(self, component_id: int) -> bool:
        return any(m.component_id == component_id for m in self.assignment.values())

    def signature(self) -> Tuple[FrozenSet[Tuple[str, str]], FrozenSet[Tuple[str, int]]]:
        """Identity for deduplication: pattern edges + assignment."""
        return (
            self.pattern.edges,
            frozenset((f, m.component_id) for f, m in self.assignment.items()),
        )

    def overlap(self, other: "ServiceGraph") -> int:
        """Number of common service components (backup-selection criterion)."""
        return len(self.component_ids() & other.component_ids())

    # ------------------------------------------------------------------
    # bandwidth along links
    # ------------------------------------------------------------------
    @cached_property
    def _flow_bandwidth(self) -> Dict[str, Tuple[float, float]]:
        """fn → (input_rate, output_rate), worst case over converging branches."""
        rates: Dict[str, Tuple[float, float]] = {}
        for fn in self.pattern.topological_order():
            preds = self.pattern.predecessors(fn)
            if preds:
                in_rate = max(rates[p][1] for p in preds)
            else:
                in_rate = self.base_bandwidth
            out_rate = in_rate * self.assignment[fn].bandwidth_factor
            rates[fn] = (in_rate, out_rate)
        return rates

    def service_links(self) -> List[ServiceLink]:
        """All service links, head (sender→sources) to tail (sinks→receiver)."""
        links: List[ServiceLink] = []
        rates = self._flow_bandwidth
        for fn in self.pattern.sources():
            links.append(
                ServiceLink(None, fn, self.source_peer, self.assignment[fn].peer, rates[fn][0])
            )
        for a, b in sorted(self.pattern.edges):
            links.append(
                ServiceLink(a, b, self.assignment[a].peer, self.assignment[b].peer, rates[a][1])
            )
        for fn in self.pattern.sinks():
            links.append(
                ServiceLink(fn, None, self.assignment[fn].peer, self.dest_peer, rates[fn][1])
            )
        return links

    # ------------------------------------------------------------------
    # branch paths & QoS
    # ------------------------------------------------------------------
    def branch_paths(self) -> List[List[int]]:
        """Peer-level branch paths including the virtual endpoints."""
        out = []
        for branch in self.pattern.branches():
            peers = [self.source_peer] + [self.assignment[f].peer for f in branch]
            peers.append(self.dest_peer)
            out.append(peers)
        return out

    def branch_qos(self, overlay: Overlay, branch: Sequence[str]) -> QoSVector:
        """Additive QoS along one branch: link delays/losses + component Qp."""
        metrics = {"delay": 0.0, "loss": 0.0}
        hops = [self.source_peer] + [self.assignment[f].peer for f in branch] + [self.dest_peer]
        for u, v in zip(hops, hops[1:]):
            if u != v:
                metrics["delay"] += overlay.latency(u, v)
                metrics["loss"] += overlay.path_loss_add(u, v)
        for f in branch:
            qp = self.assignment[f].qp.values
            metrics["delay"] += qp.get("delay", 0.0)
            metrics["loss"] += qp.get("loss", 0.0)
        return QoSVector(metrics)

    def end_to_end_qos(self, overlay: Overlay) -> QoSVector:
        """Metric-wise maximum over branch paths (the worst branch rules)."""
        result: Optional[QoSVector] = None
        for branch in self.pattern.branches():
            q = self.branch_qos(overlay, branch)
            result = q if result is None else result.elementwise_max(q)
        assert result is not None  # validated non-empty pattern
        return result

    # ------------------------------------------------------------------
    # failure probability
    # ------------------------------------------------------------------
    def failure_probability(self, peer_failure: Callable[[int], float]) -> float:
        """1 − Π(1 − pᵢ) over hosting peers, assuming independence (§5.1 fn. 6)."""
        survive = 1.0
        for peer in {m.peer for m in self.assignment.values()}:
            p = peer_failure(peer)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"peer {peer} failure probability {p} out of range")
            survive *= 1.0 - p
        return 1.0 - survive

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{f}→s{self.assignment[f].component_id}@v{self.assignment[f].peer}"
            for f in self.pattern.topological_order()
        )
        return f"ServiceGraph({self.source_peer}⇒[{parts}]⇒{self.dest_peer})"
