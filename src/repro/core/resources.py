"""End-system resources, link bandwidth, and soft-state allocation.

The paper's resource model: each service component needs a vector ``R``
of end-system resources (CPU, memory) on its host peer and a bandwidth
``b_ℓ`` on each service link, admitted against current availability.
During probing, peers perform **soft resource allocation** (§4.1 Step
2.1): resources are tentatively reserved so concurrent probes cannot
doubly admit the same capacity, and the reservation evaporates after a
timeout unless confirmed by the session-setup ack.

:class:`ResourcePool` is the single authority for both peer resources and
overlay-link bandwidth.  Allocations are grouped under a *token* (a probe
id or session id) so a whole probed path can be confirmed or cancelled
atomically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..topology.overlay import Overlay

__all__ = ["ResourceVector", "InsufficientResources", "ResourcePool", "DEFAULT_RESOURCE_TYPES"]

DEFAULT_RESOURCE_TYPES: Tuple[str, ...] = ("cpu", "memory")

Link = Tuple[int, int]  # canonically ordered overlay edge


class InsufficientResources(RuntimeError):
    """Raised when a firm allocation is attempted beyond availability."""


@dataclass(frozen=True)
class ResourceVector:
    """Non-negative requirements/capacities over named end-system resources."""

    values: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", dict(self.values))
        for k, v in self.values.items():
            if v < 0 or math.isnan(v):
                raise ValueError(f"resource {k!r} must be >= 0, got {v}")

    @classmethod
    def _from_trusted(cls, values: Dict[str, float]) -> "ResourceVector":
        """Construct from an already-validated plain dict, skipping the
        defensive copy + validation of ``__post_init__`` (arithmetic on
        validated vectors cannot produce negatives or NaNs)."""
        self = object.__new__(cls)
        object.__setattr__(self, "values", values)
        return self

    @classmethod
    def zero(cls, types: Iterable[str] = DEFAULT_RESOURCE_TYPES) -> "ResourceVector":
        return cls._from_trusted({t: 0.0 for t in types})

    def get(self, rtype: str) -> float:
        return self.values.get(rtype, 0.0)

    def types(self) -> Tuple[str, ...]:
        return tuple(sorted(self.values))

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        keys = set(self.values) | set(other.values)
        return ResourceVector._from_trusted(
            {k: self.values.get(k, 0.0) + other.values.get(k, 0.0) for k in keys}
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        keys = set(self.values) | set(other.values)
        out = {k: self.values.get(k, 0.0) - other.values.get(k, 0.0) for k in keys}
        if any(v < -1e-9 for v in out.values()):
            raise ValueError(f"subtraction would go negative: {out}")
        return ResourceVector._from_trusted({k: max(v, 0.0) for k, v in out.items()})

    def fits_within(self, capacity: "ResourceVector") -> bool:
        return all(capacity.get(k) + 1e-12 >= v for k, v in self.values.items())

    def as_dict(self) -> Dict[str, float]:
        return dict(self.values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.4g}" for k, v in sorted(self.values.items()))
        return f"ResourceVector({inner})"


@dataclass
class _Claim:
    """One token's reservations on peers and links."""

    peers: List[Tuple[int, ResourceVector]] = field(default_factory=list)
    links: List[Tuple[Link, float]] = field(default_factory=list)
    soft: bool = True


class ResourcePool:
    """Tracks availability of peer resources and overlay link bandwidth.

    Availability seen by admission = capacity − firm − soft.  ``confirm``
    turns a token's soft claims firm (session established); ``cancel``
    releases soft claims (probe lost the selection or timed out);
    ``release`` frees firm claims (session teardown / peer failure).
    """

    def __init__(
        self,
        overlay: Overlay,
        peer_capacity: Mapping[int, ResourceVector],
        resource_types: Tuple[str, ...] = DEFAULT_RESOURCE_TYPES,
        vectorized: bool = True,
    ) -> None:
        self.overlay = overlay
        self.resource_types = resource_types
        peers = set(overlay.peers())
        missing = peers - set(peer_capacity)
        if missing:
            raise ValueError(f"no capacity given for peers: {sorted(missing)[:5]}...")
        self._capacity: Dict[int, ResourceVector] = dict(peer_capacity)
        self._used: Dict[int, ResourceVector] = {
            p: ResourceVector.zero(resource_types) for p in peers
        }
        # link bandwidth lives in flat arrays indexed by the router's
        # canonical link order, so path bottleneck queries are one NumPy
        # gather + min instead of a per-link dict-lookup loop
        router = overlay.router
        if hasattr(router, "link_order"):
            link_order = list(router.link_order)
        else:  # duck-typed router without an index (tests)
            link_order = [tuple(sorted((u, v))) for u, v in overlay.graph.edges]
        self._link_order: List[Link] = link_order
        self._link_index: Dict[Link, int] = {l: i for i, l in enumerate(link_order)}
        self._link_cap = np.array(
            [float(overlay.graph.edges[l]["bandwidth"]) for l in link_order],
            dtype=float,
        )
        self._link_used_arr = np.zeros(len(link_order), dtype=float)
        # plain-float mirrors of the arrays: single-path bottleneck
        # queries loop over 2-5 links, where Python floats beat NumPy
        # scalar boxing.  Kept in sync at the two write sites
        # (soft_allocate_path / _free); batch queries use the arrays.
        self._link_cap_list: List[float] = self._link_cap.tolist()
        self._link_used_list: List[float] = [0.0] * len(link_order)
        self._vectorized = vectorized and hasattr(router, "link_indices")
        self._claims: Dict[Hashable, _Claim] = {}

    def clone_empty(self, overlay: Optional[Overlay] = None) -> "ResourcePool":
        """A fresh pool over the same overlay and capacities, zero claims.

        Live distributed peers each own one: identical ground capacity,
        independent allocation state (``ResourceVector`` is frozen, so
        sharing the capacity values is safe).  ``overlay`` substitutes a
        different *view* of the same topology (a peer's
        :class:`~repro.net.measurement.MeasuredOverlayView`); it must
        expose the same peers and canonical link order so the capacity
        arrays stay aligned."""
        return ResourcePool(
            overlay if overlay is not None else self.overlay,
            dict(self._capacity),
            resource_types=self.resource_types,
            vectorized=self._vectorized,
        )

    def set_vectorized(self, enabled: bool) -> None:
        """Toggle the NumPy bandwidth fast path (A/B comparison runs)."""
        self._vectorized = enabled and hasattr(self.overlay.router, "link_indices")

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def capacity(self, peer: int) -> ResourceVector:
        return self._capacity[peer]

    def available(self, peer: int) -> ResourceVector:
        cap, used = self._capacity[peer], self._used[peer]
        return ResourceVector._from_trusted(
            {t: max(cap.get(t) - used.get(t), 0.0) for t in cap.types()}
        )

    def available_amount(self, peer: int, rtype: str) -> float:
        """One resource type's availability, without building a vector —
        the ψλ evaluation loop calls this per (component, type)."""
        return max(
            self._capacity[peer].get(rtype) - self._used[peer].get(rtype), 0.0
        )

    def link_capacity(self, link: Link) -> float:
        return float(self._link_cap[self._link_index[tuple(sorted(link))]])

    def link_available(self, link: Link) -> float:
        i = self._link_index[tuple(sorted(link))]
        return max(float(self._link_cap[i] - self._link_used_arr[i]), 0.0)

    def path_available_bandwidth(self, src: int, dst: int) -> float:
        """Bottleneck available bandwidth on the routed overlay path ``℘``."""
        if src == dst:
            return math.inf
        if self._vectorized:
            # paths are short (2-5 links): a scalar loop over the cached
            # index list beats a NumPy gather + reduction here
            idx = self.overlay.router.link_index_list(src, dst)
            if not idx:
                return math.inf
            cap, used = self._link_cap_list, self._link_used_list
            low = math.inf
            for i in idx:
                v = cap[i] - used[i]
                if v < low:
                    low = v
            return low if low > 0.0 else 0.0
        links = self.overlay.router.links(src, dst)
        if not links:
            return math.inf
        return min(self.link_available(l) for l in links)

    def path_available_bandwidth_batch(self, src: int, dsts: Sequence[int]) -> np.ndarray:
        """Bottleneck available bandwidth from ``src`` to each of ``dsts``.

        The batched form of :meth:`path_available_bandwidth` BCP's
        candidate scoring uses: availability is materialised once and
        each path reduces over its cached link-index array."""
        if self._vectorized:
            cat, offsets, positions = self.overlay.router.batch_link_indices(
                src, tuple(dsts)
            )
            out = np.full(len(dsts), math.inf)
            if cat.size:
                avail = self._link_cap[cat] - self._link_used_arr[cat]
                out[positions] = np.maximum(
                    np.minimum.reduceat(avail, offsets), 0.0
                )
            return out
        out = np.empty(len(dsts), dtype=float)
        for k, dst in enumerate(dsts):
            out[k] = self.path_available_bandwidth(src, dst)
        return out

    def can_host(self, peer: int, req: ResourceVector) -> bool:
        cap, used = self._capacity[peer], self._used[peer]
        return all(
            max(cap.get(k) - used.get(k), 0.0) + 1e-12 >= v
            for k, v in req.values.items()
        )

    def can_carry(self, src: int, dst: int, bandwidth: float) -> bool:
        return self.path_available_bandwidth(src, dst) + 1e-12 >= bandwidth

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def soft_allocate_peer(self, token: Hashable, peer: int, req: ResourceVector) -> bool:
        """Tentatively reserve ``req`` on ``peer``; False if it does not fit."""
        if not self.can_host(peer, req):
            return False
        self._used[peer] = self._used[peer] + req
        self._claims.setdefault(token, _Claim()).peers.append((peer, req))
        return True

    def soft_allocate_path(
        self, token: Hashable, src: int, dst: int, bandwidth: float
    ) -> bool:
        """Tentatively reserve bandwidth on every link of the overlay path."""
        if src == dst or bandwidth <= 0:
            return True
        links = self.overlay.router.links(src, dst)
        if self._vectorized:
            idx = self.overlay.router.link_index_list(src, dst)
            cap, used = self._link_cap_list, self._link_used_list
            if any(max(cap[i] - used[i], 0.0) + 1e-12 < bandwidth for i in idx):
                return False
            for i in idx:
                self._bump_link_used(i, bandwidth)
        else:
            if any(self.link_available(l) + 1e-12 < bandwidth for l in links):
                return False
            for l in links:
                self._bump_link_used(self._link_index[l], bandwidth)
        claim = self._claims.setdefault(token, _Claim())
        claim.links.extend((l, bandwidth) for l in links)
        return True

    def confirm(self, token: Hashable) -> None:
        """Make a token's soft reservations firm (session admitted)."""
        claim = self._claims.get(token)
        if claim is None:
            raise KeyError(f"unknown allocation token {token!r}")
        claim.soft = False

    def cancel(self, token: Hashable) -> None:
        """Drop a soft reservation (timeout / not selected).  Idempotent."""
        claim = self._claims.pop(token, None)
        if claim is None:
            return
        if not claim.soft:
            # firm claims must be released explicitly; put it back
            self._claims[token] = claim
            raise InsufficientResources(f"token {token!r} is firm; use release()")
        self._free(claim)

    def release(self, token: Hashable) -> None:
        """Free a firm reservation (session ended).  Idempotent."""
        claim = self._claims.pop(token, None)
        if claim is None:
            return
        self._free(claim)

    def transfer(self, old_token: Hashable, new_token: Hashable) -> None:
        """Re-key a claim (probe token becomes session token on setup)."""
        if old_token not in self._claims:
            raise KeyError(f"unknown allocation token {old_token!r}")
        if new_token in self._claims:
            raise KeyError(f"token {new_token!r} already exists")
        self._claims[new_token] = self._claims.pop(old_token)

    def _bump_link_used(self, i: int, delta: float) -> None:
        """Adjust one link's reserved bandwidth in array + float mirror."""
        v = self._link_used_list[i] + delta
        self._link_used_list[i] = v
        self._link_used_arr[i] = v

    def _free(self, claim: _Claim) -> None:
        for peer, req in claim.peers:
            self._used[peer] = self._used[peer] - req
        for link, bw in claim.links:
            i = self._link_index[link]
            v = max(self._link_used_list[i] - bw, 0.0)
            self._link_used_list[i] = v
            self._link_used_arr[i] = v

    # ------------------------------------------------------------------
    # introspection / invariants
    # ------------------------------------------------------------------
    def active_tokens(self) -> List[Hashable]:
        return list(self._claims)

    def has_token(self, token: Hashable) -> bool:
        return token in self._claims

    def claim_usage(
        self, token: Hashable
    ) -> Tuple[List[Tuple[int, Dict[str, float]]], List[Tuple[Link, float]]]:
        """One token's reservations as plain data:
        ``([(peer, {rtype: amount}), ...], [(link, bandwidth), ...])``.

        The live distributed runtime ships these to the composing
        destination (piggybacked on the probe wave) so ψλ can be
        evaluated against wave-wide load without reading remote pools.
        Raises ``KeyError`` for an unknown (e.g. already expired) token.
        """
        claim = self._claims[token]
        peers = [
            (p, {t: req.get(t) for t in req.types() if req.get(t)})
            for p, req in claim.peers
        ]
        return peers, list(claim.links)

    def utilisation(self, peer: int, rtype: str) -> float:
        cap = self._capacity[peer].get(rtype)
        return self._used[peer].get(rtype) / cap if cap > 0 else 0.0

    def check_invariants(self) -> None:
        """Assert no over-allocation anywhere (used by property tests)."""
        for p, cap in self._capacity.items():
            used = self._used[p]
            for t in cap.types():
                if used.get(t) > cap.get(t) + 1e-6:
                    raise AssertionError(
                        f"peer {p} over-allocated {t}: {used.get(t)} > {cap.get(t)}"
                    )
        for l, i in self._link_index.items():
            used, cap = self._link_used_arr[i], self._link_cap[i]
            if used > cap + 1e-6:
                raise AssertionError(f"link {l} over-allocated: {used} > {cap}")
