"""End-system resources, link bandwidth, and soft-state allocation.

The paper's resource model: each service component needs a vector ``R``
of end-system resources (CPU, memory) on its host peer and a bandwidth
``b_ℓ`` on each service link, admitted against current availability.
During probing, peers perform **soft resource allocation** (§4.1 Step
2.1): resources are tentatively reserved so concurrent probes cannot
doubly admit the same capacity, and the reservation evaporates after a
timeout unless confirmed by the session-setup ack.

:class:`ResourcePool` is the single authority for both peer resources and
overlay-link bandwidth.  Allocations are grouped under a *token* (a probe
id or session id) so a whole probed path can be confirmed or cancelled
atomically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from ..topology.overlay import Overlay

__all__ = ["ResourceVector", "InsufficientResources", "ResourcePool", "DEFAULT_RESOURCE_TYPES"]

DEFAULT_RESOURCE_TYPES: Tuple[str, ...] = ("cpu", "memory")

Link = Tuple[int, int]  # canonically ordered overlay edge


class InsufficientResources(RuntimeError):
    """Raised when a firm allocation is attempted beyond availability."""


@dataclass(frozen=True)
class ResourceVector:
    """Non-negative requirements/capacities over named end-system resources."""

    values: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", dict(self.values))
        for k, v in self.values.items():
            if v < 0 or math.isnan(v):
                raise ValueError(f"resource {k!r} must be >= 0, got {v}")

    @classmethod
    def zero(cls, types: Iterable[str] = DEFAULT_RESOURCE_TYPES) -> "ResourceVector":
        return cls({t: 0.0 for t in types})

    def get(self, rtype: str) -> float:
        return self.values.get(rtype, 0.0)

    def types(self) -> Tuple[str, ...]:
        return tuple(sorted(self.values))

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        keys = set(self.values) | set(other.values)
        return ResourceVector(
            {k: self.values.get(k, 0.0) + other.values.get(k, 0.0) for k in keys}
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        keys = set(self.values) | set(other.values)
        out = {k: self.values.get(k, 0.0) - other.values.get(k, 0.0) for k in keys}
        if any(v < -1e-9 for v in out.values()):
            raise ValueError(f"subtraction would go negative: {out}")
        return ResourceVector({k: max(v, 0.0) for k, v in out.items()})

    def fits_within(self, capacity: "ResourceVector") -> bool:
        return all(capacity.get(k) + 1e-12 >= v for k, v in self.values.items())

    def as_dict(self) -> Dict[str, float]:
        return dict(self.values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.4g}" for k, v in sorted(self.values.items()))
        return f"ResourceVector({inner})"


@dataclass
class _Claim:
    """One token's reservations on peers and links."""

    peers: List[Tuple[int, ResourceVector]] = field(default_factory=list)
    links: List[Tuple[Link, float]] = field(default_factory=list)
    soft: bool = True


class ResourcePool:
    """Tracks availability of peer resources and overlay link bandwidth.

    Availability seen by admission = capacity − firm − soft.  ``confirm``
    turns a token's soft claims firm (session established); ``cancel``
    releases soft claims (probe lost the selection or timed out);
    ``release`` frees firm claims (session teardown / peer failure).
    """

    def __init__(
        self,
        overlay: Overlay,
        peer_capacity: Mapping[int, ResourceVector],
        resource_types: Tuple[str, ...] = DEFAULT_RESOURCE_TYPES,
    ) -> None:
        self.overlay = overlay
        self.resource_types = resource_types
        peers = set(overlay.peers())
        missing = peers - set(peer_capacity)
        if missing:
            raise ValueError(f"no capacity given for peers: {sorted(missing)[:5]}...")
        self._capacity: Dict[int, ResourceVector] = dict(peer_capacity)
        self._used: Dict[int, ResourceVector] = {
            p: ResourceVector.zero(resource_types) for p in peers
        }
        self._link_capacity: Dict[Link, float] = {
            tuple(sorted((u, v))): float(d["bandwidth"])
            for u, v, d in overlay.graph.edges(data=True)
        }
        self._link_used: Dict[Link, float] = {l: 0.0 for l in self._link_capacity}
        self._claims: Dict[Hashable, _Claim] = {}

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def capacity(self, peer: int) -> ResourceVector:
        return self._capacity[peer]

    def available(self, peer: int) -> ResourceVector:
        cap, used = self._capacity[peer], self._used[peer]
        return ResourceVector(
            {t: max(cap.get(t) - used.get(t), 0.0) for t in cap.types()}
        )

    def link_capacity(self, link: Link) -> float:
        return self._link_capacity[tuple(sorted(link))]

    def link_available(self, link: Link) -> float:
        l = tuple(sorted(link))
        return max(self._link_capacity[l] - self._link_used[l], 0.0)

    def path_available_bandwidth(self, src: int, dst: int) -> float:
        """Bottleneck available bandwidth on the routed overlay path ``℘``."""
        if src == dst:
            return math.inf
        links = self.overlay.router.links(src, dst)
        if not links:
            return math.inf
        return min(self.link_available(l) for l in links)

    def can_host(self, peer: int, req: ResourceVector) -> bool:
        return req.fits_within(self.available(peer))

    def can_carry(self, src: int, dst: int, bandwidth: float) -> bool:
        return self.path_available_bandwidth(src, dst) + 1e-12 >= bandwidth

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def soft_allocate_peer(self, token: Hashable, peer: int, req: ResourceVector) -> bool:
        """Tentatively reserve ``req`` on ``peer``; False if it does not fit."""
        if not self.can_host(peer, req):
            return False
        self._used[peer] = self._used[peer] + req
        self._claims.setdefault(token, _Claim()).peers.append((peer, req))
        return True

    def soft_allocate_path(
        self, token: Hashable, src: int, dst: int, bandwidth: float
    ) -> bool:
        """Tentatively reserve bandwidth on every link of the overlay path."""
        if src == dst or bandwidth <= 0:
            return True
        links = self.overlay.router.links(src, dst)
        if any(self.link_available(l) + 1e-12 < bandwidth for l in links):
            return False
        claim = self._claims.setdefault(token, _Claim())
        for l in links:
            self._link_used[l] += bandwidth
            claim.links.append((l, bandwidth))
        return True

    def confirm(self, token: Hashable) -> None:
        """Make a token's soft reservations firm (session admitted)."""
        claim = self._claims.get(token)
        if claim is None:
            raise KeyError(f"unknown allocation token {token!r}")
        claim.soft = False

    def cancel(self, token: Hashable) -> None:
        """Drop a soft reservation (timeout / not selected).  Idempotent."""
        claim = self._claims.pop(token, None)
        if claim is None:
            return
        if not claim.soft:
            # firm claims must be released explicitly; put it back
            self._claims[token] = claim
            raise InsufficientResources(f"token {token!r} is firm; use release()")
        self._free(claim)

    def release(self, token: Hashable) -> None:
        """Free a firm reservation (session ended).  Idempotent."""
        claim = self._claims.pop(token, None)
        if claim is None:
            return
        self._free(claim)

    def transfer(self, old_token: Hashable, new_token: Hashable) -> None:
        """Re-key a claim (probe token becomes session token on setup)."""
        if old_token not in self._claims:
            raise KeyError(f"unknown allocation token {old_token!r}")
        if new_token in self._claims:
            raise KeyError(f"token {new_token!r} already exists")
        self._claims[new_token] = self._claims.pop(old_token)

    def _free(self, claim: _Claim) -> None:
        for peer, req in claim.peers:
            self._used[peer] = self._used[peer] - req
        for link, bw in claim.links:
            self._link_used[link] = max(self._link_used[link] - bw, 0.0)

    # ------------------------------------------------------------------
    # introspection / invariants
    # ------------------------------------------------------------------
    def active_tokens(self) -> List[Hashable]:
        return list(self._claims)

    def has_token(self, token: Hashable) -> bool:
        return token in self._claims

    def utilisation(self, peer: int, rtype: str) -> float:
        cap = self._capacity[peer].get(rtype)
        return self._used[peer].get(rtype) / cap if cap > 0 else 0.0

    def check_invariants(self) -> None:
        """Assert no over-allocation anywhere (used by property tests)."""
        for p, cap in self._capacity.items():
            used = self._used[p]
            for t in cap.types():
                if used.get(t) > cap.get(t) + 1e-6:
                    raise AssertionError(
                        f"peer {p} over-allocated {t}: {used.get(t)} > {cap.get(t)}"
                    )
        for l, cap in self._link_capacity.items():
            if self._link_used[l] > cap + 1e-6:
                raise AssertionError(f"link {l} over-allocated: {self._link_used[l]} > {cap}")
