"""Composite service requests (paper §2.1).

A request names a function graph, the user's QoS requirements ``Qreq``,
the stream endpoints (application sender and receiver peers), the base
stream bandwidth (a resource requirement, per the paper's footnote), a
failure-probability requirement ``F^req`` (consumed by the backup-count
formula, Eq. 2) and a session duration for workload bookkeeping.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from .function_graph import FunctionGraph
from .qos import QoSRequirement

__all__ = ["CompositeRequest"]

_request_ids = itertools.count(1)


@dataclass(frozen=True)
class CompositeRequest:
    """Everything the BCP source needs to start probing."""

    request_id: int
    function_graph: FunctionGraph
    qos: QoSRequirement
    source_peer: int
    dest_peer: int
    bandwidth: float = 0.5  # Mbps entering the first function
    failure_req: float = 0.05  # F^req: tolerated session failure probability
    duration: float = 600.0  # expected session length (virtual seconds)
    priority: float = 1.0  # may scale the probing budget (§4.1 Step 1)

    def __post_init__(self) -> None:
        if self.source_peer == self.dest_peer:
            raise ValueError("source and destination peers must differ")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if not 0.0 < self.failure_req <= 1.0:
            raise ValueError(f"failure_req must be in (0, 1], got {self.failure_req}")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    @classmethod
    def create(
        cls,
        function_graph: FunctionGraph,
        qos: QoSRequirement,
        source_peer: int,
        dest_peer: int,
        bandwidth: float = 0.5,
        failure_req: float = 0.05,
        duration: float = 600.0,
        priority: float = 1.0,
        request_id: Optional[int] = None,
    ) -> "CompositeRequest":
        return cls(
            request_id=next(_request_ids) if request_id is None else request_id,
            function_graph=function_graph,
            qos=qos,
            source_peer=source_peer,
            dest_peer=dest_peer,
            bandwidth=bandwidth,
            failure_req=failure_req,
            duration=duration,
            priority=priority,
        )

    @property
    def n_functions(self) -> int:
        return len(self.function_graph)
