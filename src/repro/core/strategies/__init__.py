"""Pluggable composition strategies.

One request, many ways to compose it.  Every algorithm implements
:class:`~repro.core.strategies.base.CompositionStrategy` over a shared
:class:`~repro.core.strategies.base.StrategyContext` and registers under
a short name, selectable from the sim harness
(``SpiderNet.use_composer``), the live cluster
(``ClusterConfig.composer``) and the CLI (``--composer``):

======================  ================================================
``bcp``                 the paper's bounded composition probing (§4);
                        the only strategy that runs distributed
``optimal``             unbounded flooding ground truth, now with
                        branch-and-bound pruning + a search-space guard
``random``              random functionally-qualified choice (§6.1)
``static``              fixed pre-defined component per function (§6.1)
``centralized``         global-view selection over periodically pushed
                        state (§6.1)
``backtrack``           pruned backtracking search: anytime
                        branch-and-bound with admissible QoS/ψλ bounds
``decompose``           topological-layer decomposition + per-segment
                        beams + exact boundary stitching
======================  ================================================
"""

from .backtracking import PrunedBacktrackingComposer
from .base import (
    BCPStrategy,
    CentralizedStrategy,
    CompositionStrategy,
    OptimalStrategy,
    RandomStrategy,
    StaticStrategy,
    StrategyContext,
    UnknownStrategyError,
    create_strategy,
    finalize_selection,
    get_strategy,
    register_strategy,
    strategy_names,
)
from .decomposition import DecompositionComposer
from .search import (
    Candidate,
    PatternState,
    SearchOutcome,
    prepare_candidates,
    search_compositions,
)

__all__ = [
    "CompositionStrategy",
    "StrategyContext",
    "UnknownStrategyError",
    "register_strategy",
    "create_strategy",
    "get_strategy",
    "strategy_names",
    "finalize_selection",
    "BCPStrategy",
    "OptimalStrategy",
    "RandomStrategy",
    "StaticStrategy",
    "CentralizedStrategy",
    "PrunedBacktrackingComposer",
    "DecompositionComposer",
    "Candidate",
    "PatternState",
    "SearchOutcome",
    "prepare_candidates",
    "search_compositions",
]
