"""Decomposition composition: partition large DAGs, compose per part,
stitch boundaries with a small backtracking pass.

The second large-graph strategy (community decomposition of composition
graphs, arXiv:1305.0187).  Function DAGs from real requests are wide but
shallow-coupled: most dependency edges connect adjacent topological
layers.  The composer exploits that:

1. **Partition** — functions are grouped into *segments* of consecutive
   topological layers (a layer never contains an internal edge, so
   layer-sorted order is a valid topological order), each at most
   ``partition_size`` functions; oversize layers are split.
2. **Per-segment composition** — each segment is composed independently
   by a beam search over its own candidate lists with NumPy-vectorized
   extension scoring (resource term + QoS pressure + intra-segment link
   delay), keeping the ``per_partition_k`` best sub-assignments.
3. **Stitch** — a depth-first backtracking pass walks the segments in
   order, choosing one precomputed option per segment; the shared
   :class:`~repro.core.strategies.search.PatternState` accounts boundary
   link cost/QoS *exactly* and prunes with the same admissible bounds as
   the backtracking strategy.  Complete graphs are re-evaluated exactly,
   so reported cost/QoS match §4.3 selection.

The search space collapses from Π Zᵢ (over all functions) to
Σ (segment beams) + Π Kⱼ (over segments) — polynomial in graph size for
fixed ``partition_size``/``per_partition_k`` — at the price of
optimality: only combinations of per-segment front-runners are explored.
A bounded full-search fallback covers the rare case where stitching the
front-runners finds nothing qualified.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...perf.counters import OpCounters
from ...perf.timers import PhaseTimer
from ..bcp import CompositionResult
from ..cost import CostWeights
from ..function_graph import FunctionGraph
from ..request import CompositeRequest
from .base import (
    CompositionStrategy,
    StrategyContext,
    finalize_selection,
    register_strategy,
)
from .search import (
    Candidate,
    PatternState,
    _complete_leaf,
    _Incumbent,
    _NodeLimit,
    prepare_candidates,
    search_compositions,
)

__all__ = ["DecompositionComposer"]


@dataclass
class _SegmentOption:
    """One precomputed sub-assignment for a segment, with its beam score."""

    assignment: Dict[str, Candidate]
    score: float


@dataclass
class _Partial:
    assignment: Dict[str, Candidate]
    score: float


def _layer_segments(pattern: FunctionGraph, partition_size: int) -> List[List[str]]:
    """Consecutive topological-layer segments of ≤ partition_size functions."""
    order = pattern.topological_order()
    depth: Dict[str, int] = {}
    for fn in order:
        preds = pattern.predecessors(fn)
        depth[fn] = 1 + max((depth[p] for p in preds), default=0)
    # stable layer sort: any edge strictly increases depth, so this is a
    # valid topological order and layers contain no internal edges
    index = {fn: i for i, fn in enumerate(order)}
    layered = sorted(order, key=lambda f: (depth[f], index[f]))
    layers: List[List[str]] = []
    for fn in layered:
        if layers and depth[layers[-1][-1]] == depth[fn]:
            layers[-1].append(fn)
        else:
            layers.append([fn])
    segments: List[List[str]] = []
    current: List[str] = []
    for layer in layers:
        while len(layer) > partition_size:  # oversize layer: split
            if current:
                segments.append(current)
                current = []
            segments.append(layer[:partition_size])
            layer = layer[partition_size:]
        if current and len(current) + len(layer) > partition_size:
            segments.append(current)
            current = []
        current.extend(layer)
    if current:
        segments.append(current)
    return segments


@register_strategy
class DecompositionComposer(CompositionStrategy):
    """Partition → compose per partition → stitch boundaries."""

    name = "decompose"

    def __init__(
        self,
        ctx: StrategyContext,
        partition_size: int = 6,
        per_partition_k: int = 8,
        beam_width: int = 24,
        stitch_node_limit: int = 50_000,
        fallback_node_limit: int = 50_000,
    ) -> None:
        super().__init__(ctx)
        if partition_size < 1:
            raise ValueError("partition_size must be >= 1")
        self.partition_size = partition_size
        self.per_partition_k = per_partition_k
        self.beam_width = max(beam_width, per_partition_k)
        self.stitch_node_limit = stitch_node_limit
        self.fallback_node_limit = fallback_node_limit

    # ------------------------------------------------------------------
    def compose(
        self,
        request: CompositeRequest,
        budget: Optional[int] = None,
        confirm: bool = True,
        now: Optional[float] = None,
    ) -> CompositionResult:
        ctx = self.ctx
        counters = OpCounters()
        timer = PhaseTimer()
        weights = ctx.cost_weights or CostWeights.uniform(ctx.pool.resource_types)
        objective = ctx.objective
        with timer.phase("candidates"):
            duplicates = ctx.duplicates(request)
            candidates = prepare_candidates(
                request.function_graph.functions,
                duplicates,
                ctx.pool,
                weights,
                ctx.alive_fn,
                objective,
                dominance=True,
                counters=counters,
            )
        incumbent = _Incumbent(objective, top_k=16)
        exhausted = True
        if candidates is not None:
            bounds = request.qos.bounds
            delay_pressure = 1.0 / bounds["delay"] if "delay" in bounds else 0.0
            loss_pressure = 1.0 / bounds["loss"] if "loss" in bounds else 0.0
            stitch_budget = [self.stitch_node_limit]
            for _, pattern in request.function_graph.composition_patterns(
                ctx.max_patterns
            ):
                segments = _layer_segments(pattern, self.partition_size)
                counters.incr("segments", len(segments))
                with timer.phase("segment_beam"):
                    options = [
                        self._segment_options(
                            pattern, seg, candidates, delay_pressure, loss_pressure,
                            counters,
                        )
                        for seg in segments
                    ]
                if any(not opts for opts in options):
                    counters.incr("pattern_no_options")
                    continue
                state = PatternState(
                    pattern, candidates, request, ctx.overlay, ctx.pool, weights,
                    counters,
                )
                try:
                    with timer.phase("stitch"):
                        self._stitch(
                            state, segments, options, 0, incumbent, objective,
                            stitch_budget, counters,
                        )
                except _NodeLimit:
                    exhausted = False
                    break
        if incumbent.best is None and candidates is not None:
            # front-runner combinations missed every qualified graph (or
            # the stitch budget ran dry): bounded exact search fallback
            counters.incr("fallback_search")
            with timer.phase("fallback"):
                fallback = search_compositions(
                    request,
                    duplicates,
                    ctx.overlay,
                    ctx.pool,
                    alive=ctx.alive_fn,
                    cost_weights=weights,
                    objective=objective,
                    max_patterns=ctx.max_patterns,
                    node_limit=self.fallback_node_limit,
                    counters=counters,
                )
            for cand in fallback.qualified:
                incumbent.offer(cand)
            exhausted = exhausted and fallback.exhausted
        from ..selection import SelectionOutcome

        selection = SelectionOutcome(
            best=incumbent.best,
            qualified=list(incumbent.qualified),
            n_candidates=counters["complete_graphs"],
        )
        result = finalize_selection(request, selection, ctx.pool, probes=0, confirm=confirm)
        if not exhausted and result.failure_reason == "no qualified service graph":
            result.failure_reason = "no qualified service graph within node limit"
        result.phases.update(timer.as_dict("wall_"))
        result.phases.update(counters.as_phases())
        return result

    # ------------------------------------------------------------------
    def _delays(self, src: int, peers: Sequence[int]) -> np.ndarray:
        router = getattr(self.ctx.overlay, "router", None)
        if router is not None and hasattr(router, "delays"):
            return np.asarray(router.delays(src, list(peers)), dtype=float)
        return np.array([self.ctx.overlay.latency(src, p) for p in peers], dtype=float)

    def _segment_options(
        self,
        pattern: FunctionGraph,
        segment: List[str],
        candidates: Dict[str, List[Candidate]],
        delay_pressure: float,
        loss_pressure: float,
        counters: OpCounters,
    ) -> List[_SegmentOption]:
        """Beam-compose one segment independently (vectorized scoring).

        The segment-local score ranks sub-assignments by their own ψλ
        resource terms plus dimensionless QoS pressure (Qp and
        intra-segment link delay relative to the requirement bounds);
        boundary links are priced later, exactly, by the stitch."""
        in_segment = set(segment)
        partials: List[_Partial] = [_Partial({}, 0.0)]
        for fn in segment:
            cands = candidates[fn]
            peers = [c.meta.peer for c in cands]
            res = np.array([c.res_term for c in cands])
            qp_delay = np.array([c.qp_delay for c in cands])
            qp_loss = np.array([c.qp_loss for c in cands])
            seg_preds = [p for p in pattern.predecessors(fn) if p in in_segment]
            scored: List[Tuple[float, int, int]] = []
            for pi, part in enumerate(partials):
                link = np.zeros(len(cands))
                mask = np.ones(len(cands), dtype=bool)
                for p in seg_preds:
                    pc = part.assignment[p]
                    link += self._delays(pc.meta.peer, peers)
                    mask &= np.array(
                        [
                            pc.meta.output_quality.compatible_with(c.meta.input_quality)
                            for c in cands
                        ]
                    )
                score = (
                    part.score
                    + res
                    + (qp_delay + link) * delay_pressure
                    + qp_loss * loss_pressure
                )
                for ci in np.nonzero(mask)[0]:
                    scored.append((float(score[ci]), pi, int(ci)))
            scored.sort()
            del scored[self.beam_width:]
            counters.incr("beam_partials", len(scored))
            partials = [
                _Partial({**partials[pi].assignment, fn: cands[ci]}, sc)
                for sc, pi, ci in scored
            ]
            if not partials:
                return []
        seen = set()
        options: List[_SegmentOption] = []
        for part in partials:
            key = tuple(part.assignment[f].meta.component_id for f in segment)
            if key in seen:
                continue
            seen.add(key)
            options.append(_SegmentOption(part.assignment, part.score))
            if len(options) >= self.per_partition_k:
                break
        return options

    def _stitch(
        self,
        state: PatternState,
        segments: List[List[str]],
        options: List[List[_SegmentOption]],
        depth: int,
        incumbent: _Incumbent,
        objective: str,
        budget: List[int],
        counters: OpCounters,
    ) -> None:
        if depth == len(segments):
            _complete_leaf(state, incumbent, counters)
            return
        for option in options[depth]:
            if budget[0] == 0:
                raise _NodeLimit
            if budget[0] > 0:
                budget[0] -= 1
            counters.incr("stitch_expansions")
            undos = []
            feasible = True
            for fn in segments[depth]:
                undo = state.assign(fn, option.assignment[fn])
                if undo is None:
                    feasible = False
                    break
                undos.append(undo)
                if not state.qos_feasible():
                    counters.incr("pruned_qos")
                    feasible = False
                    break
                if objective == "cost":
                    if state.cost_lower_bound() > incumbent.best_cost():
                        counters.incr("pruned_bound")
                        feasible = False
                        break
                elif state.delay_lower_bound() > incumbent.best_delay():
                    counters.incr("pruned_bound")
                    feasible = False
                    break
            if feasible:
                self._stitch(
                    state, segments, options, depth + 1, incumbent, objective,
                    budget, counters,
                )
            for undo in reversed(undos):
                state.unassign(undo)
