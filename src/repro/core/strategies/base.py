"""The composition-strategy interface and its name registry.

Composition used to be hard-wired to BCP; the baselines of §6.1 lived in
``core/baselines.py`` behind ad-hoc constructors.  This module puts one
abstract interface in front of all of them — ``compose(request)`` on a
shared :class:`StrategyContext` — plus a name registry so the sim
harness, the live daemons, and the CLI (``--composer``) can select an
algorithm by string.

Strategies declare ``requires_global_view``: BCP composes from purely
local state plus probing, so it runs in every substrate including the
distributed live cluster; the search/baseline strategies read the whole
registry and resource pool and therefore only run where that global view
exists (simulation and shared-state live mode).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, ClassVar, Dict, List, Optional, Tuple, Type

from ...discovery.metadata import ServiceMetadata
from ...discovery.registry import ServiceRegistry
from ...perf.counters import OpCounters
from ...sim.metrics import MessageLedger
from ...topology.overlay import Overlay
from ..bcp import BCP, BCPConfig, CompositionResult
from ..cost import CostWeights
from ..request import CompositeRequest
from ..resources import ResourcePool
from ..selection import SelectionOutcome, admit_graph

__all__ = [
    "CompositionStrategy",
    "StrategyContext",
    "UnknownStrategyError",
    "register_strategy",
    "create_strategy",
    "get_strategy",
    "strategy_names",
    "finalize_selection",
    "BCPStrategy",
    "OptimalStrategy",
    "RandomStrategy",
    "StaticStrategy",
    "CentralizedStrategy",
]


class UnknownStrategyError(ValueError):
    """Raised when a strategy name does not resolve in the registry."""


@dataclass
class StrategyContext:
    """Everything a composer may bind to: one overlay/pool/registry triple.

    ``config`` carries the shared tunables (cost weights, pattern cap,
    ranking objective) so every strategy ranks candidates exactly like
    BCP's destination step.  ``bcp`` is the probing engine to delegate to
    when the BCP strategy is selected — passing the already-built engine
    keeps it bit-identical to direct calls (same rng, caches, ledger).
    """

    overlay: Overlay
    pool: ResourcePool
    registry: ServiceRegistry
    ledger: Optional[MessageLedger] = None
    config: Optional[BCPConfig] = None
    alive: Optional[Callable[[int], bool]] = None
    peer_failure: Optional[Callable[[int], float]] = None
    rng: object = None
    trust: object = None
    bcp: Optional[BCP] = None

    @classmethod
    def from_spidernet(cls, net) -> "StrategyContext":
        """Bind to a built :class:`~repro.core.composition.SpiderNet`."""
        return cls(
            overlay=net.overlay,
            pool=net.pool,
            registry=net.registry,
            ledger=net.ledger,
            config=net.bcp.config,
            alive=net.bcp.alive,
            peer_failure=net.bcp.peer_failure,
            rng=net.bcp.rng,
            trust=net.bcp.trust,
            bcp=net.bcp,
        )

    # -- derived views ---------------------------------------------------
    @property
    def effective_config(self) -> BCPConfig:
        return self.config or BCPConfig()

    @property
    def cost_weights(self) -> Optional[CostWeights]:
        return self.effective_config.cost_weights

    @property
    def objective(self) -> str:
        return self.effective_config.objective

    @property
    def max_patterns(self) -> int:
        return self.effective_config.max_patterns

    @property
    def alive_fn(self) -> Callable[[int], bool]:
        return self.alive or (lambda peer: True)

    def ensure_ledger(self) -> MessageLedger:
        if self.ledger is None:
            self.ledger = MessageLedger()
        return self.ledger

    def ensure_bcp(self) -> BCP:
        if self.bcp is None:
            self.bcp = BCP(
                self.overlay,
                self.pool,
                self.registry,
                config=self.config,
                ledger=self.ledger,
                peer_failure=self.peer_failure,
                alive=self.alive,
                rng=self.rng,
                trust=self.trust,
            )
        return self.bcp

    def duplicates(self, request: CompositeRequest) -> Dict[str, List[ServiceMetadata]]:
        return {
            fn: self.registry.duplicates(fn)
            for fn in request.function_graph.functions
        }


class CompositionStrategy(ABC):
    """One composition algorithm bound to a :class:`StrategyContext`."""

    name: ClassVar[str]
    requires_global_view: ClassVar[bool] = True

    def __init__(self, ctx: StrategyContext) -> None:
        self.ctx = ctx

    @classmethod
    def from_context(cls, ctx: StrategyContext, **options) -> "CompositionStrategy":
        return cls(ctx, **options)

    @abstractmethod
    def compose(
        self,
        request: CompositeRequest,
        budget: Optional[int] = None,
        confirm: bool = True,
        now: Optional[float] = None,
    ) -> CompositionResult:
        """Compose one request.  ``budget``/``now`` only matter to BCP
        (probing budget β, virtual clock); global-view strategies accept
        and ignore them so every caller can treat strategies uniformly."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


_REGISTRY: Dict[str, Type[CompositionStrategy]] = {}


def register_strategy(cls: Type[CompositionStrategy]) -> Type[CompositionStrategy]:
    """Class decorator: add a strategy to the by-name registry."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError(f"{cls.__name__} must define a non-empty `name`")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"strategy name {name!r} already registered by {existing.__name__}")
    _REGISTRY[name] = cls
    return cls


def strategy_names() -> List[str]:
    return sorted(_REGISTRY)


def get_strategy(name: str) -> Type[CompositionStrategy]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownStrategyError(
            f"unknown composition strategy {name!r}; known: {', '.join(strategy_names())}"
        ) from None


def create_strategy(name: str, ctx: StrategyContext, **options) -> CompositionStrategy:
    return get_strategy(name).from_context(ctx, **options)


def finalize_selection(
    request: CompositeRequest,
    selection: SelectionOutcome,
    pool: ResourcePool,
    probes: int,
    confirm: bool,
) -> CompositionResult:
    """Selection outcome → CompositionResult, with §4.3 admission.

    Same semantics as BCP's destination step and the baselines: the
    winning graph's resources are firmly admitted (all-or-nothing) under
    a session token when ``confirm``; a shortfall turns success into an
    admission failure.
    """
    result = CompositionResult(request=request, success=False, probes_sent=probes)
    result.qualified = selection.qualified
    result.candidates_examined = selection.n_candidates
    if selection.best is None:
        result.failure_reason = "no qualified service graph"
        return result
    token = (request.request_id, "session")
    if confirm:
        if not admit_graph(selection.best.graph, pool, token):
            result.failure_reason = "admission failed at setup"
            return result
        result.session_tokens = [token]
    result.best = selection.best.graph
    result.best_qos = selection.best.qos
    result.best_cost = selection.best.cost
    result.success = True
    return result


# ----------------------------------------------------------------------
# adapters: BCP and the §6.1 baselines behind the common interface
# ----------------------------------------------------------------------


@register_strategy
class BCPStrategy(CompositionStrategy):
    """The paper's bounded composition probing, via the shared engine.

    Delegates verbatim to the context's :class:`BCP` instance, so results
    are bit-identical to calling ``bcp.compose`` directly; the only
    addition is the ``ops_*`` profiling keys."""

    name = "bcp"
    requires_global_view = False

    def compose(self, request, budget=None, confirm=True, now=None) -> CompositionResult:
        result = self.ctx.ensure_bcp().compose(
            request, budget=budget, confirm=confirm, now=now
        )
        counters = OpCounters()
        counters.incr("probes_sent", result.probes_sent)
        counters.incr("arrivals", result.candidates_examined)
        result.phases.update(counters.as_phases())
        return result


class _BaselineStrategy(CompositionStrategy):
    """Shared adapter plumbing for the §6.1 baseline composers."""

    composer_kwargs: ClassVar[Dict[str, object]] = {}

    def __init__(self, ctx: StrategyContext, **options) -> None:
        super().__init__(ctx)
        self._composer = self._build_composer(ctx, **options)

    def _build_composer(self, ctx: StrategyContext, **options):
        raise NotImplementedError

    @staticmethod
    def _base_kwargs(ctx: StrategyContext) -> Dict[str, object]:
        return dict(
            ledger=ctx.ensure_ledger(),
            alive=ctx.alive_fn,
            cost_weights=ctx.cost_weights,
            max_patterns=ctx.max_patterns,
            objective=ctx.objective,
        )

    def compose(self, request, budget=None, confirm=True, now=None) -> CompositionResult:
        return self._composer.compose(request, confirm=confirm)


@register_strategy
class OptimalStrategy(_BaselineStrategy):
    """Unbounded flooding with lower-bound pruning (ground truth)."""

    name = "optimal"

    def _build_composer(self, ctx, **options):
        from ..baselines import OptimalComposer

        return OptimalComposer(
            ctx.overlay, ctx.pool, ctx.registry, **self._base_kwargs(ctx), **options
        )


@register_strategy
class RandomStrategy(_BaselineStrategy):
    """Uniformly random functionally-qualified choice."""

    name = "random"

    def _build_composer(self, ctx, **options):
        from ..baselines import RandomComposer

        options.setdefault("rng", ctx.rng)
        return RandomComposer(
            ctx.overlay, ctx.pool, ctx.registry, **self._base_kwargs(ctx), **options
        )


@register_strategy
class StaticStrategy(_BaselineStrategy):
    """Fixed pre-defined component per function (first deployed)."""

    name = "static"

    def _build_composer(self, ctx, **options):
        from ..baselines import StaticComposer

        options.setdefault("rng", ctx.rng)
        return StaticComposer(
            ctx.overlay, ctx.pool, ctx.registry, **self._base_kwargs(ctx), **options
        )


@register_strategy
class CentralizedStrategy(_BaselineStrategy):
    """Global-view selection over periodically refreshed cached state."""

    name = "centralized"

    def _build_composer(self, ctx, **options):
        from ..baselines import CentralizedComposer

        return CentralizedComposer(
            ctx.overlay, ctx.pool, ctx.registry, **self._base_kwargs(ctx), **options
        )

    def refresh(self) -> None:
        """Trigger one state-update round on the wrapped composer."""
        self._composer.refresh()
