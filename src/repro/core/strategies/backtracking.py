"""Pruned backtracking composition (branch-and-bound).

The first of the two large-graph strategies: a depth-first
branch-and-bound over per-function candidate lists (the shape of
backtracking QoS-aware service selection, arXiv:1402.1309), built on the
shared :mod:`~repro.core.strategies.search` engine — admissible QoS and
ψλ lower bounds, dominance pruning, and marginal-benefit candidate
ordering.

Unlike the rewritten ``OptimalComposer`` (which must run to proven
optimality or refuse), this strategy is *anytime*: ``node_limit`` caps
the number of partial-assignment expansions and the best incumbent found
within the cap is returned.  On graphs where BCP's probe budget starves
(hundreds of functions), the ordered DFS typically reaches a strong
incumbent within a few thousand expansions and the bounds close the rest
of the tree.
"""

from __future__ import annotations

from typing import Optional

from ...perf.counters import OpCounters
from ...perf.timers import PhaseTimer
from ..bcp import CompositionResult
from ..request import CompositeRequest
from .base import (
    CompositionStrategy,
    StrategyContext,
    finalize_selection,
    register_strategy,
)
from .search import search_compositions

__all__ = ["PrunedBacktrackingComposer"]


@register_strategy
class PrunedBacktrackingComposer(CompositionStrategy):
    """Branch-and-bound over candidate lists with admissible bounds."""

    name = "backtrack"

    def __init__(
        self,
        ctx: StrategyContext,
        node_limit: Optional[int] = 200_000,
        dominance: bool = True,
        top_k: int = 16,
    ) -> None:
        super().__init__(ctx)
        self.node_limit = node_limit
        self.dominance = dominance
        self.top_k = top_k

    def compose(
        self,
        request: CompositeRequest,
        budget: Optional[int] = None,
        confirm: bool = True,
        now: Optional[float] = None,
    ) -> CompositionResult:
        ctx = self.ctx
        counters = OpCounters()
        timer = PhaseTimer()
        with timer.phase("candidates"):
            duplicates = ctx.duplicates(request)
        with timer.phase("search"):
            outcome = search_compositions(
                request,
                duplicates,
                ctx.overlay,
                ctx.pool,
                alive=ctx.alive_fn,
                cost_weights=ctx.cost_weights,
                objective=ctx.objective,
                max_patterns=ctx.max_patterns,
                dominance=self.dominance,
                node_limit=self.node_limit,
                top_k=self.top_k,
                counters=counters,
            )
        result = finalize_selection(
            request, outcome.selection(), ctx.pool, probes=0, confirm=confirm
        )
        if not outcome.exhausted and result.failure_reason == "no qualified service graph":
            result.failure_reason = "no qualified service graph within node limit"
        result.phases.update(timer.as_dict("wall_"))
        result.phases.update(counters.as_phases())
        return result
