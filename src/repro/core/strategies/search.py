"""Exact branch-and-bound search over candidate service graphs.

The shared machinery behind the global-view composers: the pruned
backtracking strategy, the decomposition stitcher, and the rewritten
``OptimalComposer`` all drive the same :class:`PatternState` — a partial
assignment of components to functions, extended in topological order,
with incremental exact cost/QoS accounting and admissible lower bounds.

Three pruning rules, all value-preserving (they never cut a subtree that
could contain a strictly better solution):

* **QoS lower bound** — each branch path accumulates its exact prefix
  QoS (links + component Qp); the remaining functions contribute at
  least the sum of their per-function minimum Qp plus the cheapest
  last-hop to the destination.  If prefix + remainder already violates
  ``Qreq``, every completion violates it too.
* **Cost lower bound** — the assigned prefix contributes its exact ψλ
  terms (mirroring :func:`~repro.core.cost.psi_cost` term by term); the
  unassigned functions contribute at least their minimum resource term.
  Link terms of unassigned edges are bounded by 0, keeping the bound
  admissible.  Subtrees whose bound exceeds the incumbent are cut.
* **Dominance** — within a (peer, input-quality, output-quality) group,
  a candidate that is no better on any ψλ-relevant dimension (resource
  term, Qp delay, Qp loss, bandwidth factor) than another is discarded
  up front: the dominating candidate can replace it in any graph without
  making cost, QoS, or feasibility worse.

Complete assignments are re-evaluated *exactly* via ``ServiceGraph`` +
``psi_cost`` + ``end_to_end_qos``, so reported values are identical to
what :func:`~repro.core.selection.select_composition` would compute for
the same graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ...discovery.metadata import ServiceMetadata
from ...perf.counters import OpCounters
from ...topology.overlay import Overlay
from ..cost import CostWeights, psi_cost
from ..function_graph import FunctionGraph
from ..request import CompositeRequest
from ..resources import ResourcePool
from ..selection import CandidateGraph, SelectionOutcome
from ..service_graph import ServiceGraph

__all__ = [
    "Candidate",
    "SearchOutcome",
    "PatternState",
    "prepare_candidates",
    "search_compositions",
]

_EPS = 1e-9


@dataclass(frozen=True)
class Candidate:
    """One duplicated component with its precomputed ψλ-relevant terms."""

    meta: ServiceMetadata
    res_term: float  # Σ wᵢ·rᵢ/raᵢ on the host peer (finite by construction)
    qp_delay: float
    qp_loss: float


@dataclass
class SearchOutcome:
    """What a bounded search learned (shape mirrors SelectionOutcome)."""

    best: Optional[CandidateGraph]
    qualified: List[CandidateGraph] = field(default_factory=list)
    n_complete: int = 0  # complete service graphs evaluated
    counters: OpCounters = field(default_factory=OpCounters)
    exhausted: bool = True  # False when the node limit stopped the search

    def selection(self) -> SelectionOutcome:
        return SelectionOutcome(
            best=self.best, qualified=self.qualified, n_candidates=self.n_complete
        )


def _res_term(meta: ServiceMetadata, pool: ResourcePool, weights: CostWeights) -> float:
    total = 0.0
    for rtype, w in weights.resource_weights.items():
        demand = meta.resources.get(rtype)
        if w == 0.0 or demand == 0.0:
            continue
        a = pool.available_amount(meta.peer, rtype)
        if a <= _EPS:
            return math.inf
        total += w * demand / a
    return total


def prepare_candidates(
    functions: Sequence[str],
    duplicates: Dict[str, List[ServiceMetadata]],
    pool: ResourcePool,
    weights: CostWeights,
    alive: Callable[[int], bool],
    objective: str = "cost",
    dominance: bool = True,
    counters: Optional[OpCounters] = None,
) -> Optional[Dict[str, List[Candidate]]]:
    """Per-function candidate lists: filtered, dominance-pruned, ordered.

    Returns ``None`` when some function has no viable candidate (no
    duplicate alive, or every host's resources exhausted).  Ordering is
    by marginal benefit for the requested objective — cheapest resource
    term first under ``"cost"``, fastest Qp first under ``"delay"`` —
    so depth-first search reaches strong incumbents early.
    """
    out: Dict[str, List[Candidate]] = {}
    for fn in functions:
        cands: List[Candidate] = []
        for meta in duplicates.get(fn, []):
            if not alive(meta.peer):
                continue
            term = _res_term(meta, pool, weights)
            if math.isinf(term):
                # psi_cost of any graph using this component is inf and
                # select_composition never qualifies inf-cost graphs
                if counters is not None:
                    counters.incr("pruned_exhausted_host")
                continue
            qp = meta.qp.values
            cands.append(
                Candidate(meta, term, qp.get("delay", 0.0), qp.get("loss", 0.0))
            )
        if dominance:
            cands = _dominance_filter(cands, counters)
        if not cands:
            return None
        if objective == "delay":
            cands.sort(key=lambda c: (c.qp_delay, c.res_term, c.meta.component_id))
        else:
            cands.sort(key=lambda c: (c.res_term, c.qp_delay, c.meta.component_id))
        out[fn] = cands
    return out


def _dominance_filter(
    cands: List[Candidate], counters: Optional[OpCounters]
) -> List[Candidate]:
    """Drop candidates dominated within their (peer, quality) group.

    Dominance is exact-safe only within a group sharing the host peer and
    both quality specs: swapping in the dominator then changes no link
    endpoints, no quality compatibility, and no ψλ/QoS term for the
    worse.  Lower ``bandwidth_factor`` is included because it can only
    shrink every downstream link's bandwidth demand.
    """
    groups: Dict[Tuple, List[Candidate]] = {}
    for c in cands:
        key = (c.meta.peer, c.meta.input_quality, c.meta.output_quality)
        groups.setdefault(key, []).append(c)
    kept: List[Candidate] = []
    for group in groups.values():
        group.sort(
            key=lambda c: (
                c.res_term,
                c.qp_delay,
                c.qp_loss,
                c.meta.bandwidth_factor,
                c.meta.component_id,
            )
        )
        front: List[Candidate] = []
        for c in group:
            dominated = any(
                f.res_term <= c.res_term
                and f.qp_delay <= c.qp_delay
                and f.qp_loss <= c.qp_loss
                and f.meta.bandwidth_factor <= c.meta.bandwidth_factor
                for f in front
            )
            if dominated:
                if counters is not None:
                    counters.incr("pruned_dominated")
            else:
                front.append(c)
        kept.extend(front)
    kept.sort(key=lambda c: c.meta.component_id)
    return kept


class _NodeLimit(Exception):
    """Internal: the expansion budget ran out mid-search."""


@dataclass
class _Undo:
    fn: str
    branch_updates: List[Tuple[int, float, float, int]]  # (b, d_delay, d_loss, prev_next)
    cost_delta: float
    rem_res_delta: float


class PatternState:
    """A partial component assignment over one composition pattern.

    Functions are assigned strictly in topological order (callers may
    assign one at a time, or whole consecutive segments).  The state
    keeps, incrementally:

    * exact ψλ terms of the assigned prefix (component resource terms +
      every service link whose bandwidth is already determined),
    * exact per-branch QoS prefixes (link delay/loss + component Qp),
    * admissible remainders (suffix minima of Qp per branch + cheapest
      final hop; minimum resource term per unassigned function).

    ``assign`` returns an undo token or ``None`` when the extension is
    immediately infeasible (quality mismatch or exhausted link).
    """

    def __init__(
        self,
        pattern: FunctionGraph,
        candidates: Dict[str, List[Candidate]],
        request: CompositeRequest,
        overlay: Overlay,
        pool: ResourcePool,
        weights: CostWeights,
        counters: OpCounters,
    ) -> None:
        self.pattern = pattern
        self.candidates = candidates
        self.request = request
        self.overlay = overlay
        self.pool = pool
        self.weights = weights
        self.counters = counters
        self.order: List[str] = pattern.topological_order()
        self.branches: List[Tuple[str, ...]] = pattern.branches()
        self.sources = set(pattern.sources())
        self.sinks = set(pattern.sinks())
        # fn -> [(branch index, position)]
        self.membership: Dict[str, List[Tuple[int, int]]] = {f: [] for f in self.order}
        for b, branch in enumerate(self.branches):
            for j, fn in enumerate(branch):
                self.membership[fn].append((b, j))
        self._build_bounds()
        # mutable search state
        self.assignment: Dict[str, Candidate] = {}
        self.rates: Dict[str, Tuple[float, float]] = {}
        self.acc_delay = [0.0] * len(self.branches)
        self.acc_loss = [0.0] * len(self.branches)
        self.next_pos = [0] * len(self.branches)
        self.partial_cost = 0.0
        self.rem_res = sum(min(c.res_term for c in candidates[f]) for f in self.order)

    # ------------------------------------------------------------------
    def _build_bounds(self) -> None:
        dest = self.request.dest_peer
        min_qp_delay = {
            f: min(c.qp_delay for c in self.candidates[f]) for f in self.order
        }
        min_qp_loss = {
            f: min(c.qp_loss for c in self.candidates[f]) for f in self.order
        }
        self.min_res = {
            f: min(c.res_term for c in self.candidates[f]) for f in self.order
        }
        # cheapest possible last hop (sink candidate -> destination)
        dest_min_delay: Dict[str, float] = {}
        dest_min_loss: Dict[str, float] = {}
        for fn in self.sinks:
            dd, dl = math.inf, math.inf
            for c in self.candidates[fn]:
                if c.meta.peer == dest:
                    dd, dl = 0.0, 0.0
                    break
                dd = min(dd, self.overlay.latency(c.meta.peer, dest))
                dl = min(dl, self.overlay.path_loss_add(c.meta.peer, dest))
            dest_min_delay[fn] = dd
            dest_min_loss[fn] = dl
        # suffix_delay[b][j] = admissible QoS still to come once positions
        # < j are assigned (suffix Qp minima + the cheapest final hop)
        self.suffix_delay: List[List[float]] = []
        self.suffix_loss: List[List[float]] = []
        for branch in self.branches:
            sd = [0.0] * (len(branch) + 1)
            sl = [0.0] * (len(branch) + 1)
            sd[len(branch)] = 0.0
            sl[len(branch)] = 0.0
            for j in range(len(branch) - 1, -1, -1):
                sd[j] = sd[j + 1] + min_qp_delay[branch[j]]
                sl[j] = sl[j + 1] + min_qp_loss[branch[j]]
            last = branch[-1]
            # the final hop is still ahead until the last position is done
            for j in range(len(branch)):
                sd[j] += dest_min_delay[last]
                sl[j] += dest_min_loss[last]
            self.suffix_delay.append(sd)
            self.suffix_loss.append(sl)
        bounds = self.request.qos.bounds
        self.delay_bound = bounds.get("delay", math.inf)
        self.loss_bound = bounds.get("loss", math.inf)

    # ------------------------------------------------------------------
    def _link_term(self, src: int, dst: int, bandwidth: float) -> float:
        """One service link's ψλ term, mirroring psi_cost exactly."""
        if src == dst or bandwidth <= 0 or self.weights.bandwidth_weight <= 0.0:
            return 0.0
        ba = self.pool.path_available_bandwidth(src, dst)
        if ba <= _EPS:
            return math.inf
        if math.isinf(ba):
            return 0.0
        return self.weights.bandwidth_weight * bandwidth / ba

    def assign(self, fn: str, cand: Candidate) -> Optional[_Undo]:
        """Extend the prefix with ``fn -> cand``; None if infeasible."""
        self.counters.incr("expansions")
        pattern = self.pattern
        meta = cand.meta
        preds = pattern.predecessors(fn)
        for p in preds:
            if not self.assignment[p].meta.output_quality.compatible_with(
                meta.input_quality
            ):
                self.counters.incr("pruned_quality")
                return None
        if preds:
            in_rate = max(self.rates[p][1] for p in preds)
        else:
            in_rate = self.request.bandwidth
        out_rate = in_rate * meta.bandwidth_factor
        cost_delta = cand.res_term
        for p in preds:
            term = self._link_term(self.assignment[p].meta.peer, meta.peer, self.rates[p][1])
            if math.isinf(term):
                self.counters.incr("pruned_exhausted_link")
                return None
            cost_delta += term
        if fn in self.sources:
            term = self._link_term(self.request.source_peer, meta.peer, in_rate)
            if math.isinf(term):
                self.counters.incr("pruned_exhausted_link")
                return None
            cost_delta += term
        if fn in self.sinks:
            term = self._link_term(meta.peer, self.request.dest_peer, out_rate)
            if math.isinf(term):
                self.counters.incr("pruned_exhausted_link")
                return None
            cost_delta += term
        # commit
        undo = _Undo(fn, [], cost_delta, self.min_res[fn])
        self.assignment[fn] = cand
        self.rates[fn] = (in_rate, out_rate)
        self.partial_cost += cost_delta
        self.rem_res -= self.min_res[fn]
        src_peer, dest_peer = self.request.source_peer, self.request.dest_peer
        for b, j in self.membership[fn]:
            branch = self.branches[b]
            prev_peer = src_peer if j == 0 else self.assignment[branch[j - 1]].meta.peer
            d_delay = cand.qp_delay
            d_loss = cand.qp_loss
            if prev_peer != meta.peer:
                d_delay += self.overlay.latency(prev_peer, meta.peer)
                d_loss += self.overlay.path_loss_add(prev_peer, meta.peer)
            if j == len(branch) - 1 and meta.peer != dest_peer:
                d_delay += self.overlay.latency(meta.peer, dest_peer)
                d_loss += self.overlay.path_loss_add(meta.peer, dest_peer)
            undo.branch_updates.append((b, d_delay, d_loss, self.next_pos[b]))
            self.acc_delay[b] += d_delay
            self.acc_loss[b] += d_loss
            self.next_pos[b] = j + 1
        return undo

    def unassign(self, undo: _Undo) -> None:
        for b, d_delay, d_loss, prev_next in undo.branch_updates:
            self.acc_delay[b] -= d_delay
            self.acc_loss[b] -= d_loss
            self.next_pos[b] = prev_next
        self.partial_cost -= undo.cost_delta
        self.rem_res += undo.rem_res_delta
        del self.rates[undo.fn]
        del self.assignment[undo.fn]

    # ------------------------------------------------------------------
    def qos_feasible(self) -> bool:
        """Can any completion of the prefix still satisfy ``Qreq``?"""
        for b in range(len(self.branches)):
            j = self.next_pos[b]
            if self.acc_delay[b] + self.suffix_delay[b][j] > self.delay_bound:
                return False
            if self.acc_loss[b] + self.suffix_loss[b][j] > self.loss_bound:
                return False
        return True

    def cost_lower_bound(self) -> float:
        return self.partial_cost + self.rem_res

    def delay_lower_bound(self) -> float:
        worst = 0.0
        for b in range(len(self.branches)):
            lb = self.acc_delay[b] + self.suffix_delay[b][self.next_pos[b]]
            if lb > worst:
                worst = lb
        return worst

    def complete_graph(self) -> ServiceGraph:
        return ServiceGraph(
            pattern=self.pattern,
            assignment={f: c.meta for f, c in self.assignment.items()},
            source_peer=self.request.source_peer,
            dest_peer=self.request.dest_peer,
            base_bandwidth=self.request.bandwidth,
        )


class _Incumbent:
    """Best-so-far and top-K qualified graphs, ranked like §4.3 selection."""

    def __init__(self, objective: str, top_k: int) -> None:
        self.objective = objective
        self.top_k = top_k
        self.qualified: List[CandidateGraph] = []
        self._seen: Set[Tuple] = set()

    def _key(self, cand: CandidateGraph) -> Tuple[float, float]:
        delay = cand.qos.values.get("delay", 0.0)
        return (cand.cost, delay) if self.objective == "cost" else (delay, cand.cost)

    @property
    def best(self) -> Optional[CandidateGraph]:
        return self.qualified[0] if self.qualified else None

    def best_cost(self) -> float:
        return self.qualified[0].cost if self.qualified else math.inf

    def best_delay(self) -> float:
        if not self.qualified:
            return math.inf
        return self.qualified[0].qos.values.get("delay", 0.0)

    def offer(self, cand: CandidateGraph) -> None:
        sig = cand.graph.signature()
        if sig in self._seen:
            return
        self._seen.add(sig)
        self.qualified.append(cand)
        self.qualified.sort(key=self._key)
        if len(self.qualified) > self.top_k:
            dropped = self.qualified.pop()
            self._seen.discard(dropped.graph.signature())


def search_compositions(
    request: CompositeRequest,
    duplicates: Dict[str, List[ServiceMetadata]],
    overlay: Overlay,
    pool: ResourcePool,
    alive: Callable[[int], bool] = lambda p: True,
    cost_weights: Optional[CostWeights] = None,
    objective: str = "cost",
    max_patterns: int = 8,
    dominance: bool = True,
    node_limit: Optional[int] = None,
    top_k: int = 32,
    counters: Optional[OpCounters] = None,
) -> SearchOutcome:
    """Branch-and-bound over every composition pattern of the request.

    With ``node_limit=None`` the search is exhaustive-equivalent: it
    returns the same best value the full enumeration would (dominance and
    lower-bound cuts are value-preserving).  With a limit it becomes an
    anytime algorithm — the incumbent found so far is returned and
    ``exhausted`` is False.
    """
    if objective not in ("cost", "delay"):
        raise ValueError(f"unknown selection objective {objective!r}")
    weights = cost_weights or CostWeights.uniform(pool.resource_types)
    counters = counters if counters is not None else OpCounters()
    fg = request.function_graph
    candidates = prepare_candidates(
        fg.functions, duplicates, pool, weights, alive, objective, dominance, counters
    )
    incumbent = _Incumbent(objective, top_k)
    exhausted = True
    if candidates is not None:
        budget = [node_limit if node_limit is not None else -1]
        for _, pattern in fg.composition_patterns(max_patterns):
            state = PatternState(
                pattern, candidates, request, overlay, pool, weights, counters
            )
            try:
                _dfs(state, 0, incumbent, objective, budget, counters)
            except _NodeLimit:
                exhausted = False
                break
    best = incumbent.best
    return SearchOutcome(
        best=best,
        qualified=list(incumbent.qualified),
        n_complete=counters["complete_graphs"],
        counters=counters,
        exhausted=exhausted,
    )


def _dfs(
    state: PatternState,
    depth: int,
    incumbent: _Incumbent,
    objective: str,
    budget: List[int],
    counters: OpCounters,
) -> None:
    if depth == len(state.order):
        _complete_leaf(state, incumbent, counters)
        return
    fn = state.order[depth]
    for cand in state.candidates[fn]:
        if budget[0] == 0:
            raise _NodeLimit
        if budget[0] > 0:
            budget[0] -= 1
        undo = state.assign(fn, cand)
        if undo is None:
            continue
        try:
            if not state.qos_feasible():
                counters.incr("pruned_qos")
                continue
            if objective == "cost":
                if state.cost_lower_bound() > incumbent.best_cost():
                    counters.incr("pruned_bound")
                    continue
            else:
                if state.delay_lower_bound() > incumbent.best_delay():
                    counters.incr("pruned_bound")
                    continue
            _dfs(state, depth + 1, incumbent, objective, budget, counters)
        finally:
            state.unassign(undo)


def _complete_leaf(
    state: PatternState, incumbent: _Incumbent, counters: OpCounters
) -> None:
    counters.incr("complete_graphs")
    graph = state.complete_graph()
    qos = graph.end_to_end_qos(state.overlay)
    if not state.request.qos.satisfied_by(qos):
        counters.incr("complete_unqualified")
        return
    cost = psi_cost(graph, state.pool, state.weights)
    if math.isinf(cost):
        counters.incr("complete_unqualified")
        return
    incumbent.offer(CandidateGraph(graph=graph, qos=qos, cost=cost))
