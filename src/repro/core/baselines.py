"""The comparison algorithms of the paper's evaluation (§6.1).

* **optimal** — unbounded network flooding: exhaustively examines every
  candidate service graph (all composition patterns × all duplicate
  choices) and picks the best qualified one.  Its probe count is the
  denominator of the "probing-X" fractions (e.g. 17³ = 4913 in §6.2).
* **random** — picks a uniformly random functionally-qualified component
  per function; ignores QoS and resource requirements.
* **static** — picks a fixed, pre-defined component per function (the
  lowest component id — "first deployed"); also requirement-oblivious.
* **centralized** — the global-view scheme SpiderNet is compared against
  for overhead: every peer pushes periodic state updates to a central
  composer, which then runs the same exhaustive selection on its (maybe
  stale) cached view.  Message cost = N peers × update rate, accounted
  in the shared ledger under ``"state_update"``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..discovery.metadata import ServiceMetadata
from ..discovery.registry import ServiceRegistry
from ..sim.metrics import MessageLedger
from ..sim.rng import as_generator
from ..topology.overlay import Overlay
from .bcp import CompositionResult
from .cost import CostWeights, psi_cost
from .qos import QoSVector
from .request import CompositeRequest
from .resources import ResourcePool, ResourceVector
from .selection import (
    CandidateGraph,
    SelectionOutcome,
    admit_graph,
    select_composition,
)
from .service_graph import ServiceGraph

__all__ = [
    "admit_graph",
    "enumerate_candidates",
    "optimal_probe_count",
    "SearchSpaceExceeded",
    "OptimalComposer",
    "RandomComposer",
    "StaticComposer",
    "CentralizedComposer",
]


class SearchSpaceExceeded(ValueError):
    """The optimal composer refused a request beyond its size guard."""


def enumerate_candidates(
    request: CompositeRequest,
    duplicates: Dict[str, List[ServiceMetadata]],
    overlay: Overlay,
    alive: Callable[[int], bool] = lambda p: True,
    max_patterns: int = 8,
    limit: Optional[int] = None,
) -> List[CandidateGraph]:
    """Every complete service graph over every composition pattern."""
    fg = request.function_graph
    out: List[CandidateGraph] = []
    seen: Set[Tuple] = set()
    for _, pattern in fg.composition_patterns(max_patterns):
        order = pattern.topological_order()
        pools = []
        for fn in order:
            comps = [c for c in duplicates.get(fn, []) if alive(c.peer)]
            if not comps:
                pools = None
                break
            pools.append(comps)
        if pools is None:
            continue
        for combo in itertools.product(*pools):
            assignment = dict(zip(order, combo))
            if not _quality_consistent(pattern, assignment):
                continue
            graph = ServiceGraph(
                pattern=pattern,
                assignment=assignment,
                source_peer=request.source_peer,
                dest_peer=request.dest_peer,
                base_bandwidth=request.bandwidth,
            )
            sig = graph.signature()
            if sig in seen:
                continue
            seen.add(sig)
            out.append(CandidateGraph(graph=graph, qos=graph.end_to_end_qos(overlay)))
            if limit is not None and len(out) >= limit:
                return out
    return out


def _quality_consistent(pattern, assignment: Dict[str, ServiceMetadata]) -> bool:
    for a, b in pattern.edges:
        if not assignment[a].output_quality.compatible_with(assignment[b].input_quality):
            return False
    return True


def optimal_probe_count(
    request: CompositeRequest,
    duplicates: Dict[str, List[ServiceMetadata]],
    max_patterns: int = 8,
) -> int:
    """Probes the unbounded flooding scheme needs: Σ over patterns of Π Zᵢ."""
    total = 0
    for _, pattern in request.function_graph.composition_patterns(max_patterns):
        prod = 1
        for fn in pattern.functions:
            prod *= max(len(duplicates.get(fn, [])), 0)
        total += prod
    return total




@dataclass
class _ComposerBase:
    """Shared plumbing for the global-knowledge composers."""

    overlay: Overlay
    pool: ResourcePool
    registry: ServiceRegistry
    ledger: MessageLedger = field(default_factory=MessageLedger)
    alive: Callable[[int], bool] = lambda p: True
    cost_weights: Optional[CostWeights] = None
    max_patterns: int = 8
    objective: str = "cost"  # destination ranking: "cost" (ψλ) or "delay"

    def _duplicates(self, request: CompositeRequest) -> Dict[str, List[ServiceMetadata]]:
        return {
            fn: self.registry.duplicates(fn)
            for fn in request.function_graph.functions
        }

    def _result(
        self,
        request: CompositeRequest,
        selection: SelectionOutcome,
        probes: int,
        confirm: bool,
    ) -> CompositionResult:
        result = CompositionResult(request=request, success=False, probes_sent=probes)
        result.qualified = selection.qualified
        result.candidates_examined = selection.n_candidates
        if selection.best is None:
            result.failure_reason = "no qualified service graph"
            return result
        token = (request.request_id, "session")
        if confirm:
            if not admit_graph(selection.best.graph, self.pool, token):
                result.failure_reason = "admission failed at setup"
                return result
            result.session_tokens = [token]
        result.best = selection.best.graph
        result.best_qos = selection.best.qos
        result.best_cost = selection.best.cost
        result.success = True
        return result


class OptimalComposer(_ComposerBase):
    """Unbounded flooding ground truth: provably best qualified graph.

    The *message accounting* is still exhaustive — the ledger is charged
    ``optimal_probe_count`` flood probes, the denominator of the paper's
    "probing-X" fractions — but the *evaluation* now runs through the
    exact branch-and-bound of :mod:`repro.core.strategies.search` instead
    of materialising every Π Zᵢ combination: lower-bound and dominance
    pruning are value-preserving, so the selected graph (and its
    cost/QoS) is identical to full enumeration while mid-size graphs
    that previously could not finish now do.

    ``max_search_space`` guards the raw combination count; beyond it the
    ground truth is declined with :class:`SearchSpaceExceeded` (use the
    ``backtrack``/``decompose`` strategies there — they are anytime, this
    class must prove optimality).
    """

    DEFAULT_MAX_SEARCH_SPACE = 10_000_000

    def __init__(self, *args, max_search_space: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.max_search_space = (
            self.DEFAULT_MAX_SEARCH_SPACE if max_search_space is None else max_search_space
        )
        self.last_counters = None  # OpCounters of the most recent compose

    def compose(self, request: CompositeRequest, confirm: bool = True) -> CompositionResult:
        from ..perf.counters import OpCounters
        from .strategies.search import search_compositions

        duplicates = self._duplicates(request)
        probes = optimal_probe_count(request, duplicates, self.max_patterns)
        if probes > self.max_search_space:
            raise SearchSpaceExceeded(
                f"optimal composition over {probes} candidate graphs exceeds the "
                f"size guard ({self.max_search_space}); raise max_search_space or "
                f"use an anytime strategy ('backtrack' or 'decompose') instead"
            )
        self.ledger.record("flood_probe", 256, probes)
        counters = OpCounters()
        outcome = search_compositions(
            request,
            duplicates,
            self.overlay,
            self.pool,
            alive=self.alive,
            cost_weights=self.cost_weights,
            objective=self.objective,
            max_patterns=self.max_patterns,
            node_limit=None,  # exhaustive-equivalent: run to proven optimality
            top_k=64,
            counters=counters,
        )
        self.last_counters = counters
        result = self._result(request, outcome.selection(), probes, confirm)
        result.phases.update(counters.as_phases())
        return result


class RandomComposer(_ComposerBase):
    """Random functionally-qualified choice; requirement-oblivious."""

    def __init__(self, *args, rng=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.rng = as_generator(rng)

    def compose(self, request: CompositeRequest, confirm: bool = True) -> CompositionResult:
        duplicates = self._duplicates(request)
        fg = request.function_graph
        assignment: Dict[str, ServiceMetadata] = {}
        for fn in fg.functions:
            comps = [c for c in duplicates.get(fn, []) if self.alive(c.peer)]
            if not comps:
                return CompositionResult(
                    request=request, success=False, failure_reason=f"no component for {fn}"
                )
            assignment[fn] = comps[int(self.rng.integers(0, len(comps)))]
        self.ledger.record("random_setup", 128, len(fg))
        return self._finish(request, assignment, confirm)

    def _finish(
        self, request: CompositeRequest, assignment: Dict[str, ServiceMetadata], confirm: bool
    ) -> CompositionResult:
        graph = ServiceGraph(
            pattern=request.function_graph,
            assignment=assignment,
            source_peer=request.source_peer,
            dest_peer=request.dest_peer,
            base_bandwidth=request.bandwidth,
        )
        qos = graph.end_to_end_qos(self.overlay)
        result = CompositionResult(request=request, success=False, probes_sent=len(assignment))
        result.best = graph
        result.best_qos = qos
        # success requires function, resource AND QoS satisfaction — the
        # requirement-oblivious choice may well fail these (that is the point)
        if not request.qos.satisfied_by(qos):
            result.failure_reason = "QoS requirement violated"
            return result
        token = (request.request_id, "session")
        if not admit_graph(graph, self.pool, token):
            result.failure_reason = "insufficient resources"
            return result
        if confirm:
            result.session_tokens = [token]
        else:
            self.pool.release(token)
        result.best_cost = psi_cost(graph, self.pool, self.cost_weights)
        result.success = True
        return result


class StaticComposer(RandomComposer):
    """Pre-defined component per function: the lowest component id."""

    def compose(self, request: CompositeRequest, confirm: bool = True) -> CompositionResult:
        duplicates = self._duplicates(request)
        assignment: Dict[str, ServiceMetadata] = {}
        for fn in request.function_graph.functions:
            comps = self.registry.duplicates(fn, include_down=True)
            if not comps:
                return CompositionResult(
                    request=request, success=False, failure_reason=f"no component for {fn}"
                )
            static_choice = min(comps, key=lambda c: c.component_id)
            if not self.alive(static_choice.peer):
                # the pre-defined component's host is down: the static
                # scheme has no fallback, the request simply fails
                return CompositionResult(
                    request=request,
                    success=False,
                    failure_reason=f"static component for {fn} is down",
                )
            assignment[fn] = static_choice
        self.ledger.record("static_setup", 128, len(assignment))
        return self._finish(request, assignment, confirm)


class CentralizedComposer(_ComposerBase):
    """Global-view composition over periodically refreshed cached state.

    ``refresh()`` models one update round.  Two dissemination models:

    * ``"global-view"`` (default, the scheme §6.1 compares against):
      every peer maintains the global view, because any peer may act as
      a composition source — so each peer's state update must reach all
      N−1 other peers, costing N·(N−1) message deliveries per round
      (application-level multicast lower bound).  This is what makes
      periodic maintenance "more than one order of magnitude" costlier
      than on-demand probing.
    * ``"server"`` — a single directory server: N messages per round
      (every peer uploads once).  Cheaper, but reintroduces the central
      infrastructure P2P systems exclude; provided for comparison.

    ``compose`` selects on the *cached* snapshot — between refreshes the
    view is stale, which is precisely the imprecision the paper argues
    periodic global-state maintenance suffers from — but admission is
    then performed against live state (a session either fits or fails).
    """

    def __init__(
        self,
        *args,
        dissemination: str = "global-view",
        max_search_space: Optional[int] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if dissemination not in ("global-view", "server"):
            raise ValueError(f"unknown dissemination model {dissemination!r}")
        self.dissemination = dissemination
        self.max_search_space = (
            OptimalComposer.DEFAULT_MAX_SEARCH_SPACE
            if max_search_space is None
            else max_search_space
        )
        self._cached_available: Dict[int, ResourceVector] = {}
        self.refreshes = 0

    def refresh(self) -> None:
        """One global state-update round (messages into the ledger)."""
        peers = self.overlay.peers()
        for p in peers:
            self._cached_available[p] = self.pool.available(p)
        n = len(peers)
        msgs = n * (n - 1) if self.dissemination == "global-view" else n
        self.ledger.record("state_update", 512, msgs)
        self.refreshes += 1

    def compose(self, request: CompositeRequest, confirm: bool = True) -> CompositionResult:
        if not self._cached_available:
            self.refresh()
        duplicates = self._duplicates(request)
        combos = optimal_probe_count(request, duplicates, self.max_patterns)
        if combos > self.max_search_space:
            raise SearchSpaceExceeded(
                f"centralized composition over {combos} candidate graphs exceeds "
                f"the size guard ({self.max_search_space}); raise max_search_space "
                f"or use an anytime strategy ('backtrack' or 'decompose') instead"
            )
        candidates = enumerate_candidates(
            request, duplicates, self.overlay, self.alive, self.max_patterns
        )
        # rank on the cached view: filter by Qreq, order by a ψ-like cost
        # computed against cached availability
        qualified: List[CandidateGraph] = []
        for cand in candidates:
            if not request.qos.satisfied_by(cand.qos):
                continue
            cand.cost = self._cached_cost(cand.graph)
            if math.isfinite(cand.cost):
                qualified.append(cand)
        qualified.sort(key=lambda c: (c.cost, c.qos.values.get("delay", 0.0)))
        selection = SelectionOutcome(
            best=qualified[0] if qualified else None,
            qualified=qualified,
            n_candidates=len(candidates),
        )
        self.ledger.record("centralized_setup", 128, len(request.function_graph))
        return self._result(request, selection, probes=0, confirm=confirm)

    def _cached_cost(self, graph: ServiceGraph) -> float:
        weights = self.cost_weights or CostWeights.uniform(self.pool.resource_types)
        total = 0.0
        for meta in graph.components():
            avail = self._cached_available.get(meta.peer)
            if avail is None:
                return math.inf
            for rtype, w in weights.resource_weights.items():
                demand = meta.resources.get(rtype)
                if w == 0.0 or demand == 0.0:
                    continue
                a = avail.get(rtype)
                if a <= 1e-9:
                    return math.inf
                total += w * demand / a
        # link bandwidth is read live even in centralized schemes (edge
        # routers report utilisation); keep the same term as psi_cost
        for link in graph.service_links():
            if link.src_peer == link.dst_peer or link.bandwidth <= 0:
                continue
            ba = self.pool.path_available_bandwidth(link.src_peer, link.dst_peer)
            if ba <= 1e-9:
                return math.inf
            if not math.isinf(ba):
                total += weights.bandwidth_weight * link.bandwidth / ba
        return total
