"""The load-balancing cost aggregation function ψλ (paper Eq. 1).

    ψλ = Σ_{sⱼ/vⱼ ∈ λ} Σ_{i=1..n} wᵢ · rᵢ^{sⱼ}/raᵢ^{vⱼ}
         + w_{n+1} · Σ_{ℓⱼ/℘ⱼ ∈ λ} b_{ℓⱼ}/ba_{℘ⱼ}

Each component's resource demand is divided by the *current availability*
on its host peer; each service link's bandwidth demand by the available
bottleneck bandwidth of its overlay path.  Smaller ψλ ⇒ the service
graph's demands sit further below the available capacity ⇒ better load
balancing — the destination picks the qualified graph with minimum ψλ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from .resources import ResourcePool
from .service_graph import ServiceGraph

__all__ = ["CostWeights", "psi_cost"]


@dataclass(frozen=True)
class CostWeights:
    """The wᵢ of Eq. 1: one weight per end-system resource type plus one
    for bandwidth; must be non-negative and sum to 1."""

    resource_weights: Mapping[str, float]
    bandwidth_weight: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "resource_weights", dict(self.resource_weights))
        weights = list(self.resource_weights.values()) + [self.bandwidth_weight]
        if any(w < 0 for w in weights):
            raise ValueError(f"negative weight in {weights}")
        total = sum(weights)
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            raise ValueError(f"weights must sum to 1, got {total}")

    @classmethod
    def uniform(cls, resource_types: Tuple[str, ...] = ("cpu", "memory")) -> "CostWeights":
        n = len(resource_types) + 1
        return cls({t: 1.0 / n for t in resource_types}, 1.0 / n)


def psi_cost(
    graph: ServiceGraph,
    pool: ResourcePool,
    weights: Optional[CostWeights] = None,
    epsilon: float = 1e-9,
) -> float:
    """Evaluate ψλ against *current* availability in the resource pool.

    A component whose host has (near-)zero availability of a required
    resource, or a link whose path has no spare bandwidth, yields ``inf``
    — such a graph loses every comparison, which is the correct limit of
    Eq. 1 and what admission would reject anyway.
    """
    if weights is None:
        weights = CostWeights.uniform(pool.resource_types)
    total = 0.0
    res_weights = list(weights.resource_weights.items())
    for meta in graph.components():
        resources = meta.resources
        peer = meta.peer
        for rtype, w in res_weights:
            demand = resources.get(rtype)
            if w == 0.0 or demand == 0.0:
                continue
            a = pool.available_amount(peer, rtype)
            if a <= epsilon:
                return math.inf
            total += w * demand / a
    if weights.bandwidth_weight > 0.0:
        for link in graph.service_links():
            if link.src_peer == link.dst_peer or link.bandwidth <= 0:
                continue
            ba = pool.path_available_bandwidth(link.src_peer, link.dst_peer)
            if ba <= epsilon:
                return math.inf
            if math.isinf(ba):
                continue
            total += weights.bandwidth_weight * link.bandwidth / ba
    return total
