"""Proactive failure recovery: backup service graphs (paper §5).

Two decisions are made per session:

* **How many** backups (§5.1, Eq. 2):

      γ = min( ⌊ U · ( Σᵢ qᵢ^λ / qᵢ^req  +  F^λ / F^req ) ⌋ ,  C − 1 )

  where U bounds the backup count, C is the number of qualified graphs
  the initial BCP found, qᵢ^λ the current graph's QoS, F^λ its failure
  probability.  The closer the current graph sails to the user's
  requirements, the more backups are kept.

* **Which** backups (§5.2): for each component sᵢ of the current graph λ
  (bottleneck — highest failure probability — first), pick the qualified
  graph that does not include sᵢ but has the largest overlap with λ
  (disjoint enough to survive sᵢ's failure, overlapped enough to switch
  cheaply); then repeat for pairs, triples, ... of components until γ
  backups are chosen.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .qos import QoSRequirement, QoSVector
from .resources import ResourcePool
from .selection import CandidateGraph, admit_graph
from .service_graph import ServiceGraph

__all__ = ["backup_count", "select_backups", "bottleneck_order", "revalidate_backup"]


def backup_count(
    qos: QoSVector,
    qos_req: QoSRequirement,
    failure_prob: float,
    failure_req: float,
    n_qualified: int,
    upper_bound: float = 1.0,
) -> int:
    """Eq. 2: the adaptive number of backup service graphs γ.

    ``n_qualified`` is C (qualified graphs found by the initial BCP);
    ``upper_bound`` is the configurable U.  Returns 0 when the session
    has no alternatives (C ≤ 1).
    """
    if n_qualified < 1:
        raise ValueError(f"C must be >= 1, got {n_qualified}")
    if not 0.0 <= failure_prob <= 1.0:
        raise ValueError(f"failure probability out of range: {failure_prob}")
    if failure_req <= 0:
        raise ValueError("failure requirement must be positive")
    if upper_bound < 0:
        raise ValueError("upper bound U must be >= 0")
    load = qos_req.utilisation(qos) + failure_prob / failure_req
    gamma = int(math.floor(upper_bound * load))
    return max(0, min(gamma, n_qualified - 1))


def bottleneck_order(
    graph: ServiceGraph, peer_failure: Callable[[int], float]
) -> List[int]:
    """Component ids of ``graph`` sorted by host failure probability, desc.

    §5.2's final rule: under a tight backup budget, protect the
    bottleneck components (largest failure probabilities) first.
    """
    comps = graph.components()
    return [
        m.component_id
        for m in sorted(comps, key=lambda m: (-peer_failure(m.peer), m.component_id))
    ]


def revalidate_backup(
    cand: CandidateGraph,
    pool: ResourcePool,
    alive: Callable[[int], bool],
    token,
) -> bool:
    """Check a backup against *current* state at failover time.

    Backups are monitored, not reserved (§5): their ranking reflects the
    resource state at composition time, and other sessions may have
    claimed their capacity since.  A backup is usable now iff every host
    peer is still alive **and** the graph admits against the pool as it
    stands this instant — admission makes the firm claim under ``token``
    on success, so a ``True`` return means the switch is already booked.
    On failure nothing is claimed and the caller moves to the next
    backup (then to reactive BCP).
    """
    if not all(alive(p) for p in cand.graph.peers()):
        return False
    return admit_graph(cand.graph, pool, token)


def select_backups(
    current: ServiceGraph,
    qualified: Sequence[CandidateGraph],
    count: int,
    peer_failure: Callable[[int], float],
    max_subset_size: int = 3,
    exclude_by: str = "peer",
) -> List[CandidateGraph]:
    """§5.2: pick ``count`` backup graphs from the qualified set.

    Iterates over failure subsets of the current graph's components in
    bottleneck-priority order (singletons first, then pairs, ...); for
    each subset, selects the qualified graph that excludes every
    component of the subset and maximises overlap with the current graph.

    ``exclude_by="peer"`` (default) treats a component failure as the
    failure of its *host peer* — the actual churn event — so a backup
    must avoid every component co-hosted with the failed one;
    ``exclude_by="component"`` is the paper's literal component-level
    rule (ablation).
    """
    if exclude_by not in ("peer", "component"):
        raise ValueError(f"unknown exclude_by {exclude_by!r}")
    if count <= 0:
        return []
    current_sig = current.signature()
    candidates = [c for c in qualified if c.graph.signature() != current_sig]
    if not candidates:
        return []
    ordered_components = bottleneck_order(current, peer_failure)
    peer_of = {m.component_id: m.peer for m in current.components()}
    selected: List[CandidateGraph] = []
    chosen_sigs = {current_sig}

    def excludes(cand: CandidateGraph, subset: Tuple[int, ...]) -> bool:
        if exclude_by == "component":
            return not any(cand.graph.uses_component(cid) for cid in subset)
        return not any(cand.graph.uses_peer(peer_of[cid]) for cid in subset)

    for k in range(1, min(max_subset_size, len(ordered_components)) + 1):
        # subsets in priority order: itertools.combinations of a
        # bottleneck-sorted list yields highest-risk subsets first
        for subset in itertools.combinations(ordered_components, k):
            best: Optional[CandidateGraph] = None
            best_key: Tuple[float, float] = (-1.0, math.inf)
            for cand in candidates:
                sig = cand.graph.signature()
                if sig in chosen_sigs:
                    continue
                if not excludes(cand, subset):
                    continue
                key = (float(cand.graph.overlap(current)), -cand.cost)
                if key > best_key:
                    best, best_key = cand, key
            if best is not None:
                selected.append(best)
                chosen_sigs.add(best.graph.signature())
                if len(selected) >= count:
                    return selected
        if len(selected) >= count:
            break
    return selected
