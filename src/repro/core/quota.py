"""Probing budget and per-function probing quotas (paper §4.1 Step 1).

The probing budget β caps how many probes a composition request may use;
the per-function quota αᵢ caps how many duplicated components are probed
for function Fᵢ, enabling "differentiated allocation of the probes among
different functions ... e.g. assign higher probing quota for the function
with more duplicated service components".

Per-hop budget splitting (Step 2.2/2.3): a probe's budget is distributed
among next-hop functions proportionally to their quotas; for function Fₖ
with budget βₖ, quota αₖ and Zₖ duplicates, Iₖ = min(βₖ, αₖ, Zₖ) probes are
spawned, each with budget ⌊βₖ/Iₖ⌋.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Protocol, Sequence, Tuple

__all__ = [
    "QuotaPolicy",
    "UniformQuota",
    "ReplicationProportionalQuota",
    "split_budget",
    "budget_for_fraction",
]


class QuotaPolicy(Protocol):
    """αₖ as a function of the function name and its duplicate count."""

    def __call__(self, function: str, n_duplicates: int) -> int:  # pragma: no cover
        ...


@dataclass(frozen=True)
class UniformQuota:
    """The same quota for every function (the simplest policy)."""

    quota: int = 4

    def __post_init__(self) -> None:
        if self.quota < 1:
            raise ValueError(f"quota must be >= 1, got {self.quota}")

    def __call__(self, function: str, n_duplicates: int) -> int:
        return self.quota


@dataclass(frozen=True)
class ReplicationProportionalQuota:
    """αₖ grows with the duplicate count: ``clip(ceil(fraction·Zₖ))``.

    This is the paper's suggested differentiation — more duplicates,
    more probes — bounded below by ``floor_`` and above by ``cap``.
    The floor defaults to 2 so that (budget permitting) at least two
    duplicates are examined per function — one unlucky pick (infeasible
    host, stale state) then cannot sink the whole request.
    """

    fraction: float = 0.5
    floor_: int = 2
    cap: int = 16

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0,1], got {self.fraction}")
        if self.floor_ < 1 or self.cap < self.floor_:
            raise ValueError(f"need 1 <= floor_ <= cap, got {self.floor_}, {self.cap}")

    def __call__(self, function: str, n_duplicates: int) -> int:
        return int(min(max(math.ceil(self.fraction * n_duplicates), self.floor_), self.cap))


def split_budget(
    budget: int,
    entries: Sequence[Tuple[str, int, bool]],
) -> Dict[int, int]:
    """Distribute ``budget`` over next-hop entries ``(function, quota, is_dependency)``.

    Returns ``{entry_index: budget_share}``.  Shares are proportional to
    quota; every *dependency* next-hop gets at least one probe when the
    budget allows (a DAG fan-out needs every mandatory branch probed for
    any complete service graph to emerge), while commutation alternatives
    are the first to be starved under tight budgets.
    """
    if budget < 0:
        raise ValueError(f"negative budget: {budget}")
    if not entries:
        return {}
    shares: Dict[int, int] = {i: 0 for i in range(len(entries))}
    total_quota = sum(max(q, 0) for _, q, _ in entries)
    if total_quota <= 0 or budget == 0:
        return shares
    # ideal proportional shares, floored
    remaining = budget
    fractional: List[Tuple[float, int]] = []
    for i, (_, quota, _) in enumerate(entries):
        ideal = budget * quota / total_quota
        base = int(ideal)
        shares[i] = base
        remaining -= base
        fractional.append((ideal - base, i))
    # hand out the remainder by largest fractional part (stable order)
    for _, i in sorted(fractional, key=lambda t: (-t[0], t[1])):
        if remaining <= 0:
            break
        shares[i] += 1
        remaining -= 1
    # guarantee >= 1 for dependencies: a mandatory branch left unprobed
    # makes every composition incomplete.  Steal from commutation
    # alternatives first (down to zero — they are optional), then from
    # the richest dependencies (down to one).
    deps = {i for i, (_, _, is_dep) in enumerate(entries) if is_dep}
    for i in sorted(deps):
        if shares[i] >= 1:
            continue
        donors = sorted(shares, key=lambda j: (j in deps, -shares[j]))
        for j in donors:
            if j == i:
                continue
            floor = 1 if j in deps else 0
            if shares[j] > floor:
                shares[j] -= 1
                shares[i] += 1
                break
    return shares


def budget_for_fraction(optimal_probes: int, fraction: float) -> int:
    """The budget giving a "probing-``fraction``" variant (§6.1).

    The paper's "probing-0.2"/"probing-0.1" use 20 %/10 % of the probes
    the optimal (exhaustive flooding) algorithm would send.
    """
    if optimal_probes < 0:
        raise ValueError("optimal_probes must be >= 0")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0,1], got {fraction}")
    return max(1, int(round(optimal_probes * fraction)))
