"""Composition probe messages (paper §4.1, Fig. 5/6).

A probe carries the function graph (as currently commuted — its
*effective pattern*), the user's requirements, the accumulated QoS and
resource states of the partial service graph it has examined, and a
probing budget.  Each per-hop step spawns child probes that inherit the
parent's state (Step 2.4) and split its budget.

Probes traverse one *branch* of the (possibly DAG) pattern; the
destination merges compatible branch probes into complete service graphs
(§4.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional, Tuple

from ..discovery.metadata import ServiceMetadata
from .function_graph import CommutationPair, FunctionGraph
from .qos import QoSVector
from .request import CompositeRequest

__all__ = ["Probe"]

_probe_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Probe:
    """One in-flight composition probe (immutable; hops create children)."""

    probe_id: int
    request: CompositeRequest
    graph: FunctionGraph  # effective pattern after applied commutations
    applied_swaps: FrozenSet[CommutationPair]
    assignment: Mapping[str, ServiceMetadata]  # choices along this lineage
    branch: Tuple[str, ...]  # functions visited, in traversal order
    current_peer: int
    qos: QoSVector  # accumulated along this branch
    budget: int
    out_bandwidth: float  # stream rate leaving the current hop
    elapsed: float = 0.0  # protocol time consumed so far (setup-time runs)
    hops: int = 0
    # lazily computed by dedup_key(); excluded from init/equality/repr
    _dedup: Optional[Tuple] = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignment", dict(self.assignment))
        if self.budget < 0:
            raise ValueError(f"negative probing budget: {self.budget}")

    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, request: CompositeRequest, budget: int) -> "Probe":
        """The conceptual probe sitting at the application sender."""
        return cls(
            probe_id=next(_probe_ids),
            request=request,
            graph=request.function_graph,
            applied_swaps=frozenset(),
            assignment={},
            branch=(),
            current_peer=request.source_peer,
            qos=request.qos.zero_vector(),
            budget=budget,
            out_bandwidth=request.bandwidth,
        )

    def spawn(
        self,
        function: str,
        component: ServiceMetadata,
        graph: FunctionGraph,
        applied_swaps: FrozenSet[CommutationPair],
        qos: QoSVector,
        budget: int,
        elapsed: float,
    ) -> "Probe":
        """Child probe after choosing ``component`` for ``function``.

        Inherits the parent's QoS/resource states (Step 2.4) with the new
        hop's link QoS and the component's Qp already folded into ``qos``.
        """
        assignment = dict(self.assignment)
        assignment[function] = component
        return Probe(
            probe_id=next(_probe_ids),
            request=self.request,
            graph=graph,
            applied_swaps=applied_swaps,
            assignment=assignment,
            branch=self.branch + (function,),
            current_peer=component.peer,
            qos=qos,
            budget=budget,
            out_bandwidth=self.out_bandwidth * component.bandwidth_factor,
            elapsed=elapsed,
            hops=self.hops + 1,
        )

    def arrived(self, qos: QoSVector, elapsed: float) -> "Probe":
        """The probe after its final hop to the destination peer."""
        return Probe(
            probe_id=next(_probe_ids),
            request=self.request,
            graph=self.graph,
            applied_swaps=self.applied_swaps,
            assignment=self.assignment,
            branch=self.branch,
            current_peer=self.request.dest_peer,
            qos=qos,
            budget=self.budget,
            out_bandwidth=self.out_bandwidth,
            elapsed=elapsed,
            hops=self.hops + 1,
        )

    # ------------------------------------------------------------------
    @property
    def current_function(self) -> Optional[str]:
        return self.branch[-1] if self.branch else None

    @property
    def at_sink(self) -> bool:
        """No dependency successors remain on this branch."""
        fn = self.current_function
        return fn is not None and not self.graph.successors(fn)

    def last_component(self) -> Optional[ServiceMetadata]:
        fn = self.current_function
        return self.assignment[fn] if fn is not None else None

    def dedup_key(self) -> Tuple:
        """Identity of the partial composition this probe has built.

        Probes agreeing on the effective pattern, the component chosen
        for every visited function, and the branch are duplicates: the
        per-hop processors and the destination both keep only the
        earliest of each key."""
        key = self._dedup
        if key is None:
            key = (
                self.graph.edges,
                tuple(sorted((f, m.component_id) for f, m in self.assignment.items())),
                self.branch,
            )
            object.__setattr__(self, "_dedup", key)
        return key

    def __repr__(self) -> str:
        path = "→".join(self.branch) or "·"
        return (
            f"Probe(#{self.probe_id} req={self.request.request_id} {path} "
            f"@v{self.current_peer} β={self.budget})"
        )
