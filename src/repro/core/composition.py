"""The SpiderNet facade: one object wiring every subsystem together.

``SpiderNet.build(...)`` assembles the full middleware stack of Fig. 2 —
overlay topology, resource pool, Pastry DHT, service discovery, BCP and
the session manager — from a handful of parameters, and is what the
examples and experiment drivers instantiate.  Components remain
individually accessible for tests and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..dht.pastry import PastryNetwork
from ..discovery.registry import ServiceRegistry
from ..services.component import ComponentSpec
from ..sim.churn import ChurnProcess
from ..sim.engine import Simulator
from ..sim.metrics import MessageLedger
from ..sim.network import MessageNetwork
from ..sim.rng import as_generator
from ..topology.overlay import Overlay
from .bcp import BCP, BCPConfig, CompositionResult
from .request import CompositeRequest
from .resources import DEFAULT_RESOURCE_TYPES, ResourcePool, ResourceVector
from .session import RecoveryConfig, ServiceSession, SessionManager

__all__ = ["SpiderNet", "default_peer_capacity"]


def default_peer_capacity(
    n_peers: int,
    rng=None,
    cpu_range: tuple[float, float] = (50.0, 150.0),
    memory_range: tuple[float, float] = (256.0, 1024.0),
) -> Dict[int, ResourceVector]:
    """Heterogeneous peer capacities (CPU share units, memory MB)."""
    rng = as_generator(rng)
    return {
        p: ResourceVector(
            {
                "cpu": float(rng.uniform(*cpu_range)),
                "memory": float(rng.uniform(*memory_range)),
            }
        )
        for p in range(n_peers)
    }


@dataclass
class SpiderNet:
    """A fully wired SpiderNet node-set over one overlay."""

    overlay: Overlay
    sim: Simulator
    network: MessageNetwork
    pool: ResourcePool
    dht: PastryNetwork
    registry: ServiceRegistry
    bcp: BCP
    sessions: SessionManager
    ledger: MessageLedger
    churn: Optional[ChurnProcess] = None
    # optional AdaptiveBudgetPolicy (repro.core.budget): when set,
    # compose() with budget=None derives the budget per request (§4.1
    # Step 1) and feeds the outcome back to the controller
    budget_policy: Optional[object] = None
    # optional CompositionStrategy (repro.core.strategies): when set,
    # compose() routes through it instead of calling BCP directly; None
    # keeps the direct BCP path bit-for-bit untouched
    composer: Optional[object] = None

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        overlay: Overlay,
        rng=None,
        bcp_config: Optional[BCPConfig] = None,
        recovery_config: Optional[RecoveryConfig] = None,
        peer_capacity: Optional[Dict[int, ResourceVector]] = None,
        peer_failure: Optional[Callable[[int], float]] = None,
        churn_rate: Optional[float] = None,
        churn_downtime: float = 30.0,
        registry_cache_ttl: Optional[float] = None,
    ) -> "SpiderNet":
        """Assemble the middleware over a prebuilt overlay.

        ``churn_rate`` (fraction of peers failing per time unit) creates
        and wires a churn process; ``peer_failure`` is the failure
        estimate BCP/recovery rank with (defaults to the churn-implied
        per-session failure probability, or 1 % without churn).
        """
        rng = as_generator(rng)
        sim = Simulator()
        ledger = MessageLedger()
        network = MessageNetwork(sim, overlay.latency, ledger=ledger)
        for peer in overlay.peers():
            network.register(_PeerStub(peer))
        if peer_capacity is None:
            peer_capacity = default_peer_capacity(overlay.n_peers, rng)
        pool = ResourcePool(overlay, peer_capacity)
        dht = PastryNetwork(overlay, rng=rng, ledger=ledger)
        dht.build()
        registry = ServiceRegistry(dht, cache_ttl=registry_cache_ttl)
        if peer_failure is None:
            base = churn_rate if churn_rate is not None else 0.01
            peer_failure = lambda peer: base  # noqa: E731 - simple default
        bcp = BCP(
            overlay,
            pool,
            registry,
            config=bcp_config,
            ledger=ledger,
            peer_failure=peer_failure,
            alive=network.is_alive,
            rng=rng,
        )
        sessions = SessionManager(sim, bcp, config=recovery_config, alive=network.is_alive)
        churn = None
        if churn_rate is not None:
            churn = ChurnProcess(
                sim,
                network,
                fail_fraction=churn_rate,
                downtime=churn_downtime,
                rng=rng,
            )
            churn.on_departure(dht.node_departed)
            churn.on_arrival(dht.node_arrived)
            churn.on_departure(registry.peer_departed)
            churn.on_arrival(registry.peer_arrived)
            churn.on_departure(sessions.peer_departed)
        return cls(
            overlay=overlay,
            sim=sim,
            network=network,
            pool=pool,
            dht=dht,
            registry=registry,
            bcp=bcp,
            sessions=sessions,
            ledger=ledger,
            churn=churn,
        )

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def deploy(self, specs: Sequence[ComponentSpec]) -> None:
        """Register a batch of service components with discovery."""
        for spec in specs:
            self.registry.register(spec, now=self.sim.now)

    # ------------------------------------------------------------------
    # the headline operations
    # ------------------------------------------------------------------
    def compose(
        self, request: CompositeRequest, budget: Optional[int] = None, confirm: bool = False
    ) -> CompositionResult:
        """One-shot QoS-aware composition (no session kept by default).

        With a :class:`~repro.core.budget.AdaptiveBudgetPolicy` attached
        and ``budget=None``, the policy chooses the budget (priority,
        complexity, strictness, feedback) and learns from the outcome.
        """
        if budget is None and self.budget_policy is not None:
            budget = self.budget_policy.budget_for(request)
        if self.composer is not None:
            result = self.composer.compose(
                request, budget=budget, confirm=confirm, now=self.sim.now
            )
        else:
            result = self.bcp.compose(
                request, budget=budget, confirm=confirm, now=self.sim.now
            )
        if self.budget_policy is not None:
            self.budget_policy.record_outcome(result)
        return result

    def strategy_context(self):
        """A :class:`~repro.core.strategies.StrategyContext` over this stack."""
        from .strategies import StrategyContext

        return StrategyContext.from_spidernet(self)

    def use_composer(self, name: Optional[str], **options):
        """Select the composition strategy by registry name.

        ``use_composer("bcp")`` routes through the BCP strategy adapter
        (bit-identical results, plus ``ops_*`` profiling keys);
        ``use_composer(None)`` restores the direct BCP call.  Returns the
        installed strategy (or None).
        """
        if name is None:
            self.composer = None
            return None
        from .strategies import create_strategy

        self.composer = create_strategy(name, self.strategy_context(), **options)
        return self.composer

    def start_session(
        self, request: CompositeRequest, budget: Optional[int] = None
    ) -> Optional[ServiceSession]:
        """Compose, admit, and keep a failure-resilient session."""
        return self.sessions.establish(request, budget=budget)

    def start_churn(self) -> None:
        if self.churn is None:
            raise RuntimeError("SpiderNet was built without churn_rate")
        self.churn.start()

    def run(self, until: float) -> None:
        """Advance the virtual clock (sessions, churn, maintenance run)."""
        self.sim.run(until=until)


class _PeerStub:
    """Minimal network endpoint for peers (protocols here are modelled at
    the ledger/latency level; no per-message handlers are needed)."""

    __slots__ = ("node_id", "inbox")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.inbox: List[object] = []

    def on_message(self, msg) -> None:
        self.inbox.append(msg.payload)
