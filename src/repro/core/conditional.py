"""Conditional branch semantics (the paper's second future-work item).

§8: "We also plan to extend the current solution to support more
expressive service composition semantics such as conditional branch."

A conditional fork routes each ADU down *one* of a function's successor
branches (e.g. "if the receiver is mobile → downscale, else → upscale"),
chosen at runtime with some long-run probability per branch.  This
changes two things relative to the paper's parallel-branch DAGs:

* **QoS** — the end-to-end value is no longer the worst branch but the
  probability-weighted *expectation* over root→sink paths (each ADU
  takes exactly one); the worst case is still reported for admission
  against hard bounds;
* **bandwidth** — a conditional branch carries only its probability
  share of the stream in the long run, so expected-mode provisioning
  reserves ``p × rate`` on conditional links (peak mode keeps the full
  rate, trading efficiency for burst tolerance).

The extension layers on top of composed :class:`ServiceGraph`s without
changing the core model: annotate, evaluate, re-rank, and (for the data
plane) route.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..sim.rng import as_generator
from ..topology.overlay import Overlay
from .function_graph import FunctionGraph
from .qos import QoSVector
from .selection import CandidateGraph
from .service_graph import ServiceGraph, ServiceLink

__all__ = [
    "ConditionalAnnotation",
    "branch_probabilities",
    "expected_qos",
    "conditional_link_bandwidths",
    "select_by_expected_qos",
    "ConditionalRouter",
]


@dataclass(frozen=True)
class ConditionalAnnotation:
    """Per-fork routing probabilities: fork function → {successor: p}.

    Forks not listed keep the paper's parallel (replicate-to-all)
    semantics; listed forks must cover *all* successors of the function
    with probabilities summing to 1.
    """

    forks: Mapping[str, Mapping[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "forks", {f: dict(ps) for f, ps in dict(self.forks).items()}
        )
        for fn, probs in self.forks.items():
            total = sum(probs.values())
            if abs(total - 1.0) > 1e-9:
                raise ValueError(f"fork {fn!r} probabilities sum to {total}, not 1")
            if any(p < 0 for p in probs.values()):
                raise ValueError(f"fork {fn!r} has a negative probability")

    def validate_against(self, graph: FunctionGraph) -> None:
        for fn, probs in self.forks.items():
            if fn not in graph.functions:
                raise ValueError(f"fork {fn!r} is not a function of the graph")
            succ = set(graph.successors(fn))
            if set(probs) != succ:
                raise ValueError(
                    f"fork {fn!r} must cover successors {sorted(succ)}, got {sorted(probs)}"
                )

    def probability(self, fork: str, successor: str) -> float:
        """Routing probability of edge fork→successor (1.0 if parallel)."""
        probs = self.forks.get(fork)
        if probs is None:
            return 1.0
        return probs[successor]


def branch_probabilities(
    graph: FunctionGraph, annotation: ConditionalAnnotation
) -> Dict[Tuple[str, ...], float]:
    """Probability that an ADU traverses each branch path.

    The product of fork probabilities along the branch.  With parallel
    forks present the values need not sum to 1 over branches (an ADU may
    traverse several parallel branches at once); with only conditional
    forks they do.
    """
    annotation.validate_against(graph)
    out: Dict[Tuple[str, ...], float] = {}
    for branch in graph.branches():
        p = 1.0
        for a, b in zip(branch, branch[1:]):
            p *= annotation.probability(a, b)
        out[branch] = p
    return out


def expected_qos(
    graph: ServiceGraph, overlay: Overlay, annotation: ConditionalAnnotation
) -> QoSVector:
    """Probability-weighted QoS over branch paths.

    Branches with zero probability contribute nothing; if all parallel
    (no forks annotated) this degenerates to the *mean* over branches —
    callers wanting the paper's worst-branch semantics should use
    :meth:`ServiceGraph.end_to_end_qos`.
    """
    probs = branch_probabilities(graph.pattern, annotation)
    total_p = sum(probs.values())
    if total_p <= 0:
        raise ValueError("all branches have zero probability")
    acc: Dict[str, float] = {}
    for branch, p in probs.items():
        if p == 0.0:
            continue
        q = graph.branch_qos(overlay, branch)
        for metric, value in q.values.items():
            acc[metric] = acc.get(metric, 0.0) + p * value
    return QoSVector({m: v / total_p for m, v in acc.items()})


def conditional_link_bandwidths(
    graph: ServiceGraph, annotation: ConditionalAnnotation, mode: str = "expected"
) -> List[ServiceLink]:
    """Service links with conditional-aware bandwidth requirements.

    ``mode="expected"`` scales each link by the probability that traffic
    reaches it (long-run average provisioning); ``mode="peak"`` returns
    the unscaled links (burst-tolerant provisioning).
    """
    if mode not in ("expected", "peak"):
        raise ValueError(f"unknown provisioning mode {mode!r}")
    links = graph.service_links()
    if mode == "peak":
        return links
    annotation.validate_against(graph.pattern)
    # probability that traffic reaches a function = sum over branches
    # through it, capped at 1 (parallel forks duplicate traffic)
    probs = branch_probabilities(graph.pattern, annotation)
    reach: Dict[str, float] = {}
    for branch, p in probs.items():
        for fn in branch:
            reach[fn] = reach.get(fn, 0.0) + p
    reach = {fn: min(p, 1.0) for fn, p in reach.items()}
    out = []
    for link in links:
        if link.from_fn is None:
            factor = 1.0  # the sender always emits
        elif link.to_fn is None:
            factor = reach.get(link.from_fn, 1.0)
        else:
            factor = reach.get(link.from_fn, 1.0) * annotation.probability(
                link.from_fn, link.to_fn
            )
        out.append(
            ServiceLink(
                link.from_fn, link.to_fn, link.src_peer, link.dst_peer,
                link.bandwidth * factor,
            )
        )
    return out


def select_by_expected_qos(
    qualified: Sequence[CandidateGraph],
    overlay: Overlay,
    annotation: ConditionalAnnotation,
    metric: str = "delay",
) -> Optional[CandidateGraph]:
    """Re-rank a composition's qualified graphs by expected (not worst-
    branch) QoS — the right objective under conditional routing."""
    best = None
    best_value = None
    for cand in qualified:
        value = expected_qos(cand.graph, overlay, annotation).values.get(metric)
        if value is None:
            continue
        if best_value is None or value < best_value:
            best, best_value = cand, value
    return best


class ConditionalRouter:
    """Data-plane branch chooser: route each ADU down one fork successor."""

    def __init__(self, annotation: ConditionalAnnotation, rng=None) -> None:
        self.annotation = annotation
        self.rng = as_generator(rng)
        self.counts: Dict[Tuple[str, str], int] = {}

    def choose(self, fork: str, successors: Sequence[str]) -> str:
        """Pick the successor for one ADU at ``fork``."""
        if not successors:
            raise ValueError(f"fork {fork!r} has no successors")
        probs = self.annotation.forks.get(fork)
        if probs is None:
            raise KeyError(f"function {fork!r} is not a conditional fork")
        names = list(successors)
        weights = [probs[s] for s in names]
        u = self.rng.random()
        cum = 0.0
        chosen = names[-1]
        for name, w in zip(names, weights):
            cum += w
            if u < cum:
                chosen = name
                break
        self.counts[(fork, chosen)] = self.counts.get((fork, chosen), 0) + 1
        return chosen
