"""SpiderNet's core: QoS model, composition problem, BCP, recovery, sessions."""

from .async_bcp import AsyncBCP, InFlightComposition
from .baselines import (
    CentralizedComposer,
    OptimalComposer,
    RandomComposer,
    SearchSpaceExceeded,
    StaticComposer,
    admit_graph,
    enumerate_candidates,
    optimal_probe_count,
)
from .bcp import (
    BCP,
    BCPConfig,
    CompositionResult,
    NextHopWeights,
    derive_next_functions,
)
from .budget import AdaptiveBudgetPolicy, BudgetPolicyConfig
from .composition import SpiderNet, default_peer_capacity
from .conditional import (
    ConditionalAnnotation,
    ConditionalRouter,
    branch_probabilities,
    conditional_link_bandwidths,
    expected_qos,
    select_by_expected_qos,
)
from .cost import CostWeights, psi_cost
from .function_graph import FunctionGraph, FunctionGraphError
from .probe import Probe
from .qos import (
    DEFAULT_METRICS,
    QoSRequirement,
    QoSVector,
    additive_to_loss,
    loss_to_additive,
)
from .quota import (
    QuotaPolicy,
    ReplicationProportionalQuota,
    UniformQuota,
    budget_for_fraction,
    split_budget,
)
from .recovery import backup_count, bottleneck_order, select_backups
from .render import describe_composition, render_function_graph, render_service_graph
from .request import CompositeRequest
from .resources import (
    DEFAULT_RESOURCE_TYPES,
    InsufficientResources,
    ResourcePool,
    ResourceVector,
)
from .selection import CandidateGraph, SelectionOutcome, merge_probes, select_composition
from .service_graph import ServiceGraph, ServiceLink
from .session import RecoveryConfig, ServiceSession, SessionManager, SessionState
from .strategies import (
    CompositionStrategy,
    DecompositionComposer,
    PrunedBacktrackingComposer,
    StrategyContext,
    UnknownStrategyError,
    create_strategy,
    get_strategy,
    register_strategy,
    search_compositions,
    strategy_names,
)

__all__ = [
    "AdaptiveBudgetPolicy",
    "AsyncBCP",
    "BudgetPolicyConfig",
    "BCP",
    "BCPConfig",
    "InFlightComposition",
    "CandidateGraph",
    "ConditionalAnnotation",
    "ConditionalRouter",
    "CentralizedComposer",
    "CompositeRequest",
    "CompositionResult",
    "CompositionStrategy",
    "CostWeights",
    "DecompositionComposer",
    "DEFAULT_METRICS",
    "DEFAULT_RESOURCE_TYPES",
    "FunctionGraph",
    "FunctionGraphError",
    "InsufficientResources",
    "NextHopWeights",
    "OptimalComposer",
    "Probe",
    "PrunedBacktrackingComposer",
    "SearchSpaceExceeded",
    "StrategyContext",
    "UnknownStrategyError",
    "QoSRequirement",
    "QoSVector",
    "QuotaPolicy",
    "RandomComposer",
    "RecoveryConfig",
    "ReplicationProportionalQuota",
    "ResourcePool",
    "ResourceVector",
    "SelectionOutcome",
    "ServiceGraph",
    "ServiceLink",
    "ServiceSession",
    "SessionManager",
    "SessionState",
    "SpiderNet",
    "StaticComposer",
    "UniformQuota",
    "additive_to_loss",
    "admit_graph",
    "backup_count",
    "branch_probabilities",
    "conditional_link_bandwidths",
    "bottleneck_order",
    "budget_for_fraction",
    "create_strategy",
    "default_peer_capacity",
    "get_strategy",
    "register_strategy",
    "search_compositions",
    "strategy_names",
    "describe_composition",
    "derive_next_functions",
    "expected_qos",
    "enumerate_candidates",
    "loss_to_additive",
    "merge_probes",
    "optimal_probe_count",
    "psi_cost",
    "render_function_graph",
    "render_service_graph",
    "select_backups",
    "select_by_expected_qos",
    "select_composition",
    "split_budget",
]
