"""Adaptive probing-budget policies (paper §4.1, Step 1).

"The probing budget represents the trade-off between the probing
overhead and composition optimality. ... we can use larger probing
budget for the request with (1) higher priority, (2) stricter QoS
constraints, or (3) more complex function.  We can also adaptively
adjust the probing budget based on the user feedbacks and historical
information."

:class:`AdaptiveBudgetPolicy` implements all four signals:

* **priority** — multiplies the budget directly;
* **complexity** — budget grows with the function count (each extra
  function multiplies the candidate space by the replication degree, so
  examining a fixed *fraction* of it needs a growing budget);
* **strictness** — requests whose QoS bounds sit close to the typical
  achievable values get extra budget (more candidates must be examined
  to find one inside a tight region);
* **feedback** — a windowed controller: when the recent success rate
  falls below target, the budget multiplier grows; when compositions
  succeed with plenty of qualified graphs to spare, it shrinks — paying
  fewer probes for the same outcome.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from .bcp import CompositionResult
from .request import CompositeRequest

__all__ = ["BudgetPolicyConfig", "AdaptiveBudgetPolicy"]


@dataclass(frozen=True)
class BudgetPolicyConfig:
    """Tunables of the adaptive budget controller."""

    base: int = 8  # budget for a reference 2-function, priority-1 request
    min_budget: int = 2
    max_budget: int = 512
    complexity_base: float = 2.5  # budget multiplies by this per extra function
    reference_functions: int = 2
    strict_delay_bound: float = 0.25  # bounds below this (s) count as "strict"
    strictness_boost: float = 1.5
    target_success: float = 0.9
    surplus_qualified: int = 8  # ">= this many spare graphs" = over-probing
    window: int = 25  # recent outcomes considered by the controller
    adjust_step: float = 1.25
    multiplier_range: Tuple[float, float] = (0.25, 8.0)

    def __post_init__(self) -> None:
        if self.base < 1 or self.min_budget < 1 or self.max_budget < self.min_budget:
            raise ValueError("invalid budget bounds")
        if self.complexity_base < 1.0:
            raise ValueError("complexity_base must be >= 1")
        if not 0.0 < self.target_success <= 1.0:
            raise ValueError("target_success must be in (0, 1]")
        if self.adjust_step <= 1.0:
            raise ValueError("adjust_step must exceed 1")
        lo, hi = self.multiplier_range
        if not 0 < lo <= 1.0 <= hi:
            raise ValueError("multiplier_range must bracket 1.0")


class AdaptiveBudgetPolicy:
    """Computes per-request budgets and learns from outcomes."""

    def __init__(self, config: Optional[BudgetPolicyConfig] = None) -> None:
        self.config = config or BudgetPolicyConfig()
        self.multiplier = 1.0
        self._outcomes: Deque[Tuple[bool, int]] = deque(maxlen=self.config.window)

    # ------------------------------------------------------------------
    def budget_for(self, request: CompositeRequest) -> int:
        """The probing budget this request should be granted."""
        cfg = self.config
        k = len(request.function_graph)
        complexity = cfg.complexity_base ** max(k - cfg.reference_functions, 0)
        strictness = 1.0
        delay_bound = request.qos.bounds.get("delay")
        if delay_bound is not None and delay_bound < cfg.strict_delay_bound:
            strictness = cfg.strictness_boost
        raw = cfg.base * request.priority * complexity * strictness * self.multiplier
        return int(max(cfg.min_budget, min(round(raw), cfg.max_budget)))

    # ------------------------------------------------------------------
    def record_outcome(self, result: CompositionResult) -> None:
        """Feed a composition outcome back into the controller."""
        cfg = self.config
        self._outcomes.append((result.success, len(result.qualified)))
        if len(self._outcomes) < cfg.window:
            return  # not enough history to act on
        successes = sum(1 for ok, _ in self._outcomes if ok)
        rate = successes / len(self._outcomes)
        lo, hi = cfg.multiplier_range
        if rate < cfg.target_success:
            self.multiplier = min(self.multiplier * cfg.adjust_step, hi)
            self._outcomes.clear()
            return
        qualified = [q for ok, q in self._outcomes if ok]
        mean_qualified = sum(qualified) / len(qualified) if qualified else 0.0
        if mean_qualified >= cfg.surplus_qualified:
            self.multiplier = max(self.multiplier / cfg.adjust_step, lo)
            self._outcomes.clear()

    # ------------------------------------------------------------------
    @property
    def recent_success_rate(self) -> float:
        if not self._outcomes:
            return float("nan")
        return sum(1 for ok, _ in self._outcomes if ok) / len(self._outcomes)
