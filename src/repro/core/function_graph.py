"""Function graphs: the abstract half of the composition problem (§2.1).

A composite service request names required service *functions* connected
by **dependency links** (output of one feeds the next) and **commutation
links** (the composition order of two adjacent functions may be
exchanged — e.g. colour filter ↔ image scaling).  Resolving each
commutation link to a concrete order yields a **composition pattern**;
the set of patterns is one dimension of the paper's two-dimensional
mapping problem (Fig. 4).

The graph must be a DAG.  A commutation pair must be *chain-adjacent*
(edge a→b where b is a's only successor and a is b's only predecessor),
which is the only configuration where "exchange the order" is
well-defined — and matches every example in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["FunctionGraph", "FunctionGraphError", "CommutationPair"]

CommutationPair = FrozenSet[str]


class FunctionGraphError(ValueError):
    """Raised for malformed function graphs."""


@dataclass(frozen=True)
class FunctionGraph:
    """An immutable DAG of function names with commutation annotations."""

    functions: Tuple[str, ...]
    edges: FrozenSet[Tuple[str, str]]
    commutations: FrozenSet[CommutationPair] = frozenset()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def linear(
        cls, functions: Sequence[str], commutations: Iterable[Tuple[str, str]] = ()
    ) -> "FunctionGraph":
        """A chain F1 → F2 → ... → Fk."""
        edges = {(a, b) for a, b in zip(functions, functions[1:])}
        return cls.from_edges(functions, edges, commutations)

    @classmethod
    def from_edges(
        cls,
        functions: Sequence[str],
        edges: Iterable[Tuple[str, str]],
        commutations: Iterable[Tuple[str, str]] = (),
    ) -> "FunctionGraph":
        fg = cls(
            functions=tuple(functions),
            edges=frozenset((a, b) for a, b in edges),
            commutations=frozenset(frozenset(p) for p in commutations),
        )
        fg.validate()
        return fg

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    # adjacency is queried on every probe hop; the graph is immutable, so
    # the maps are computed lazily once per instance (cached_property
    # writes straight to __dict__, which frozen dataclasses permit)
    @cached_property
    def _succ_map(self) -> Dict[str, Tuple[str, ...]]:
        out: Dict[str, List[str]] = {f: [] for f in self.functions}
        for a, b in self.edges:
            out[a].append(b)
        return {f: tuple(sorted(v)) for f, v in out.items()}

    @cached_property
    def _pred_map(self) -> Dict[str, Tuple[str, ...]]:
        out: Dict[str, List[str]] = {f: [] for f in self.functions}
        for a, b in self.edges:
            out[b].append(a)
        return {f: tuple(sorted(v)) for f, v in out.items()}

    def successors(self, f: str) -> Tuple[str, ...]:
        return self._succ_map.get(f, ())

    def predecessors(self, f: str) -> Tuple[str, ...]:
        return self._pred_map.get(f, ())

    @cached_property
    def _sources(self) -> Tuple[str, ...]:
        has_pred = {b for _, b in self.edges}
        return tuple(f for f in self.functions if f not in has_pred)

    @cached_property
    def _sinks(self) -> Tuple[str, ...]:
        has_succ = {a for a, _ in self.edges}
        return tuple(f for f in self.functions if f not in has_succ)

    def sources(self) -> Tuple[str, ...]:
        return self._sources

    def sinks(self) -> Tuple[str, ...]:
        return self._sinks

    def is_linear(self) -> bool:
        return all(
            len(self.successors(f)) <= 1 and len(self.predecessors(f)) <= 1
            for f in self.functions
        )

    def topological_order(self) -> List[str]:
        return list(self._topological_order)

    @cached_property
    def _topological_order(self) -> Tuple[str, ...]:
        indeg: Dict[str, int] = {f: 0 for f in self.functions}
        for _, b in self.edges:
            indeg[b] += 1
        ready = sorted(f for f, d in indeg.items() if d == 0)
        order: List[str] = []
        while ready:
            f = ready.pop(0)
            order.append(f)
            for s in self.successors(f):
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
            ready.sort()
        if len(order) != len(self.functions):
            raise FunctionGraphError("function graph contains a cycle")
        return tuple(order)

    def validate(self) -> None:
        fnset = set(self.functions)
        if len(fnset) != len(self.functions):
            raise FunctionGraphError("duplicate function names")
        if not self.functions:
            raise FunctionGraphError("empty function graph")
        for a, b in self.edges:
            if a not in fnset or b not in fnset:
                raise FunctionGraphError(f"edge ({a},{b}) references unknown function")
            if a == b:
                raise FunctionGraphError(f"self-loop on {a}")
        self.topological_order()  # raises on cycle
        if len(self.functions) > 1:
            # weak connectivity: every function participates in some edge
            touched = {x for e in self.edges for x in e}
            isolated = fnset - touched
            if isolated:
                raise FunctionGraphError(f"isolated functions: {sorted(isolated)}")
        for pair in self.commutations:
            if len(pair) != 2:
                raise FunctionGraphError(f"commutation pair must have 2 functions: {pair}")
            a, b = sorted(pair)
            if a not in fnset or b not in fnset:
                raise FunctionGraphError(f"commutation references unknown function: {pair}")
            if not (self._chain_adjacent(a, b) or self._chain_adjacent(b, a)):
                raise FunctionGraphError(
                    f"commutation pair {sorted(pair)} is not chain-adjacent"
                )

    def _chain_adjacent(self, a: str, b: str) -> bool:
        """True iff edge a→b exists, b is a's only successor and a b's only pred."""
        return (
            (a, b) in self.edges
            and self.successors(a) == (b,)
            and self.predecessors(b) == (a,)
        )

    # ------------------------------------------------------------------
    # commutation
    # ------------------------------------------------------------------
    def commutation_partner(self, f: str) -> Optional[str]:
        for pair in self.commutations:
            if f in pair:
                (other,) = pair - {f}
                return other
        return None

    def ordered_pair(self, pair: CommutationPair) -> Optional[Tuple[str, str]]:
        """The (upstream, downstream) order of a commutation pair, if adjacent."""
        a, b = sorted(pair)
        if self._chain_adjacent(a, b):
            return (a, b)
        if self._chain_adjacent(b, a):
            return (b, a)
        return None

    def swap(self, first: str, second: str) -> "FunctionGraph":
        """Exchange the order of chain-adjacent ``first → second``.

        ``... → P → first → second → S → ...`` becomes
        ``... → P → second → first → S → ...``; the commutation link is
        preserved (the pair could in principle be swapped back).
        """
        if not self._chain_adjacent(first, second):
            raise FunctionGraphError(
                f"cannot swap {first}->{second}: not chain-adjacent"
            )
        new_edges: Set[Tuple[str, str]] = set()
        for a, b in self.edges:
            if (a, b) == (first, second):
                new_edges.add((second, first))
            elif b == first:  # P -> first  becomes  P -> second
                new_edges.add((a, second))
            elif a == second:  # second -> S  becomes  first -> S
                new_edges.add((first, b))
            else:
                new_edges.add((a, b))
        fg = FunctionGraph(
            functions=self.functions,
            edges=frozenset(new_edges),
            commutations=self.commutations,
        )
        fg.validate()
        return fg

    def composition_patterns(
        self, max_patterns: Optional[int] = None
    ) -> List[Tuple[FrozenSet[CommutationPair], "FunctionGraph"]]:
        """All concrete orders derivable by applying commutation subsets.

        Returns ``[(applied_pairs, pattern_graph), ...]`` starting with the
        original order (empty set).  Non-adjacent results of earlier swaps
        are skipped (cannot occur for disjoint pairs, which validation
        enforces de facto since pairs are chain-adjacent and share no
        functions with other pairs in well-formed graphs).
        """
        patterns: List[Tuple[FrozenSet[CommutationPair], FunctionGraph]] = [
            (frozenset(), self)
        ]
        if max_patterns is not None and max_patterns < 1:
            raise FunctionGraphError(f"max_patterns must be >= 1, got {max_patterns}")
        seen: Set[FrozenSet[Tuple[str, str]]] = {self.edges}
        frontier = [(frozenset(), self)]
        while frontier:
            applied, graph = frontier.pop(0)
            for pair in self.commutations:
                if max_patterns is not None and len(patterns) >= max_patterns:
                    return patterns
                if pair in applied:
                    continue
                ordered = graph.ordered_pair(pair)
                if ordered is None:
                    continue
                swapped = graph.swap(*ordered)
                if swapped.edges in seen:
                    continue
                seen.add(swapped.edges)
                entry = (applied | {pair}, swapped)
                patterns.append(entry)
                frontier.append(entry)
        return patterns

    # ------------------------------------------------------------------
    # branches
    # ------------------------------------------------------------------
    def branches(self) -> List[Tuple[str, ...]]:
        """All source→sink function paths ("branch paths", §2.2).

        A linear graph has exactly one branch; Fig. 2's example has two
        (s1→s9→s13 and s1→s7→s13 at the service level).
        """
        return list(self._branches)

    @cached_property
    def _branches(self) -> Tuple[Tuple[str, ...], ...]:
        out: List[Tuple[str, ...]] = []

        def dfs(f: str, path: List[str]) -> None:
            succ = self.successors(f)
            if not succ:
                out.append(tuple(path))
                return
            for s in succ:
                dfs(s, path + [s])

        for src in self.sources():
            dfs(src, [src])
        return tuple(sorted(out))

    def __len__(self) -> int:
        return len(self.functions)

    def __repr__(self) -> str:
        edges = ", ".join(f"{a}->{b}" for a, b in sorted(self.edges))
        extra = ""
        if self.commutations:
            pairs = ", ".join("~".join(sorted(p)) for p in sorted(self.commutations, key=sorted))
            extra = f", commute[{pairs}]"
        return f"FunctionGraph({edges or '|'.join(self.functions)}{extra})"
