"""SpiderNet: an integrated peer-to-peer service composition framework.

A from-scratch Python reproduction of Gu, Nahrstedt & Yu, *SpiderNet: An
Integrated Peer-to-Peer Service Composition Framework*, HPDC 2004.

Public API highlights
---------------------
* :class:`repro.core.SpiderNet` — one call builds the whole middleware
  stack (overlay, DHT, discovery, resources, BCP, sessions).
* :class:`repro.core.BCP` — the bounded composition probing protocol.
* :class:`repro.core.SessionManager` — proactive failure recovery.
* :mod:`repro.topology` — Inet-style IP layer + overlay construction.
* :mod:`repro.dht` — Pastry.
* :mod:`repro.workload` — populations and request streams.
* :mod:`repro.experiments` — drivers reproducing Figures 8–11.
"""

from . import core, dht, discovery, services, sim, spec, topology, trust, workload
from .core import (
    BCP,
    BCPConfig,
    CompositeRequest,
    CompositionResult,
    FunctionGraph,
    QoSRequirement,
    QoSVector,
    RecoveryConfig,
    ResourcePool,
    ResourceVector,
    ServiceGraph,
    SessionManager,
    SpiderNet,
)

__version__ = "1.0.0"

__all__ = [
    "BCP",
    "BCPConfig",
    "CompositeRequest",
    "CompositionResult",
    "FunctionGraph",
    "QoSRequirement",
    "QoSVector",
    "RecoveryConfig",
    "ResourcePool",
    "ResourceVector",
    "ServiceGraph",
    "SessionManager",
    "SpiderNet",
    "__version__",
    "core",
    "dht",
    "discovery",
    "services",
    "sim",
    "spec",
    "topology",
    "trust",
    "workload",
]
