"""Overlay maintenance under churn: live routing views and link repair.

The static :class:`~repro.topology.overlay.Overlay` models the paper's
simulator: overlay link metrics are fixed for a run and peer failures
are handled at the *service* layer (components on dead peers are
unusable; the overlay fabric itself is assumed to keep routing).  That
assumption is fine at 1 % churn with well-connected meshes, but a
long-lived deployment also needs the *fabric* maintained:

* :class:`LiveOverlayView` — shortest paths restricted to **alive**
  peers (dead relays cannot forward), recomputed lazily when liveness
  changes; reports partition events instead of silently routing through
  corpses;
* :class:`OverlayMaintainer` — the repair protocol: when a departure
  disconnects or degrades a peer's neighbourhood, it re-links affected
  peers to their nearest alive candidates (the same topologically-aware
  rule that built the mesh), charging the repair traffic to the ledger.

Experiments keep the paper's static-fabric model (documented in
DESIGN.md); this module is for studies of fabric-level resilience —
see ``tests/test_maintenance.py`` for partition-and-heal scenarios.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set, Tuple

import networkx as nx
import numpy as np
from scipy.sparse.csgraph import dijkstra

from ..sim.metrics import MessageLedger
from ..sim.rng import as_generator
from .overlay import Overlay
from .routing import graph_to_sparse

__all__ = ["LiveOverlayView", "OverlayMaintainer", "PartitionError"]


class PartitionError(RuntimeError):
    """Raised when two live peers have no live overlay path."""


class LiveOverlayView:
    """Shortest-path view over the alive subgraph of an overlay.

    The distance matrix is recomputed lazily: any liveness flip (or
    repair link) invalidates the cache, and the next query pays one
    all-pairs Dijkstra over the live subgraph — cheap at simulator
    scales and exact, unlike incremental approximations.
    """

    def __init__(self, overlay: Overlay, alive: Callable[[int], bool]) -> None:
        self.overlay = overlay
        self.alive = alive
        self._extra_links: Set[Tuple[int, int]] = set()
        self._extra_attrs: Dict[Tuple[int, int], Dict[str, float]] = {}
        self._dirty = True
        self._dist: Optional[np.ndarray] = None
        self._index: Dict[int, int] = {}
        self._invalidate_listeners: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    def on_invalidate(self, callback: Callable[[], None]) -> None:
        """Register a hook fired on every invalidation (liveness flip or
        repair link) so caches layered on this view — memoized paths,
        availability arrays — can flush in step with the rebuilt view.

        The *static* :class:`~repro.topology.routing.OverlayRouter` cache
        never needs this: its overlay does not change.  Live views do."""
        self._invalidate_listeners.append(callback)

    def invalidate(self) -> None:
        """Call when liveness changed (wired to churn callbacks)."""
        self._dirty = True
        for callback in self._invalidate_listeners:
            callback()

    def add_link(self, a: int, b: int, delay: float, bandwidth: float = 10.0) -> None:
        """Install a repair link (kept even if the view is recomputed)."""
        if a == b:
            raise ValueError("cannot link a peer to itself")
        link = tuple(sorted((a, b)))
        self._extra_links.add(link)
        self._extra_attrs[link] = {"delay": float(delay), "bandwidth": float(bandwidth)}
        self.invalidate()

    def repair_links(self) -> List[Tuple[int, int]]:
        return sorted(self._extra_links)

    # ------------------------------------------------------------------
    def _live_graph(self) -> nx.Graph:
        g = nx.Graph()
        for p in self.overlay.peers():
            if self.alive(p):
                g.add_node(p)
        for u, v, data in self.overlay.graph.edges(data=True):
            if g.has_node(u) and g.has_node(v):
                g.add_edge(u, v, delay=data["delay"])
        for (u, v), attrs in self._extra_attrs.items():
            if g.has_node(u) and g.has_node(v):
                g.add_edge(u, v, delay=attrs["delay"])
        return g

    def _recompute(self) -> None:
        live = self._live_graph()
        matrix, nodelist = graph_to_sparse(live, "delay")
        self._index = {v: i for i, v in enumerate(nodelist)}
        if len(nodelist):
            self._dist = dijkstra(matrix, directed=False)
        else:
            self._dist = np.zeros((0, 0))
        self._dirty = False

    # ------------------------------------------------------------------
    def latency(self, a: int, b: int) -> float:
        """Live-path latency; raises :class:`PartitionError` if unreachable."""
        if not self.alive(a) or not self.alive(b):
            raise PartitionError(f"peer {a if not self.alive(a) else b} is down")
        if a == b:
            return 0.0
        if self._dirty:
            self._recompute()
        d = float(self._dist[self._index[a], self._index[b]])
        if math.isinf(d):
            raise PartitionError(f"no live overlay path {a} -> {b}")
        return d

    def reachable(self, a: int, b: int) -> bool:
        try:
            self.latency(a, b)
            return True
        except PartitionError:
            return False

    def components(self) -> List[Set[int]]:
        """Connected components of the live overlay (1 = healthy)."""
        return [set(c) for c in nx.connected_components(self._live_graph())]

    def isolated_peers(self) -> List[int]:
        """Live peers with no live neighbour at all."""
        live = self._live_graph()
        return sorted(p for p in live.nodes if live.degree[p] == 0)


class OverlayMaintainer:
    """Repairs the overlay fabric after departures (re-linking protocol).

    On each :meth:`repair` pass every live peer whose live degree fell
    below ``min_degree`` links to its nearest alive non-neighbours
    (nearest by the *static* pairwise latency — what a peer estimates
    from history/pings).  Each new link costs a handshake, charged to
    the ledger.  Repair is idempotent and converges: a connected live
    population ends with min degree ≥ min(min_degree, n_live−1).
    """

    def __init__(
        self,
        view: LiveOverlayView,
        min_degree: int = 2,
        ledger: Optional[MessageLedger] = None,
        rng=None,
    ) -> None:
        if min_degree < 1:
            raise ValueError("min_degree must be >= 1")
        self.view = view
        self.min_degree = min_degree
        self.ledger = ledger if ledger is not None else MessageLedger()
        self.rng = as_generator(rng)
        self.links_added = 0

    # ------------------------------------------------------------------
    def live_degree(self, peer: int) -> int:
        overlay = self.view.overlay
        alive = self.view.alive
        deg = sum(1 for n in overlay.graph.neighbors(peer) if alive(n))
        for u, v in self.view.repair_links():
            if peer in (u, v):
                other = v if u == peer else u
                if alive(other) and not overlay.graph.has_edge(peer, other):
                    deg += 1
        return deg

    def _candidates(self, peer: int) -> List[int]:
        overlay = self.view.overlay
        alive = self.view.alive
        neighbours = set(overlay.graph.neighbors(peer))
        for u, v in self.view.repair_links():
            if peer in (u, v):
                neighbours.add(v if u == peer else u)
        cands = [
            q for q in overlay.peers()
            if q != peer and q not in neighbours and alive(q)
        ]
        # nearest-first by the static metric (a peer's latency estimates)
        cands.sort(key=lambda q: self.view.overlay.latency(peer, q))
        return cands

    def repair(self) -> int:
        """One maintenance pass; returns the number of links added."""
        added = 0
        for peer in self.view.overlay.peers():
            if not self.view.alive(peer):
                continue
            deficit = self.min_degree - self.live_degree(peer)
            if deficit <= 0:
                continue
            for target in self._candidates(peer)[:deficit]:
                delay = self.view.overlay.latency(peer, target)
                self.view.add_link(peer, target, delay=delay)
                self.ledger.record("overlay_repair", 128, 2)  # handshake
                added += 1
        # a second sweep may be needed when everything near a peer died;
        # connect remaining components pairwise by their closest peers
        comps = self.view.components()
        while len(comps) > 1:
            main = max(comps, key=len)
            other = min(comps, key=len)
            best = None
            for a in sorted(other):
                for b in sorted(main):
                    d = self.view.overlay.latency(a, b)
                    if best is None or d < best[0]:
                        best = (d, a, b)
            if best is None:  # pragma: no cover - both sets non-empty
                break
            _, a, b = best
            self.view.add_link(a, b, delay=best[0])
            self.ledger.record("overlay_repair", 128, 2)
            added += 1
            comps = self.view.components()
        self.links_added += added
        return added
