"""Shortest-path routing over the IP layer and the overlay.

The paper's simulator "performs IP-layer and overlay-layer data routing
using shortest path routing".  We provide both layers:

* :class:`IPRouter` — delay-weighted Dijkstra over the router graph,
  vectorised with :func:`scipy.sparse.csgraph.dijkstra` from a set of
  source nodes (the peers), so mapping overlay links onto IP paths for
  hundreds of peers over thousands of routers stays fast.
* :class:`OverlayRouter` — all-pairs shortest paths over the (much
  smaller) overlay graph, with cached predecessor matrices so overlay
  paths (the ℘ⱼ of Eq. 1, whose bottleneck bandwidth the cost function
  consumes) can be reconstructed in O(path length).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

__all__ = ["IPRouter", "OverlayRouter", "graph_to_sparse"]


def graph_to_sparse(
    g: nx.Graph, weight: str = "delay", nodelist: Optional[Sequence[int]] = None
) -> Tuple[csr_matrix, List[int]]:
    """Convert a networkx graph to a CSR adjacency matrix of ``weight``."""
    nodelist = list(g.nodes) if nodelist is None else list(nodelist)
    index = {v: i for i, v in enumerate(nodelist)}
    rows, cols, vals = [], [], []
    for u, v, data in g.edges(data=True):
        if u not in index or v not in index:
            continue
        w = float(data[weight])
        rows.extend((index[u], index[v]))
        cols.extend((index[v], index[u]))
        vals.extend((w, w))
    n = len(nodelist)
    return csr_matrix((vals, (rows, cols)), shape=(n, n)), nodelist


class IPRouter:
    """Delay-based shortest paths on the router-level graph."""

    def __init__(self, ip_graph: nx.Graph) -> None:
        self.graph = ip_graph
        self._matrix, self._nodelist = graph_to_sparse(ip_graph, "delay")
        self._index = {v: i for i, v in enumerate(self._nodelist)}
        self._delay_cache: Dict[int, np.ndarray] = {}
        self._pred_cache: Dict[int, np.ndarray] = {}

    def delays_from(self, src: int) -> np.ndarray:
        """Vector of shortest-path delays from ``src`` to every router."""
        if src not in self._index:
            raise KeyError(f"unknown router {src}")
        i = self._index[src]
        if i not in self._delay_cache:
            dist, pred = dijkstra(
                self._matrix, directed=False, indices=i, return_predecessors=True
            )
            self._delay_cache[i] = dist
            self._pred_cache[i] = pred
        return self._delay_cache[i]

    def delay(self, src: int, dst: int) -> float:
        return float(self.delays_from(src)[self._index[dst]])

    def path(self, src: int, dst: int) -> List[int]:
        """Router-level path (inclusive of endpoints)."""
        self.delays_from(src)
        pred = self._pred_cache[self._index[src]]
        j = self._index[dst]
        if self._index[src] == j:
            return [src]
        hops = [j]
        while pred[j] >= 0:
            j = pred[j]
            hops.append(j)
        if hops[-1] != self._index[src]:
            raise nx.NetworkXNoPath(f"no IP path {src}->{dst}")
        return [self._nodelist[k] for k in reversed(hops)]

    def path_bandwidth(self, src: int, dst: int) -> float:
        """Bottleneck link bandwidth along the delay-shortest IP path."""
        hops = self.path(src, dst)
        if len(hops) < 2:
            return float("inf")
        return min(self.graph.edges[a, b]["bandwidth"] for a, b in zip(hops, hops[1:]))


class OverlayRouter:
    """All-pairs shortest paths over the overlay graph (delay metric).

    Precomputes the full P×P delay and predecessor matrices once (the
    overlay has at most ~1000 peers, so this is a few MB); exposes
    ``delay``, ``path`` (peer sequence) and ``links`` (overlay edge
    sequence) used by bandwidth admission along service links.
    """

    def __init__(self, overlay_graph: nx.Graph) -> None:
        self.graph = overlay_graph
        self._matrix, self._nodelist = graph_to_sparse(overlay_graph, "delay")
        self._index = {v: i for i, v in enumerate(self._nodelist)}
        self._dist, self._pred = dijkstra(
            self._matrix, directed=False, return_predecessors=True
        )

    @property
    def peers(self) -> List[int]:
        return list(self._nodelist)

    def delay(self, src: int, dst: int) -> float:
        try:
            return float(self._dist[self._index[src], self._index[dst]])
        except KeyError as exc:
            raise KeyError(f"unknown peer {exc.args[0]}") from None

    def reachable(self, src: int, dst: int) -> bool:
        return np.isfinite(self._dist[self._index[src], self._index[dst]])

    def path(self, src: int, dst: int) -> List[int]:
        """Overlay peer path from src to dst (inclusive)."""
        i, j = self._index[src], self._index[dst]
        if i == j:
            return [src]
        if not np.isfinite(self._dist[i, j]):
            raise nx.NetworkXNoPath(f"no overlay path {src}->{dst}")
        hops = [j]
        k = j
        while self._pred[i, k] >= 0:
            k = self._pred[i, k]
            hops.append(k)
        return [self._nodelist[h] for h in reversed(hops)]

    def links(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Overlay links (canonically ordered pairs) along the path."""
        hops = self.path(src, dst)
        return [tuple(sorted((a, b))) for a, b in zip(hops, hops[1:])]

    def delay_matrix(self) -> np.ndarray:
        """The full pairwise delay matrix, indexed by :attr:`peers` order."""
        return self._dist.copy()
