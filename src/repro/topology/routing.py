"""Shortest-path routing over the IP layer and the overlay.

The paper's simulator "performs IP-layer and overlay-layer data routing
using shortest path routing".  We provide both layers:

* :class:`IPRouter` — delay-weighted Dijkstra over the router graph,
  vectorised with :func:`scipy.sparse.csgraph.dijkstra` from a set of
  source nodes (the peers), so mapping overlay links onto IP paths for
  hundreds of peers over thousands of routers stays fast.
* :class:`OverlayRouter` — all-pairs shortest paths over the (much
  smaller) overlay graph, with cached predecessor matrices so overlay
  paths (the ℘ⱼ of Eq. 1, whose bottleneck bandwidth the cost function
  consumes) can be reconstructed in O(path length).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

__all__ = ["IPRouter", "OverlayRouter", "graph_to_sparse"]


def graph_to_sparse(
    g: nx.Graph,
    weight: str = "delay",
    nodelist: Optional[Sequence[int]] = None,
    overrides: Optional[Dict[Tuple[int, int], float]] = None,
) -> Tuple[csr_matrix, List[int]]:
    """Convert a networkx graph to a CSR adjacency matrix of ``weight``.

    ``overrides`` substitutes weights for individual edges, keyed by the
    canonical ``tuple(sorted((u, v)))`` link.  An override of ``inf``
    effectively removes the edge from shortest-path computation (scipy's
    ``dijkstra`` never relaxes through a non-finite weight) while keeping
    the edge *present*, so edge iteration order — and every array indexed
    by it — is unchanged.
    """
    nodelist = list(g.nodes) if nodelist is None else list(nodelist)
    index = {v: i for i, v in enumerate(nodelist)}
    rows, cols, vals = [], [], []
    for u, v, data in g.edges(data=True):
        if u not in index or v not in index:
            continue
        w = float(data[weight])
        if overrides:
            w = overrides.get((u, v) if u < v else (v, u), w)
        if not np.isfinite(w):
            continue  # csr stores explicit values; omit the edge instead
        rows.extend((index[u], index[v]))
        cols.extend((index[v], index[u]))
        vals.extend((w, w))
    n = len(nodelist)
    return csr_matrix((vals, (rows, cols)), shape=(n, n)), nodelist


class IPRouter:
    """Delay-based shortest paths on the router-level graph."""

    def __init__(self, ip_graph: nx.Graph) -> None:
        self.graph = ip_graph
        self._matrix, self._nodelist = graph_to_sparse(ip_graph, "delay")
        self._index = {v: i for i, v in enumerate(self._nodelist)}
        self._delay_cache: Dict[int, np.ndarray] = {}
        self._pred_cache: Dict[int, np.ndarray] = {}

    def delays_from(self, src: int) -> np.ndarray:
        """Vector of shortest-path delays from ``src`` to every router."""
        if src not in self._index:
            raise KeyError(f"unknown router {src}")
        i = self._index[src]
        if i not in self._delay_cache:
            dist, pred = dijkstra(
                self._matrix, directed=False, indices=i, return_predecessors=True
            )
            self._delay_cache[i] = dist
            self._pred_cache[i] = pred
        return self._delay_cache[i]

    def delay(self, src: int, dst: int) -> float:
        return float(self.delays_from(src)[self._index[dst]])

    def path(self, src: int, dst: int) -> List[int]:
        """Router-level path (inclusive of endpoints)."""
        self.delays_from(src)
        pred = self._pred_cache[self._index[src]]
        j = self._index[dst]
        if self._index[src] == j:
            return [src]
        hops = [j]
        while pred[j] >= 0:
            j = pred[j]
            hops.append(j)
        if hops[-1] != self._index[src]:
            raise nx.NetworkXNoPath(f"no IP path {src}->{dst}")
        return [self._nodelist[k] for k in reversed(hops)]

    def path_bandwidth(self, src: int, dst: int) -> float:
        """Bottleneck link bandwidth along the delay-shortest IP path."""
        hops = self.path(src, dst)
        if len(hops) < 2:
            return float("inf")
        return min(self.graph.edges[a, b]["bandwidth"] for a, b in zip(hops, hops[1:]))


class OverlayRouter:
    """All-pairs shortest paths over the overlay graph (delay metric).

    Precomputes the full P×P delay and predecessor matrices once (the
    overlay has at most ~1000 peers, so this is a few MB); exposes
    ``delay``, ``path`` (peer sequence) and ``links`` (overlay edge
    sequence) used by bandwidth admission along service links.

    The overlay is static for a run, so reconstructed paths are memoized:
    ``path``/``links``/``link_indices`` pay the predecessor-matrix walk
    once per (src, dst) pair and serve dict hits afterwards — these are
    the hottest calls of BCP probing (bandwidth admission and ψλ evaluate
    them per candidate per hop).  Cached lists are shared: treat them as
    read-only.  ``clear_cache`` (or ``set_path_cache``) is the
    invalidation hook for the rare callers that rebuild routing state.
    """

    def __init__(
        self,
        overlay_graph: nx.Graph,
        cache_paths: bool = True,
        delay_overrides: Optional[Dict[Tuple[int, int], float]] = None,
    ) -> None:
        self.graph = overlay_graph
        self._overrides = dict(delay_overrides) if delay_overrides else {}
        self._matrix, self._nodelist = graph_to_sparse(
            overlay_graph, "delay", overrides=self._overrides or None
        )
        self._index = {v: i for i, v in enumerate(self._nodelist)}
        self._dist, self._pred = dijkstra(
            self._matrix, directed=False, return_predecessors=True
        )
        # canonical link ordering shared with vectorized bandwidth queries
        # (ResourcePool keeps its capacity/usage arrays in this order)
        self._link_order: List[Tuple[int, int]] = [
            tuple(sorted((u, v))) for u, v in overlay_graph.edges
        ]
        self._link_index: Dict[Tuple[int, int], int] = {
            l: i for i, l in enumerate(self._link_order)
        }
        self._cache_enabled = cache_paths
        self._path_cache: Dict[Tuple[int, int], List[int]] = {}
        self._links_cache: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self._link_idx_cache: Dict[Tuple[int, int], np.ndarray] = {}
        self._link_idx_list_cache: Dict[Tuple[int, int], List[int]] = {}
        self._batch_idx_cache: Dict[
            Tuple[int, Tuple[int, ...]], Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}

    @property
    def peers(self) -> List[int]:
        return list(self._nodelist)

    @property
    def link_order(self) -> List[Tuple[int, int]]:
        """Canonically ordered overlay links, defining array indices."""
        return list(self._link_order)

    @property
    def link_index(self) -> Dict[Tuple[int, int], int]:
        """Mapping of canonical link -> index into :attr:`link_order`."""
        return self._link_index

    def index_of(self, peer: int) -> int:
        """Matrix row/column of a peer (for delay-matrix lookups)."""
        return self._index[peer]

    def link_delay(self, u: int, v: int) -> float:
        """Effective one-hop weight of an overlay edge (override-aware)."""
        link = (u, v) if u < v else (v, u)
        hit = self._overrides.get(link)
        if hit is not None:
            return hit
        return float(self.graph.edges[link]["delay"])

    def reweighted(self, overrides: Dict[Tuple[int, int], float]) -> "OverlayRouter":
        """A fresh router over the *same* graph with some link delays
        replaced (canonical-link keyed; ``inf`` prices a link out of every
        shortest path without removing the edge).

        Because the graph object — and therefore its edge iteration
        order — is shared, the new router's :attr:`link_order` is
        identical to this one's, so capacity/usage arrays indexed by it
        (:class:`~repro.core.resources.ResourcePool`) remain valid."""
        return OverlayRouter(
            self.graph, cache_paths=self._cache_enabled, delay_overrides=overrides
        )

    def set_path_cache(self, enabled: bool) -> None:
        """Toggle path memoization (A/B tests); always clears the cache."""
        self._cache_enabled = enabled
        self.clear_cache()

    def clear_cache(self) -> None:
        """Invalidation hook: drop all memoized paths/links/indices."""
        self._path_cache.clear()
        self._links_cache.clear()
        self._link_idx_cache.clear()
        self._link_idx_list_cache.clear()
        self._batch_idx_cache.clear()

    def delay(self, src: int, dst: int) -> float:
        try:
            return float(self._dist[self._index[src], self._index[dst]])
        except KeyError as exc:
            raise KeyError(f"unknown peer {exc.args[0]}") from None

    def delays(self, src: int, dsts: Sequence[int]) -> np.ndarray:
        """Vector of delays from ``src`` to each of ``dsts`` (one slice)."""
        i = self._index[src]
        cols = np.fromiter(
            (self._index[d] for d in dsts), dtype=np.intp, count=len(dsts)
        )
        return self._dist[i, cols]

    def reachable(self, src: int, dst: int) -> bool:
        return np.isfinite(self._dist[self._index[src], self._index[dst]])

    def path(self, src: int, dst: int) -> List[int]:
        """Overlay peer path from src to dst (inclusive).  Read-only."""
        key = (src, dst)
        hit = self._path_cache.get(key)
        if hit is not None:
            return hit
        i, j = self._index[src], self._index[dst]
        if i == j:
            hops_out = [src]
        else:
            if not np.isfinite(self._dist[i, j]):
                raise nx.NetworkXNoPath(f"no overlay path {src}->{dst}")
            hops = [j]
            k = j
            while self._pred[i, k] >= 0:
                k = self._pred[i, k]
                hops.append(k)
            hops_out = [self._nodelist[h] for h in reversed(hops)]
        if self._cache_enabled:
            self._path_cache[key] = hops_out
        return hops_out

    def links(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Overlay links (canonically ordered pairs) along the path.
        Read-only: the returned list is shared with the cache."""
        key = (src, dst)
        hit = self._links_cache.get(key)
        if hit is not None:
            return hit
        hops = self.path(src, dst)
        out = [tuple(sorted((a, b))) for a, b in zip(hops, hops[1:])]
        if self._cache_enabled:
            self._links_cache[key] = out
        return out

    def link_indices(self, src: int, dst: int) -> np.ndarray:
        """Indices (into :attr:`link_order`) of the path's links — the
        vectorized form of :meth:`links` for NumPy availability arrays."""
        key = (src, dst)
        hit = self._link_idx_cache.get(key)
        if hit is not None:
            return hit
        ls = self.links(src, dst)
        out = np.fromiter(
            (self._link_index[l] for l in ls), dtype=np.intp, count=len(ls)
        )
        if self._cache_enabled:
            self._link_idx_cache[key] = out
        return out

    def link_index_list(self, src: int, dst: int) -> List[int]:
        """:meth:`link_indices` as a plain Python list.

        Typical overlay paths are 2–5 links, where a Python loop over int
        indices beats a NumPy gather+reduce — single-path bottleneck
        queries use this, batched ones use :meth:`batch_link_indices`."""
        key = (src, dst)
        hit = self._link_idx_list_cache.get(key)
        if hit is not None:
            return hit
        out = [self._link_index[l] for l in self.links(src, dst)]
        if self._cache_enabled:
            self._link_idx_list_cache[key] = out
        return out

    def batch_link_indices(
        self, src: int, dsts: Tuple[int, ...]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated link indices for many destinations at once.

        Returns ``(cat, offsets, positions)``: ``cat`` is every non-empty
        path's link indices back-to-back, ``offsets`` the start of each
        segment (ready for ``np.minimum.reduceat``), and ``positions``
        the index into ``dsts`` each segment belongs to (``src`` itself
        and zero-link paths are skipped — their bottleneck is +inf)."""
        key = (src, dsts)
        hit = self._batch_idx_cache.get(key)
        if hit is not None:
            return hit
        arrays: List[np.ndarray] = []
        offsets: List[int] = []
        positions: List[int] = []
        total = 0
        for k, dst in enumerate(dsts):
            if dst == src:
                continue
            ia = self.link_indices(src, dst)
            if ia.size == 0:
                continue
            arrays.append(ia)
            offsets.append(total)
            positions.append(k)
            total += ia.size
        if arrays:
            out = (
                np.concatenate(arrays),
                np.array(offsets, dtype=np.intp),
                np.array(positions, dtype=np.intp),
            )
        else:
            empty = np.empty(0, dtype=np.intp)
            out = (empty, empty, empty)
        if self._cache_enabled:
            self._batch_idx_cache[key] = out
        return out

    def delay_matrix(self) -> np.ndarray:
        """The full pairwise delay matrix, indexed by :attr:`peers` order."""
        return self._dist.copy()
