"""Degree-based power-law Internet topology generator.

The paper generates its IP layer with Inet-3.0 (Winick & Jamin), a
degree-based generator producing router graphs whose degree distribution
follows a power law.  Inet itself is a C program we cannot ship, so this
module implements the same *class* of generator:

1. draw a degree sequence from a discrete power law with exponent
   ``gamma`` (Inet uses complementary-CDF fitting; a Zipf draw with the
   same exponent gives an indistinguishable tail for our purposes);
2. connect the highest-degree nodes into a spanning core;
3. attach every remaining node preferentially (probability proportional
   to remaining degree stubs) — this is Inet's placement step;
4. add extra edges between stub-rich nodes until degrees are (nearly)
   met, rejecting self-loops and multi-edges;
5. embed nodes in a unit square and weight each link with a propagation
   delay proportional to Euclidean distance plus a per-hop constant,
   so shortest IP paths have heterogeneous, metric-like latencies.

The output is an undirected :class:`networkx.Graph` with ``delay``
(seconds) and ``bandwidth`` (Mbps) edge attributes and ``pos`` node
attributes.
"""

from __future__ import annotations

import math
from typing import Optional

import networkx as nx
import numpy as np

from ..sim.rng import as_generator

__all__ = ["power_law_degree_sequence", "generate_ip_network", "TopologyError"]


class TopologyError(ValueError):
    """Raised when topology generation parameters are unsatisfiable."""


def power_law_degree_sequence(
    n: int,
    gamma: float = 2.2,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    rng=None,
) -> np.ndarray:
    """Draw ``n`` degrees with P(d) ∝ d^-gamma, clipped to [min, max].

    The sum is forced even (required for a graphical sequence) by
    incrementing one node, matching how Inet rounds its CCDF fit.
    """
    if n <= 0:
        raise TopologyError(f"need at least one node, got {n}")
    if gamma <= 1.0:
        raise TopologyError(f"power-law exponent must exceed 1, got {gamma}")
    rng = as_generator(rng)
    if max_degree is None:
        # natural cutoff ~ n^(1/(gamma-1)), standard for scale-free graphs
        max_degree = max(min_degree + 1, int(round(n ** (1.0 / (gamma - 1.0)))))
    max_degree = min(max_degree, n - 1) if n > 1 else 1
    support = np.arange(min_degree, max_degree + 1, dtype=float)
    pmf = support**-gamma
    pmf /= pmf.sum()
    degrees = rng.choice(support.astype(int), size=n, p=pmf)
    if degrees.sum() % 2 == 1:
        degrees[int(rng.integers(0, n))] += 1
    return degrees.astype(int)


def _preferential_attach(
    g: nx.Graph,
    stubs: np.ndarray,
    new_node: int,
    attached: "set[int]",
    rng: np.random.Generator,
) -> None:
    """Attach ``new_node`` to an already-connected node, ∝ remaining stubs.

    Only nodes in ``attached`` are eligible — attaching to an isolated
    node would silently split the graph.
    """
    candidates = np.fromiter((v for v in attached if v != new_node), dtype=int)
    weights = stubs[candidates].astype(float)
    weights = np.where(weights > 0, weights, 0.25)  # keep graph attachable
    p = weights / weights.sum()
    target = int(rng.choice(candidates, p=p))
    g.add_edge(new_node, target)
    stubs[new_node] -= 1
    stubs[target] -= 1


def generate_ip_network(
    n: int,
    gamma: float = 2.2,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    delay_per_unit: float = 0.030,
    hop_delay: float = 0.002,
    bandwidth_range: tuple[float, float] = (10.0, 1000.0),
    rng=None,
) -> nx.Graph:
    """Generate a connected power-law router-level topology.

    Parameters mirror the role Inet-3.0 plays in the paper: ``n`` routers
    (the paper uses 10 000), heavy-tailed degrees, and per-link delays that
    make shortest paths heterogeneous.  ``delay_per_unit`` converts unit-
    square Euclidean distance to seconds (0.030 → a coast-to-coast-ish
    30 ms for the longest links); ``hop_delay`` adds per-hop store-and-
    forward cost.  Link ``bandwidth`` is log-uniform in ``bandwidth_range``
    (Mbps) — core links (between high-degree routers) get the top decade.
    """
    rng = as_generator(rng)
    degrees = power_law_degree_sequence(n, gamma, min_degree, max_degree, rng)
    order = np.argsort(-degrees)  # highest degree first
    stubs = degrees.copy()

    g: nx.Graph = nx.Graph()
    g.add_nodes_from(range(n))

    if n == 1:
        pass
    else:
        # Step 2: spanning core among the top sqrt(n) nodes (ring + chords)
        core_size = max(2, min(n, int(math.isqrt(n))))
        core = [int(v) for v in order[:core_size]]
        for i in range(1, len(core)):
            # attach each core node to a random earlier core node (tree),
            # preferentially by degree to concentrate the backbone
            earlier = core[:i]
            w = degrees[earlier].astype(float)
            target = int(rng.choice(earlier, p=w / w.sum()))
            g.add_edge(core[i], target)
            stubs[core[i]] -= 1
            stubs[target] -= 1

        # Step 3: preferential attachment of every remaining node
        in_graph = set(core)
        for v in order[core_size:]:
            v = int(v)
            _preferential_attach(g, stubs, v, in_graph, rng)
            in_graph.add(v)

        # Step 4: consume remaining stubs pairwise, preferring stub-rich nodes
        _fill_degrees(g, stubs, rng)

    # Step 5: geometric embedding and link annotations
    pos = rng.random((n, 2))
    nx.set_node_attributes(g, {i: tuple(pos[i]) for i in range(n)}, "pos")
    lo, hi = bandwidth_range
    if lo <= 0 or hi < lo:
        raise TopologyError(f"bad bandwidth range {bandwidth_range}")
    log_lo, log_hi = math.log(lo), math.log(hi)
    for u, v in g.edges:
        dist = float(np.hypot(*(pos[u] - pos[v])))
        g.edges[u, v]["delay"] = hop_delay + delay_per_unit * dist
        # core links (both endpoints high degree) skew toward high bandwidth
        boost = 0.5 if (g.degree[u] > 3 and g.degree[v] > 3) else 0.0
        frac = min(1.0, rng.random() * (1.0 - boost) + boost)
        g.edges[u, v]["bandwidth"] = math.exp(log_lo + frac * (log_hi - log_lo))

    assert n <= 1 or nx.is_connected(g), "generator must produce a connected graph"
    return g


def _fill_degrees(g: nx.Graph, stubs: np.ndarray, rng: np.random.Generator) -> None:
    """Greedy stub matching: repeatedly join the two stub-richest nodes."""
    # Work on a shuffled candidate list to avoid deterministic pathologies.
    for _ in range(4):  # a few passes; leftover stubs are acceptable (Inet's are too)
        candidates = [int(v) for v in np.flatnonzero(stubs > 0)]
        if len(candidates) < 2:
            return
        rng.shuffle(candidates)
        candidates.sort(key=lambda v: -stubs[v])
        used = set()
        for i, u in enumerate(candidates):
            if u in used or stubs[u] <= 0:
                continue
            for v in candidates[i + 1 :]:
                if v in used or stubs[v] <= 0 or g.has_edge(u, v) or u == v:
                    continue
                g.add_edge(u, v)
                stubs[u] -= 1
                stubs[v] -= 1
                if stubs[v] <= 0:
                    used.add(v)
                if stubs[u] <= 0:
                    used.add(u)
                    break
