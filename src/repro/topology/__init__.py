"""IP-layer and overlay topology generation + shortest-path routing."""

from .inet import TopologyError, generate_ip_network, power_law_degree_sequence
from .maintenance import LiveOverlayView, OverlayMaintainer, PartitionError
from .overlay import (
    Overlay,
    mesh_overlay,
    peer_delay_matrix,
    power_law_overlay,
    random_overlay,
    select_peers,
    wan_overlay,
)
from .routing import IPRouter, OverlayRouter, graph_to_sparse

__all__ = [
    "IPRouter",
    "LiveOverlayView",
    "OverlayMaintainer",
    "PartitionError",
    "Overlay",
    "OverlayRouter",
    "TopologyError",
    "generate_ip_network",
    "graph_to_sparse",
    "mesh_overlay",
    "peer_delay_matrix",
    "power_law_degree_sequence",
    "power_law_overlay",
    "random_overlay",
    "select_peers",
    "wan_overlay",
]
