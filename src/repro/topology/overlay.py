"""P2P service overlay construction.

The paper runs SpiderNet on 1000 peers selected from a 10 000-node IP
network, "connected into different overlay topologies (e.g., mesh,
power-law graph)", and notes the composition system is orthogonal to the
overlay topology.  This module builds those overlays:

* :func:`mesh_overlay` — topologically-aware mesh: each peer links to its
  ``k`` nearest peers by IP-layer delay (the Ratnasamy et al. style the
  paper cites);
* :func:`power_law_overlay` — preferential-attachment overlay among peers;
* :func:`random_overlay` — uniform random ``k``-neighbour overlay (control);
* :func:`wan_overlay` — the PlanetLab substitute: a smaller full-mesh
  overlay whose pairwise latencies are drawn from a two-region (US/EU)
  log-normal RTT model rather than an explicit IP layer.  See DESIGN.md
  ("Substitutions").

Every overlay link carries ``delay`` (one-way seconds, from IP shortest
path or the WAN model) and ``bandwidth`` (Mbps, the IP bottleneck capped
by a peer access-link capacity — peers are edge hosts, not routers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np
from scipy.sparse.csgraph import dijkstra

from ..sim.rng import as_generator
from .inet import TopologyError, generate_ip_network
from .routing import IPRouter, OverlayRouter, graph_to_sparse

__all__ = [
    "Overlay",
    "mesh_overlay",
    "power_law_overlay",
    "random_overlay",
    "wan_overlay",
    "select_peers",
    "peer_delay_matrix",
]


@dataclass
class Overlay:
    """A constructed P2P service overlay.

    ``graph`` nodes are peer ids ``0..n_peers-1``; ``ip_of[p]`` maps a peer
    to its router when an IP layer exists (``None`` for :func:`wan_overlay`).
    ``router`` answers overlay shortest-path queries; peers exchange
    messages along overlay paths, so the message latency between two peers
    is ``router.delay(a, b)``.
    """

    graph: nx.Graph
    router: OverlayRouter
    ip_of: Optional[Dict[int, int]] = None
    ip_graph: Optional[nx.Graph] = None
    kind: str = "overlay"
    # memoized per-pair additive loss (the overlay is static for a run;
    # clear_caches() is the invalidation hook if it is ever rebuilt)
    _loss_cache: Dict[Tuple[int, int], float] = field(
        default_factory=dict, repr=False, compare=False
    )
    # dependants keeping overlay-derived caches (e.g. BCP's per-pair link
    # QoS) register here so clear_caches() invalidates them too
    _cache_listeners: List = field(default_factory=list, repr=False, compare=False)

    @property
    def n_peers(self) -> int:
        return self.graph.number_of_nodes()

    def peers(self) -> List[int]:
        return list(self.graph.nodes)

    def latency(self, a: int, b: int) -> float:
        """One-way message latency between peers (overlay shortest path)."""
        return self.router.delay(a, b)

    def link_bandwidth(self, a: int, b: int) -> float:
        return float(self.graph.edges[a, b]["bandwidth"])

    def link_loss_add(self, a: int, b: int) -> float:
        """Additive (−log survival) loss of one overlay link."""
        return float(self.graph.edges[a, b]["loss_add"])

    def path_loss_add(self, a: int, b: int) -> float:
        """Additive loss accumulated along the routed overlay path a→b."""
        if a == b:
            return 0.0
        key = (a, b)
        hit = self._loss_cache.get(key)
        if hit is None:
            hit = sum(self.link_loss_add(u, v) for u, v in self.router.links(a, b))
            self._loss_cache[key] = hit
        return hit

    def add_cache_listener(self, callback) -> None:
        """Register a callback fired by :meth:`clear_caches`."""
        self._cache_listeners.append(callback)

    def clear_caches(self) -> None:
        """Flush memoized routing state (loss sums + router path caches)
        and notify registered dependants."""
        self._loss_cache.clear()
        self.router.clear_cache()
        for callback in self._cache_listeners:
            callback()


def select_peers(ip_graph: nx.Graph, n_peers: int, rng=None) -> List[int]:
    """Randomly select ``n_peers`` routers to host SpiderNet peers."""
    rng = as_generator(rng)
    n = ip_graph.number_of_nodes()
    if n_peers > n:
        raise TopologyError(f"cannot place {n_peers} peers on {n} routers")
    return [int(v) for v in rng.choice(n, size=n_peers, replace=False)]


def peer_delay_matrix(ip_graph: nx.Graph, peer_routers: List[int]) -> np.ndarray:
    """IP shortest-path delay between every pair of peers (P×P)."""
    matrix, nodelist = graph_to_sparse(ip_graph, "delay")
    index = {v: i for i, v in enumerate(nodelist)}
    rows = [index[r] for r in peer_routers]
    dist = dijkstra(matrix, directed=False, indices=rows)
    return dist[:, rows]


def _annotate_and_wrap(
    g: nx.Graph,
    ip_of: Optional[Dict[int, int]],
    ip_graph: Optional[nx.Graph],
    kind: str,
) -> Overlay:
    if g.number_of_nodes() > 1 and not nx.is_connected(g):
        # Patch connectivity: link each extra component to the giant one by
        # its lowest-latency candidate pair.  Real overlays bootstrap this way.
        comps = sorted(nx.connected_components(g), key=len, reverse=True)
        main = comps[0]
        anchor = min(main)
        for comp in comps[1:]:
            v = min(comp)
            g.add_edge(v, anchor, delay=g.graph.get("patch_delay", 0.08), bandwidth=10.0)
    # per-link loss rate grows with propagation delay (longer WAN paths
    # cross more lossy segments); stored in the additive −log domain so
    # the QoS layer can simply sum it (see repro.core.qos)
    for u, v, data in g.edges(data=True):
        if "loss_add" not in data:
            rate = min(0.02, 2e-4 + 0.02 * float(data["delay"]))
            data["loss_add"] = -math.log1p(-rate)
    return Overlay(graph=g, router=OverlayRouter(g), ip_of=ip_of, ip_graph=ip_graph, kind=kind)


def _edge_attrs_from_ip(
    ip_router: IPRouter, ra: int, rb: int, access_bw: float
) -> Tuple[float, float]:
    delay = ip_router.delay(ra, rb)
    bw = min(ip_router.path_bandwidth(ra, rb), access_bw)
    return delay, bw


def mesh_overlay(
    ip_graph: nx.Graph,
    n_peers: int,
    k: int = 4,
    access_bandwidth: tuple[float, float] = (5.0, 100.0),
    rng=None,
) -> Overlay:
    """Topologically-aware mesh: each peer connects to its k IP-nearest peers."""
    rng = as_generator(rng)
    routers = select_peers(ip_graph, n_peers, rng)
    dist = peer_delay_matrix(ip_graph, routers)
    ip_router = IPRouter(ip_graph)
    g = nx.Graph()
    g.add_nodes_from(range(n_peers))
    access = rng.uniform(*access_bandwidth, size=n_peers)
    order = np.argsort(dist, axis=1)
    for p in range(n_peers):
        neighbours = [int(q) for q in order[p, 1 : k + 1]]  # skip self at col 0
        for q in neighbours:
            if g.has_edge(p, q):
                continue
            delay = float(dist[p, q])
            bw = min(
                ip_router.path_bandwidth(routers[p], routers[q]),
                access[p],
                access[q],
            )
            g.add_edge(p, q, delay=delay, bandwidth=float(bw))
    ip_of = {p: routers[p] for p in range(n_peers)}
    return _annotate_and_wrap(g, ip_of, ip_graph, "mesh")


def power_law_overlay(
    ip_graph: nx.Graph,
    n_peers: int,
    m: int = 2,
    access_bandwidth: tuple[float, float] = (5.0, 100.0),
    rng=None,
) -> Overlay:
    """Preferential-attachment (Barabási–Albert style) overlay among peers."""
    if m < 1:
        raise TopologyError(f"attachment degree must be >= 1, got {m}")
    rng = as_generator(rng)
    routers = select_peers(ip_graph, n_peers, rng)
    dist = peer_delay_matrix(ip_graph, routers)
    ip_router = IPRouter(ip_graph)
    access = rng.uniform(*access_bandwidth, size=n_peers)
    g = nx.Graph()
    g.add_nodes_from(range(n_peers))
    # seed clique of m+1 peers, then preferential attachment
    seed = list(range(min(m + 1, n_peers)))
    for i in seed:
        for j in seed:
            if i < j:
                g.add_edge(i, j)
    degrees = np.zeros(n_peers)
    for u, v in g.edges:
        degrees[u] += 1
        degrees[v] += 1
    for p in range(len(seed), n_peers):
        existing = np.arange(p)
        w = degrees[existing] + 1e-9
        targets = rng.choice(existing, size=min(m, p), replace=False, p=w / w.sum())
        for q in targets:
            g.add_edge(p, int(q))
            degrees[p] += 1
            degrees[int(q)] += 1
    for u, v in g.edges:
        bw = min(
            ip_router.path_bandwidth(routers[u], routers[v]), access[u], access[v]
        )
        g.edges[u, v]["delay"] = float(dist[u, v])
        g.edges[u, v]["bandwidth"] = float(bw)
    ip_of = {p: routers[p] for p in range(n_peers)}
    return _annotate_and_wrap(g, ip_of, ip_graph, "power-law")


def random_overlay(
    ip_graph: nx.Graph,
    n_peers: int,
    k: int = 4,
    access_bandwidth: tuple[float, float] = (5.0, 100.0),
    rng=None,
) -> Overlay:
    """Each peer links to k uniformly random other peers (control topology)."""
    rng = as_generator(rng)
    routers = select_peers(ip_graph, n_peers, rng)
    dist = peer_delay_matrix(ip_graph, routers)
    ip_router = IPRouter(ip_graph)
    access = rng.uniform(*access_bandwidth, size=n_peers)
    g = nx.Graph()
    g.add_nodes_from(range(n_peers))
    for p in range(n_peers):
        others = [q for q in range(n_peers) if q != p]
        for q in rng.choice(others, size=min(k, len(others)), replace=False):
            q = int(q)
            if not g.has_edge(p, q):
                bw = min(
                    ip_router.path_bandwidth(routers[p], routers[q]),
                    access[p],
                    access[q],
                )
                g.add_edge(p, q, delay=float(dist[p, q]), bandwidth=float(bw))
    ip_of = {p: routers[p] for p in range(n_peers)}
    return _annotate_and_wrap(g, ip_of, ip_graph, "random")


def wan_overlay(
    n_peers: int = 102,
    us_fraction: float = 0.7,
    intra_us_rtt_ms: float = 40.0,
    intra_eu_rtt_ms: float = 30.0,
    transatlantic_rtt_ms: float = 110.0,
    sigma: float = 0.35,
    access_bandwidth: tuple[float, float] = (2.0, 50.0),
    rng=None,
) -> Overlay:
    """The PlanetLab substitute: full-mesh WAN overlay with log-normal RTTs.

    Peers are assigned to a US or EU region; one-way latency between a
    pair is half a log-normal RTT whose median depends on the region pair
    (values are PlanetLab-era medians; see DESIGN.md).  A full mesh is
    used because PlanetLab hosts talk directly over the Internet — the
    "overlay path" between two peers is a single overlay link.
    """
    rng = as_generator(rng)
    if n_peers < 2:
        raise TopologyError("WAN overlay needs at least 2 peers")
    regions = np.where(rng.random(n_peers) < us_fraction, 0, 1)  # 0=US, 1=EU
    medians_ms = {
        (0, 0): intra_us_rtt_ms,
        (1, 1): intra_eu_rtt_ms,
        (0, 1): transatlantic_rtt_ms,
        (1, 0): transatlantic_rtt_ms,
    }
    access = rng.uniform(*access_bandwidth, size=n_peers)
    g = nx.Graph()
    g.add_nodes_from(range(n_peers))
    nx.set_node_attributes(
        g, {p: ("US" if regions[p] == 0 else "EU") for p in range(n_peers)}, "region"
    )
    for a in range(n_peers):
        for b in range(a + 1, n_peers):
            median = medians_ms[(int(regions[a]), int(regions[b]))]
            rtt_ms = median * float(np.exp(sigma * rng.standard_normal()))
            g.add_edge(
                a,
                b,
                delay=rtt_ms / 2.0 / 1000.0,
                bandwidth=float(min(access[a], access[b])),
            )
    return _annotate_and_wrap(g, None, None, "wan")
