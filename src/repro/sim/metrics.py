"""Measurement instruments for experiments.

The paper's evaluation reports ratios (QoS success rate), rates over time
(failure frequency per time unit), latency breakdowns (setup time split
into discovery / composition phases) and message overhead comparisons.
These collectors implement exactly those aggregations so experiment
drivers stay declarative.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = [
    "Counter",
    "RatioMeter",
    "TimeSeries",
    "RateOverTime",
    "LatencyStats",
    "MessageLedger",
    "summary_stats",
]


def summary_stats(values: Iterable[float]) -> dict:
    """mean/std/min/max/percentiles of a sample, NaN-safe on empty input."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {
            "count": 0,
            "mean": math.nan,
            "std": math.nan,
            "min": math.nan,
            "max": math.nan,
            "p50": math.nan,
            "p95": math.nan,
            "p99": math.nan,
        }
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=0)),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
    }


class Counter:
    """Named monotone counters (events, drops, retries...)."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def incr(self, name: str, by: int = 1) -> None:
        if by < 0:
            raise ValueError("counters are monotone; use a gauge for decrements")
        self._counts[name] += by

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({dict(self._counts)!r})"


class RatioMeter:
    """Success/total ratio — the paper's "QoS success rate" metric."""

    def __init__(self) -> None:
        self.successes = 0
        self.total = 0

    def record(self, success: bool) -> None:
        self.total += 1
        if success:
            self.successes += 1

    @property
    def ratio(self) -> float:
        return self.successes / self.total if self.total else math.nan

    def merge(self, other: "RatioMeter") -> "RatioMeter":
        out = RatioMeter()
        out.successes = self.successes + other.successes
        out.total = self.total + other.total
        return out


@dataclass
class TimeSeries:
    """(time, value) samples with interpolation-free aggregation."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError("time series must be recorded in time order")
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    def window_mean(self, t0: float, t1: float) -> float:
        vals = [v for t, v in zip(self.times, self.values) if t0 <= t < t1]
        return float(np.mean(vals)) if vals else math.nan

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)


class RateOverTime:
    """Event counts bucketed into fixed-width time bins.

    Figure 9's "failure frequency" (number of failures per time unit)
    is exactly a binned event rate.
    """

    def __init__(self, bin_width: float) -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = float(bin_width)
        self._bins: Dict[int, int] = defaultdict(int)

    def record(self, t: float, count: int = 1) -> None:
        if t < 0:
            raise ValueError("negative time")
        self._bins[int(t // self.bin_width)] += count

    def series(self, until: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Return (bin_start_times, counts) with empty bins filled as zero."""
        if not self._bins and until is None:
            return np.asarray([]), np.asarray([])
        last = max(self._bins) if self._bins else -1
        if until is not None:
            last = max(last, int(until // self.bin_width) - 1)
        idx = np.arange(0, last + 1)
        counts = np.asarray([self._bins.get(int(i), 0) for i in idx], dtype=float)
        return idx * self.bin_width, counts

    @property
    def total(self) -> int:
        return sum(self._bins.values())


class LatencyStats:
    """Latency samples split by named phase (discovery/composition/init)."""

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = defaultdict(list)

    def record(self, phase: str, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative latency for {phase}: {value}")
        self._samples[phase].append(float(value))

    def phases(self) -> List[str]:
        return sorted(self._samples)

    def mean(self, phase: str) -> float:
        vals = self._samples.get(phase, [])
        return float(np.mean(vals)) if vals else math.nan

    def stats(self, phase: str) -> dict:
        return summary_stats(self._samples.get(phase, []))

    def totals(self) -> dict:
        """Per-phase means plus their sum (the stacked bar of Fig. 10)."""
        out = {p: self.mean(p) for p in self.phases()}
        out["total"] = float(np.nansum(list(out.values()))) if out else math.nan
        return out


class MessageLedger:
    """Counts and sizes of protocol messages by category.

    The §6.1 overhead claim ("more than one order of magnitude less
    overhead" than centralized global-state maintenance) is a message
    count comparison; this ledger is the scoreboard for both sides.
    """

    def __init__(self) -> None:
        self.count: Dict[str, int] = defaultdict(int)
        self.bytes: Dict[str, int] = defaultdict(int)

    def record(self, category: str, size_bytes: int = 0, count: int = 1) -> None:
        self.count[category] += count
        self.bytes[category] += size_bytes * count if size_bytes else 0

    def snapshot(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """A point-in-time copy of (counts, bytes) for delta accounting."""
        return dict(self.count), dict(self.bytes)

    def delta_since(self, snap: Tuple[Dict[str, int], Dict[str, int]]) -> Dict[str, Tuple[int, int]]:
        """Per-category (count, bytes) recorded since ``snapshot()``."""
        counts, sizes = snap
        out: Dict[str, Tuple[int, int]] = {}
        for cat, c in self.count.items():
            dc = c - counts.get(cat, 0)
            db = self.bytes.get(cat, 0) - sizes.get(cat, 0)
            if dc or db:
                out[cat] = (dc, db)
        return out

    def replay(self, deltas: Dict[str, Tuple[int, int]]) -> None:
        """Re-charge a recorded delta: *logical* messages whose physical
        transmission was elided (e.g. a memoized discovery lookup) still
        count toward overhead figures."""
        for cat, (dc, db) in deltas.items():
            self.count[cat] += dc
            self.bytes[cat] += db

    def total_count(self, categories: Optional[Iterable[str]] = None) -> int:
        if categories is None:
            return sum(self.count.values())
        return sum(self.count.get(c, 0) for c in categories)

    def total_bytes(self, categories: Optional[Iterable[str]] = None) -> int:
        if categories is None:
            return sum(self.bytes.values())
        return sum(self.bytes.get(c, 0) for c in categories)

    def as_dict(self) -> dict:
        return {"count": dict(self.count), "bytes": dict(self.bytes)}
