"""Deterministic randomness utilities.

Every stochastic component in the reproduction takes an explicit
``numpy.random.Generator``.  This module centralises seed handling so an
experiment seeded with one integer is reproducible bit-for-bit while its
sub-components (topology, workload, churn, protocol tie-breaking) draw
from independent streams.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

__all__ = ["as_generator", "spawn", "stable_hash64", "weighted_choice_without_replacement"]

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce an int / Generator / SeedSequence / None into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)] if hasattr(
        rng.bit_generator, "seed_seq"
    ) and rng.bit_generator.seed_seq is not None else [
        np.random.default_rng(rng.integers(0, 2**63 - 1)) for _ in range(n)
    ]


def stable_hash64(text: str) -> int:
    """A stable (process-independent) 64-bit hash of a string.

    ``hash()`` is salted per process, which would make DHT key placement
    non-reproducible across runs; FNV-1a is tiny and stable.
    """
    h = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def weighted_choice_without_replacement(
    rng: np.random.Generator,
    items: Sequence,
    weights: Iterable[float],
    k: int,
) -> list:
    """Pick ``k`` distinct items with probability proportional to weight.

    Used for degree-preferential attachment and probe target selection.
    Falls back to uniform if all weights are zero.
    """
    items = list(items)
    w = np.asarray(list(weights), dtype=float)
    if len(items) != len(w):
        raise ValueError("items and weights length mismatch")
    k = min(k, len(items))
    if k <= 0:
        return []
    total = w.sum()
    if total <= 0 or not np.isfinite(total):
        idx = rng.choice(len(items), size=k, replace=False)
        return [items[i] for i in idx]
    p = w / total
    idx = rng.choice(len(items), size=k, replace=False, p=p)
    return [items[i] for i in idx]
