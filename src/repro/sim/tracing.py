"""Structured event tracing for simulations.

Experiments report aggregates; debugging a protocol needs the *story* —
which peer died when, which session switched to which backup, what each
composition decided.  :class:`EventTrace` is a lightweight structured
recorder: timestamped, categorised events with arbitrary fields,
filterable in memory and exportable as JSON-lines for external tools.

Convenience taps wire a trace to the existing observation seams (churn
callbacks, session-failure listeners) without touching protocol code.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from .engine import Simulator

__all__ = ["TraceEvent", "EventTrace", "trace_churn", "trace_sessions"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: when, what kind, and its payload fields."""

    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "category": self.category, **self.fields}


class EventTrace:
    """An append-only, bounded, queryable event log.

    ``capacity`` bounds memory for long runs: when full, the *oldest*
    events are dropped (the recent story is the useful one) and
    :attr:`dropped` counts the loss so analyses know the log is partial.
    """

    def __init__(self, sim: Optional[Simulator] = None, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    def record(self, category: str, time: Optional[float] = None, **fields: Any) -> TraceEvent:
        """Append an event; time defaults to the simulator clock."""
        if time is None:
            time = self.sim.now if self.sim is not None else 0.0
        event = TraceEvent(time=float(time), category=category, fields=fields)
        self.events.append(event)
        if len(self.events) > self.capacity:
            overflow = len(self.events) - self.capacity
            del self.events[:overflow]
            self.dropped += overflow
        return event

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    def select(
        self,
        category: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
        where: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Filter events by category, time window, and custom predicate."""
        out = []
        for e in self.events:
            if category is not None and e.category != category:
                continue
            if not since <= e.time < until:
                continue
            if where is not None and not where(e):
                continue
            out.append(e)
        return out

    def categories(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for e in self.events:
            counts[e.category] = counts.get(e.category, 0) + 1
        return counts

    # ------------------------------------------------------------------
    def to_jsonl(self, path: Union[str, pathlib.Path]) -> int:
        """Write the trace as JSON-lines; returns the event count."""
        p = pathlib.Path(path)
        with p.open("w") as fh:
            for e in self.events:
                fh.write(json.dumps(e.as_dict(), default=str) + "\n")
        return len(self.events)

    def tail(self, n: int = 20) -> List[TraceEvent]:
        return self.events[-n:]


# ----------------------------------------------------------------------
# taps for the existing observation seams
# ----------------------------------------------------------------------
def trace_churn(churn, trace: EventTrace) -> None:
    """Record every peer departure/arrival the churn process emits."""
    churn.on_departure(lambda peer, t: trace.record("peer_departed", time=t, peer=peer))
    churn.on_arrival(lambda peer, t: trace.record("peer_arrived", time=t, peer=peer))


def trace_sessions(manager, trace: EventTrace) -> None:
    """Record session failures and whether recovery absorbed them."""
    manager.on_failure(
        lambda t, recovered: trace.record(
            "session_failure", time=t, recovered=recovered
        )
    )
