"""Peer churn processes.

Figure 9's dynamic P2P network is driven by a simple churn model: during
each time unit, a fixed fraction (1 % in the paper) of peers fail at
random.  We implement that model plus a session-time arrival process so
the overlay population can be held roughly stationary, and an optional
exponential-lifetime model for finer-grained churn studies.

Listeners (DHT, discovery registry, session manager) subscribe to
departure/arrival callbacks; the churn process is the only component
allowed to flip liveness in the :class:`~repro.sim.network.MessageNetwork`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from .engine import PeriodicTask, Simulator
from .network import MessageNetwork
from .rng import as_generator

__all__ = ["ChurnProcess", "ExponentialChurn"]

DepartureListener = Callable[[int, float], None]
ArrivalListener = Callable[[int, float], None]


class ChurnProcess:
    """Per-time-unit fractional failure churn (the paper's Fig. 9 model).

    Every ``time_unit`` of virtual time, each *alive* peer independently
    fails with probability ``fail_fraction``.  If ``revive`` is true, a
    failed peer rejoins after ``downtime`` time units (modelling peer
    arrivals that keep the population stationary, as P2P measurement
    studies of the era observed).
    """

    def __init__(
        self,
        sim: Simulator,
        network: MessageNetwork,
        fail_fraction: float = 0.01,
        time_unit: float = 1.0,
        revive: bool = True,
        downtime: float = 10.0,
        rng=None,
        protected: Optional[set] = None,
    ) -> None:
        if not 0.0 <= fail_fraction <= 1.0:
            raise ValueError(f"fail_fraction out of range: {fail_fraction}")
        self.sim = sim
        self.network = network
        self.fail_fraction = fail_fraction
        self.time_unit = time_unit
        self.revive = revive
        self.downtime = downtime
        self.rng = as_generator(rng)
        # peers that must never fail (e.g. the measurement source/dest,
        # matching the paper's assumption that endpoints are stable)
        self.protected = set(protected or ())
        self._departure_listeners: List[DepartureListener] = []
        self._arrival_listeners: List[ArrivalListener] = []
        self._task: Optional[PeriodicTask] = None
        self.failures = 0
        self.revivals = 0

    # ------------------------------------------------------------------
    def on_departure(self, fn: DepartureListener) -> None:
        self._departure_listeners.append(fn)

    def on_arrival(self, fn: ArrivalListener) -> None:
        self._arrival_listeners.append(fn)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("churn already started")
        self._task = self.sim.every(self.time_unit, self._tick)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        alive = [n for n in self.network.alive_nodes() if n not in self.protected]
        if not alive:
            return
        # Bernoulli per peer: matches "1% of peers randomly fail during
        # each time unit" in expectation and variance.
        draws = self.rng.random(len(alive))
        for node_id, u in zip(alive, draws):
            if u < self.fail_fraction:
                self.fail(node_id)

    def fail(self, node_id: int) -> None:
        """Force a specific peer down (also used by failure-injection tests)."""
        if not self.network.is_alive(node_id):
            return
        self.network.set_alive(node_id, False)
        self.failures += 1
        now = self.sim.now
        for fn in self._departure_listeners:
            fn(node_id, now)
        if self.revive:
            self.sim.schedule(self.downtime, self._revive, node_id)

    def _revive(self, node_id: int) -> None:
        if node_id not in self.network.nodes():
            return
        if self.network.is_alive(node_id):
            return
        self.network.set_alive(node_id, True)
        self.revivals += 1
        now = self.sim.now
        for fn in self._arrival_listeners:
            fn(node_id, now)


class ExponentialChurn:
    """Exponential-lifetime churn: each peer stays up Exp(mean_lifetime).

    A finer-grained alternative to the per-tick model, used by ablation
    benchmarks to check recovery behaviour is not an artefact of the
    synchronous failure ticks.
    """

    def __init__(
        self,
        sim: Simulator,
        network: MessageNetwork,
        mean_lifetime: float,
        mean_downtime: float = 10.0,
        rng=None,
        protected: Optional[set] = None,
    ) -> None:
        if mean_lifetime <= 0:
            raise ValueError("mean_lifetime must be positive")
        self.sim = sim
        self.network = network
        self.mean_lifetime = mean_lifetime
        self.mean_downtime = mean_downtime
        self.rng = as_generator(rng)
        self.protected = set(protected or ())
        self._departure_listeners: List[DepartureListener] = []
        self._arrival_listeners: List[ArrivalListener] = []
        self.failures = 0

    def on_departure(self, fn: DepartureListener) -> None:
        self._departure_listeners.append(fn)

    def on_arrival(self, fn: ArrivalListener) -> None:
        self._arrival_listeners.append(fn)

    def start(self) -> None:
        for node_id in self.network.alive_nodes():
            if node_id not in self.protected:
                self._arm_failure(node_id)

    def _arm_failure(self, node_id: int) -> None:
        delay = float(self.rng.exponential(self.mean_lifetime))
        self.sim.schedule(delay, self._fail, node_id)

    def _fail(self, node_id: int) -> None:
        if not self.network.is_alive(node_id):
            return
        self.network.set_alive(node_id, False)
        self.failures += 1
        for fn in self._departure_listeners:
            fn(node_id, self.sim.now)
        delay = float(self.rng.exponential(self.mean_downtime))
        self.sim.schedule(delay, self._revive, node_id)

    def _revive(self, node_id: int) -> None:
        if node_id not in self.network.nodes() or self.network.is_alive(node_id):
            return
        self.network.set_alive(node_id, True)
        for fn in self._arrival_listeners:
            fn(node_id, self.sim.now)
        self._arm_failure(node_id)
