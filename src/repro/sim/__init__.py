"""Discrete-event simulation substrate (engine, network, churn, metrics)."""

from .churn import ChurnProcess, ExponentialChurn
from .engine import EventHandle, PeriodicTask, SimulationError, Simulator
from .metrics import (
    Counter,
    LatencyStats,
    MessageLedger,
    RateOverTime,
    RatioMeter,
    TimeSeries,
    summary_stats,
)
from .network import Message, MessageNetwork, UnknownNodeError
from .rng import as_generator, spawn, stable_hash64, weighted_choice_without_replacement
from .tracing import EventTrace, TraceEvent, trace_churn, trace_sessions

__all__ = [
    "ChurnProcess",
    "Counter",
    "EventHandle",
    "EventTrace",
    "ExponentialChurn",
    "LatencyStats",
    "Message",
    "MessageLedger",
    "MessageNetwork",
    "PeriodicTask",
    "RateOverTime",
    "RatioMeter",
    "SimulationError",
    "Simulator",
    "TimeSeries",
    "TraceEvent",
    "UnknownNodeError",
    "as_generator",
    "spawn",
    "stable_hash64",
    "summary_stats",
    "trace_churn",
    "trace_sessions",
    "weighted_choice_without_replacement",
]
