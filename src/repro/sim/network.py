"""Simulated message-passing network between peers.

Peers communicate exclusively by messages with per-pair latencies taken
from the underlying (routed) topology, mirroring the paper's overlay in
which every protocol step — DHT routing, composition probes, session
acks, maintenance probes — is an application-level message.

The network is transport only: it knows how to deliver, drop (when the
destination is down), count, and time messages.  Protocol behaviour
lives in the node objects' ``on_message``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Protocol

from .engine import Simulator
from .metrics import MessageLedger

__all__ = ["Message", "NetworkNode", "MessageNetwork", "UnknownNodeError"]


class UnknownNodeError(KeyError):
    """Raised when sending to/from a node that was never registered."""


@dataclass
class Message:
    """An application-level message in flight.

    ``category`` feeds the overhead ledger (e.g. ``"bcp_probe"``,
    ``"dht_route"``, ``"state_update"``); ``size`` is an abstract byte
    count used only for overhead accounting, not for bandwidth modelling
    (probe messages are tiny compared to media streams).
    """

    src: int
    dst: int
    payload: Any
    category: str = "generic"
    size: int = 64
    sent_at: float = 0.0
    msg_id: int = field(default=0)


class NetworkNode(Protocol):
    """What :class:`MessageNetwork` needs from a peer object."""

    node_id: int

    def on_message(self, msg: Message) -> None:  # pragma: no cover - protocol
        ...


LatencyFn = Callable[[int, int], float]


class MessageNetwork:
    """Delivers messages between registered nodes with pairwise latency.

    Node liveness is tracked here (a single source of truth shared by the
    churn process, the DHT and the composition layer): messages to a dead
    node are silently dropped — exactly the failure mode a P2P overlay
    observes when a peer departs without notice.
    """

    def __init__(
        self,
        sim: Simulator,
        latency_fn: LatencyFn,
        ledger: Optional[MessageLedger] = None,
        default_latency: float = 0.050,
    ) -> None:
        self.sim = sim
        self.latency_fn = latency_fn
        self.ledger = ledger if ledger is not None else MessageLedger()
        self.default_latency = default_latency
        self._nodes: Dict[int, NetworkNode] = {}
        self._alive: Dict[int, bool] = {}
        self._msg_ids = itertools.count(1)
        self.dropped = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, node: NetworkNode) -> None:
        self._nodes[node.node_id] = node
        self._alive[node.node_id] = True

    def unregister(self, node_id: int) -> None:
        self._nodes.pop(node_id, None)
        self._alive.pop(node_id, None)

    def node(self, node_id: int) -> NetworkNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def nodes(self) -> list[int]:
        return list(self._nodes)

    def is_alive(self, node_id: int) -> bool:
        return self._alive.get(node_id, False)

    def set_alive(self, node_id: int, alive: bool) -> None:
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        self._alive[node_id] = alive

    def alive_nodes(self) -> list[int]:
        return [n for n, a in self._alive.items() if a]

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def latency(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        d = self.latency_fn(src, dst)
        if d is None or d < 0:
            return self.default_latency
        return d

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        category: str = "generic",
        size: int = 64,
    ) -> Message:
        """Send asynchronously; delivery is scheduled after the pair latency.

        A message is charged to the ledger when *sent* (the sender pays the
        overhead whether or not the destination is still alive — matching
        how overhead is measured in the paper).
        """
        if src not in self._nodes:
            raise UnknownNodeError(src)
        if dst not in self._nodes:
            # Destination left the overlay entirely: charge and drop.
            self.ledger.record(category, size)
            self.dropped += 1
            return Message(src, dst, payload, category, size, self.sim.now, next(self._msg_ids))
        msg = Message(
            src=src,
            dst=dst,
            payload=payload,
            category=category,
            size=size,
            sent_at=self.sim.now,
            msg_id=next(self._msg_ids),
        )
        self.ledger.record(category, size)
        self.sim.schedule(self.latency(src, dst), self._deliver, msg)
        return msg

    def _deliver(self, msg: Message) -> None:
        node = self._nodes.get(msg.dst)
        if node is None or not self._alive.get(msg.dst, False):
            self.dropped += 1
            return
        node.on_message(msg)

    # ------------------------------------------------------------------
    # synchronous helpers (for algorithmic-mode code that still wants
    # overhead accounting without event-driven delivery)
    # ------------------------------------------------------------------
    def charge(self, category: str, count: int = 1, size: int = 64) -> None:
        """Account for ``count`` messages without simulating delivery."""
        self.ledger.record(category, size, count)
