"""Discrete-event simulation engine.

This is the substrate the paper's custom C++ "event-driven P2P service
overlay simulator" provides: a monotone virtual clock, an event queue,
cancellable timers, and periodic processes.  Everything above it (DHT
messages, composition probes, churn, maintenance probing) is expressed
as events scheduled on a :class:`Simulator`.

The engine is deliberately simple and allocation-light: events are
``(time, seq, EventHandle)`` tuples on a binary heap; cancellation is
lazy (a cancelled handle is skipped when popped) which keeps both
``schedule`` and ``cancel`` O(log n) / O(1).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "EventHandle",
    "Simulator",
    "PeriodicTask",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for invalid simulator usage (negative delays, time travel)."""


@dataclass(eq=False, slots=True)
class EventHandle:
    """A cancellable reference to a scheduled event.

    Instances are returned by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`.  Calling :meth:`cancel` prevents the
    callback from firing; cancelling an already-fired or already-cancelled
    event is a harmless no-op (soft-state timeouts rely on this).
    """

    time: float
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    cancelled: bool = False
    fired: bool = False

    def cancel(self) -> bool:
        """Cancel the event.  Returns True if it had not fired yet."""
        if self.fired or self.cancelled:
            return False
        self.cancelled = True
        return True

    @property
    def pending(self) -> bool:
        return not (self.fired or self.cancelled)


class Simulator:
    """A sequential discrete-event simulator with a float virtual clock.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(5.0, out.append, "b")
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> sim.run()
    >>> out
    ['a', 'b']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._events_executed = 0
        self._running = False

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (for overhead accounting)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of queued, not-yet-cancelled events."""
        return sum(1 for _, _, h in self._queue if h.pending)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> EventHandle:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"negative or NaN delay: {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args, **kwargs)

    def schedule_at(
        self, when: float, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> EventHandle:
        """Schedule ``fn`` at absolute virtual time ``when`` (>= now)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now={self._now}"
            )
        handle = EventHandle(time=when, fn=fn, args=args, kwargs=kwargs)
        heapq.heappush(self._queue, (when, next(self._seq), handle))
        return handle

    def every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start_after: Optional[float] = None,
        jitter: float = 0.0,
        rng=None,
        **kwargs: Any,
    ) -> "PeriodicTask":
        """Run ``fn`` every ``interval`` time units until stopped.

        ``jitter`` (fraction of the interval, requires ``rng``) desynchronises
        periodic processes, which matters when simulating many peers that
        would otherwise all fire state updates on the same tick.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval: {interval!r}")
        task = PeriodicTask(self, interval, fn, args, kwargs, jitter, rng)
        task._arm(interval if start_after is None else start_after)
        return task

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if none."""
        while self._queue:
            when, _, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = when
            handle.fired = True
            self._events_executed += 1
            handle.fn(*handle.args, **handle.kwargs)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        ``until`` stops the clock at that virtual time (events scheduled
        later stay queued and the clock is advanced to ``until``).
        ``max_events`` is a runaway guard for tests.
        """
        if self._running:
            raise SimulationError("run() is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                when, _, handle = self._queue[0]
                if until is not None and when > until:
                    break
                heapq.heappop(self._queue)
                if handle.cancelled:
                    continue
                self._now = when
                handle.fired = True
                self._events_executed += 1
                handle.fn(*handle.args, **handle.kwargs)
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway simulation?)"
                    )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def iterate(self, until: Optional[float] = None) -> Iterator[float]:
        """Generator form of :meth:`run`, yielding the clock after each event."""
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            if not self.step():
                break
            yield self._now
        if until is not None and until > self._now:
            self._now = until


class PeriodicTask:
    """A self-rescheduling periodic event; see :meth:`Simulator.every`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        jitter: float = 0.0,
        rng=None,
    ) -> None:
        if jitter and rng is None:
            raise SimulationError("jitter requires an rng")
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.jitter = jitter
        self.rng = rng
        self.stopped = False
        self.fire_count = 0
        self._handle: Optional[EventHandle] = None

    def _next_delay(self, base: float) -> float:
        if not self.jitter:
            return base
        # uniform jitter in [1-j, 1+j] * base, clamped positive
        factor = 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
        return max(base * factor, 1e-9)

    def _arm(self, delay: float) -> None:
        if self.stopped:
            return
        self._handle = self.sim.schedule(self._next_delay(delay), self._fire)

    def _fire(self) -> None:
        if self.stopped:
            return
        self.fire_count += 1
        self.fn(*self.args, **self.kwargs)
        self._arm(self.interval)

    def stop(self) -> None:
        """Stop the task; the pending occurrence (if any) is cancelled."""
        self.stopped = True
        if self._handle is not None:
            self._handle.cancel()
