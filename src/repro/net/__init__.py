"""Live peer runtime: the SpiderNet protocols over real asyncio transports.

The reproduction has three execution substrates for the same protocol
logic (see ``docs/ARCHITECTURE.md``):

* the synchronous wave execution in :mod:`repro.core.bcp`,
* the simulated event-driven execution in :mod:`repro.core.async_bcp`,
* this package — a **live runtime** where probes, session acks and
  maintenance pings are length-prefixed frames on asyncio transports.

All three call the same wrapped :class:`~repro.core.bcp.BCP` per-hop
methods, so Steps 2.1–2.4 of the paper's protocol exist exactly once.

Modules
-------
``codec``      versioned wire frames + ``to_wire``/``from_wire``
``transport``  ``LoopbackTransport`` (queues, injectable latency/loss)
               and ``TcpTransport`` (streams, connection pool)
``rpc``        request/response with timeouts, retries + backoff, dedup
``peer``       the peer daemon (probe processing, soft-state timers,
               session ack handling, maintenance pings)
``directory``  the per-peer slice of the distributed service directory
               plus the acceleration-tier bookkeeping (versions,
               popularity, replica rows, Bloom summaries)
``bloom``      the compact set summary piggybacked on lookup replies
``guard``      ``SharedStateGuard`` — seals shared registry/pool/DHT
               storage to prove distributed mode never reads them
``measurement`` the topology measurement plane: active probing, passive
               RTT sampling, per-link EWMA estimators, dead-path
               detection, and the ``MeasuredOverlayView`` adaptive
               routing feeds on
``accounting`` ``MessageLedger`` adapter mapping wire frames onto the
               simulation's overhead-accounting categories
``cluster``    boots N peers on localhost and composes end-to-end
``admission``  per-peer overload survival: session admission with fast
               ``Busy`` rejection, probe shedding/degradation, RPC
               throttling
``scaleout``   multi-process launcher + open-loop load driver
               (``python -m repro cluster``)
"""

from .accounting import LedgerTap
from .admission import AdmissionConfig, LoadGuard
from .codec import (
    CodecError,
    FrameReader,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    WIRE_VERSION_BINARY,
    decode_frame,
    encode_frame,
    from_wire,
    to_wire,
)
from .bloom import BloomFilter
from .cluster import ClusterConfig, LiveCluster
from .directory import DirectorySlice, DirectoryTierConfig
from .guard import SharedStateGuard, SharedStateViolation
from .measurement import (
    LinkEstimator,
    MeasuredOverlayView,
    MeasurementConfig,
    MeasurementPlane,
)
from .peer import PeerDaemon
from .scaleout import (
    LoadDriver,
    RequestRecord,
    ScaleoutConfig,
    ScaleoutController,
    run_scaleout,
    summarize_records,
)
from .rpc import (
    DedupCache,
    RetryPolicy,
    RpcEndpoint,
    RpcError,
    RpcFailure,
    RpcTimeout,
)
from .transport import LoopbackTransport, TcpTransport, TransportError

__all__ = [
    "CodecError",
    "FrameReader",
    "SUPPORTED_WIRE_VERSIONS",
    "WIRE_VERSION",
    "WIRE_VERSION_BINARY",
    "decode_frame",
    "encode_frame",
    "from_wire",
    "to_wire",
    "LoopbackTransport",
    "TcpTransport",
    "TransportError",
    "RetryPolicy",
    "RpcEndpoint",
    "RpcError",
    "RpcFailure",
    "RpcTimeout",
    "DedupCache",
    "LedgerTap",
    "LinkEstimator",
    "MeasuredOverlayView",
    "MeasurementConfig",
    "MeasurementPlane",
    "PeerDaemon",
    "BloomFilter",
    "DirectorySlice",
    "DirectoryTierConfig",
    "SharedStateGuard",
    "SharedStateViolation",
    "ClusterConfig",
    "LiveCluster",
    "AdmissionConfig",
    "LoadGuard",
    "LoadDriver",
    "RequestRecord",
    "ScaleoutConfig",
    "ScaleoutController",
    "run_scaleout",
    "summarize_records",
]
