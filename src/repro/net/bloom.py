"""A tiny deterministic Bloom filter for directory negative caching.

A :class:`~repro.net.directory.DirectorySlice` summarizes the function
names it holds rows for into a Bloom filter, and piggybacks the summary
on ``LookupRequest`` replies.  A querier holding the summary can prove
*absence* locally — "this owner has no rows for that function" — and
skip both the DHT route and the wire round trip for functions nobody
registered (see ``PeerDaemon._lookup_miss``).  Bloom filters have no
false negatives, so a *present* function can never be hidden by the
filter itself; a false **positive** merely degrades to the ordinary
routed lookup, which then returns the authoritative (empty) answer.

The filter must hash identically on both ends of a connection and
across processes, so membership bits are derived from BLAKE2b (never
``hash()``, which is salted per process) with the standard
double-hashing scheme: ``index_i = (h1 + i * h2) mod m``.

Slices only ever *gain* functions, so the filter is add-only and needs
no counting buckets; churn staleness is handled one level up by the
cache-invalidation protocol (see ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

__all__ = ["BloomFilter"]


class BloomFilter:
    """An ``m``-bit, ``k``-hash Bloom set over strings (add-only)."""

    __slots__ = ("m", "k", "_bits")

    def __init__(self, m: int = 512, k: int = 4, bits: int = 0) -> None:
        if m < 1:
            raise ValueError(f"bloom filter needs at least one bit, got m={m}")
        if k < 1:
            raise ValueError(f"bloom filter needs at least one hash, got k={k}")
        self.m = int(m)
        self.k = int(k)
        self._bits = int(bits)

    def _indexes(self, item: str) -> List[int]:
        digest = hashlib.blake2b(item.encode("utf-8"), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1  # odd: walks every residue
        return [(h1 + i * h2) % self.m for i in range(self.k)]

    def add(self, item: str) -> None:
        for idx in self._indexes(item):
            self._bits |= 1 << idx

    def __contains__(self, item: str) -> bool:
        bits = self._bits
        return all((bits >> idx) & 1 for idx in self._indexes(item))

    def __len__(self) -> int:
        return bin(self._bits).count("1")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return (self.m, self.k, self._bits) == (other.m, other.k, other._bits)

    # ------------------------------------------------------------------
    # wire form: a plain JSON-safe triple, embeddable in reply dicts
    # under both codec versions without a dedicated frame type
    # ------------------------------------------------------------------
    def to_wire(self) -> List:
        return [self.m, self.k, format(self._bits, "x")]

    @classmethod
    def from_wire(cls, payload: Sequence) -> "BloomFilter":
        m, k, hexbits = payload
        return cls(int(m), int(k), int(str(hexbits), 16) if hexbits else 0)
