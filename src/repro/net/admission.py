"""Per-peer admission control and load shedding for the live runtime.

SpiderNet's evaluation stops at the point where the interesting
engineering begins: what happens when offered load exceeds what the
composition plane can absorb?  Without a guard, every arriving request
opens a destination-side collection window, every window fans out a
probe wave, and the probe waves of requests that can no longer finish
in time keep consuming the budget of the ones that still could — the
classic congestion-collapse shape, where goodput falls as offered load
rises.

:class:`LoadGuard` is the peer-local answer (the load-guard idiom from
the infomesh exemplars named in ROADMAP.md): every daemon carries its
own guard, fed only by that daemon's local state, and applies three
independently tunable mechanisms:

* **Session admission** — a destination accepts at most
  ``max_sessions`` concurrent collection windows.  The ``max_sessions+1``-th
  ``ComposeBegin`` is answered with a :class:`~repro.net.codec.Busy`
  frame *in the begin RPC's reply*: the source learns its fate in one
  round trip, before any probe is sent or any reservation made anywhere
  — a shed request costs the cluster one control frame and holds zero
  soft state, so rejection is strictly cheaper than timeout.
* **Probe shedding** — each daemon bounds its concurrently-processing
  probe tasks.  Past ``probe_soft_limit`` the daemon *degrades*: probe
  waves it expands get half their budget, trading composition quality
  for latency exactly as the paper's budget knob does.  Past
  ``max_probe_tasks`` it *sheds*: incoming probes return their
  termination credit immediately (reason ``"shed"``) without admission,
  so overloaded peers drop work in a way the destination's credit
  accounting still sees — windows close promptly instead of waiting for
  the wall-clock fallback.
* **RPC throttling** — ``rpc_max_inflight`` bounds a daemon's
  concurrent outbound calls, keeping one peer's fan-out from flooding
  the transport during overload (0 = unlimited, the default).

All three default **off** (``enabled=False``): an un-configured cluster
is bit-identical to the pre-admission build, and the parity harness
holds by construction.  With the guard on but limits never reached the
fast paths are also unchanged — the guard only observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

__all__ = ["AdmissionConfig", "LoadGuard"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Per-peer overload-survival knobs (all enforcement needs ``enabled``)."""

    enabled: bool = False
    # destination side: concurrent probe-collection windows accepted
    max_sessions: int = 8
    # expanding side: concurrent probe tasks before budgets halve…
    probe_soft_limit: int = 48
    # …and before further probes are shed outright (credit returned)
    max_probe_tasks: int = 96
    # outbound RPC concurrency per daemon (0 = unlimited)
    rpc_max_inflight: int = 0

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.probe_soft_limit < 1 or self.max_probe_tasks < 1:
            raise ValueError("probe limits must be >= 1")
        if self.probe_soft_limit > self.max_probe_tasks:
            raise ValueError("probe_soft_limit must be <= max_probe_tasks")
        if self.rpc_max_inflight < 0:
            raise ValueError("rpc_max_inflight must be >= 0")


class LoadGuard:
    """One daemon's admission state: open windows, probe pressure, stats.

    Purely local and synchronous — consulted inline on the hot handler
    paths, so it must never await.  Counters are cumulative for the
    guard's lifetime (a revived peer starts a fresh guard, like any
    restarted process).
    """

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self._sessions: Set[int] = set()
        self.probes_inflight = 0
        # cumulative books
        self.sessions_admitted = 0
        self.sessions_rejected = 0
        self.probes_shed = 0
        self.budget_degrades = 0
        self.sessions_peak = 0
        self.probes_peak = 0

    # -- session admission (destination side) --------------------------
    @property
    def sessions_inflight(self) -> int:
        return len(self._sessions)

    def try_open_session(self, rid: int) -> bool:
        """Admit request ``rid``'s collection window, or refuse it."""
        if not self.config.enabled or rid in self._sessions:
            return True
        if len(self._sessions) >= self.config.max_sessions:
            self.sessions_rejected += 1
            return False
        self._sessions.add(rid)
        self.sessions_admitted += 1
        self.sessions_peak = max(self.sessions_peak, len(self._sessions))
        return True

    def close_session(self, rid: int) -> None:
        self._sessions.discard(rid)

    # -- probe pressure (expanding side) -------------------------------
    def probe_overloaded(self) -> bool:
        """True when further probes should be shed outright."""
        return (
            self.config.enabled
            and self.probes_inflight >= self.config.max_probe_tasks
        )

    def degraded(self) -> bool:
        """True when probe waves should expand with reduced budget."""
        return (
            self.config.enabled
            and self.probes_inflight >= self.config.probe_soft_limit
        )

    def begin_probe(self) -> None:
        self.probes_inflight += 1
        self.probes_peak = max(self.probes_peak, self.probes_inflight)

    def end_probe(self) -> None:
        self.probes_inflight -= 1

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "sessions_inflight": len(self._sessions),
            "sessions_admitted": self.sessions_admitted,
            "sessions_rejected": self.sessions_rejected,
            "sessions_peak": self.sessions_peak,
            "probes_inflight": self.probes_inflight,
            "probes_shed": self.probes_shed,
            "budget_degrades": self.budget_degrades,
            "probes_peak": self.probes_peak,
        }
