"""Message-overhead accounting for the live transport.

The §6.1 overhead figures (``repro.experiments.overhead_comparison``)
read a :class:`~repro.sim.metrics.MessageLedger` under the simulation's
category keys — ``bcp_probe``, ``bcp_ack``, ``bcp_failure``,
``dht_route``, ``dht_replicate``.  :class:`LedgerTap` makes a live
cluster report the same books:

* **protocol charges** mirror the simulation exactly: one ``bcp_probe``
  (256 B nominal) per probe transmission, per-hop ``bcp_ack`` charges
  during the setup pass, one ``bcp_failure`` per failed composition.
  DHT lookups charge ``dht_route`` through the shared registry, as in
  sim mode.  This keeps live and sim numbers directly comparable.
* **wire charges** record what actually crossed the transport:
  ``net_probe`` / ``net_final`` / ``net_credit`` / ``net_session`` /
  ``net_ping`` / ``net_control`` / ``net_directory`` frames with their
  true encoded sizes, plus every response frame as ``net_ack``.  These
  keys are live-only (the simulator has no real frames) and never
  pollute the ``BCP_CATEGORIES`` totals.  ``net_directory`` covers the
  distributed-mode discovery plane (RegisterComponent / RegisterBatch /
  LookupRequest / ReplicatePush / ReplicaInvalidate to the DHT owner of
  a function key); the DHT *routing* cost of finding that owner still
  lands in ``dht_route``, charged per hop by
  :meth:`~repro.dht.pastry.PastryNetwork.route` exactly as in sim mode.
  ``net_measure`` books the measurement plane's active ``PathProbe``
  frames — the overhead budget of topology measurement, kept separate
  so probe traffic never inflates the protocol-comparison categories.
* **directory-tier counters** (``dir_cache_hit`` / ``dir_cache_miss`` /
  ``dir_neg_hit`` / ``dir_replica_serve`` / ``dir_replica_push``) audit
  the acceleration tier: every lookup the cache absorbs is a hit *and*
  a ``dht_route`` charge that never happened — the saved work is
  visible as the gap between the two books.
"""

from __future__ import annotations

from typing import Optional

from ..sim.metrics import MessageLedger
from . import codec

__all__ = ["LedgerTap", "WIRE_CATEGORY"]

# the simulation's nominal message sizes (bcp.py / async_bcp.py)
PROBE_SIZE = 256
ACK_SIZE = 128
FAILURE_SIZE = 64

WIRE_CATEGORY = {
    codec.ProbeTransfer: "net_probe",
    codec.FinalProbe: "net_final",
    codec.CreditReturn: "net_credit",
    codec.ReservationReport: "net_control",
    codec.SessionConfirm: "net_session",
    codec.SessionRelease: "net_session",
    codec.MaintenancePing: "net_ping",
    codec.ComposeBegin: "net_control",
    codec.DiscoveryReport: "net_control",
    codec.ComposeResult: "net_control",
    codec.RegisterComponent: "net_directory",
    codec.RegisterBatch: "net_directory",
    codec.LookupRequest: "net_directory",
    codec.ReplicatePush: "net_directory",
    codec.ReplicaInvalidate: "net_directory",
    # measurement plane: active probes are the only frames the plane
    # originates (acks ride the generic response path as net_ack)
    codec.PathProbe: "net_measure",
}


class LedgerTap:
    """Bridges transport frames and protocol events into a MessageLedger."""

    def __init__(self, ledger: Optional[MessageLedger] = None) -> None:
        self.ledger = ledger if ledger is not None else MessageLedger()

    # ------------------------------------------------------------------
    # transport tap:  transport(tap=ledger_tap.on_frame)
    # ------------------------------------------------------------------
    def on_frame(self, direction: str, envelope: dict, n_bytes: int) -> None:
        if direction != "tx":
            return  # count each frame once, at its sender
        if envelope.get("kind") == "res":
            self.ledger.record("net_ack", n_bytes)
            return
        category = WIRE_CATEGORY.get(type(envelope.get("body")), "net_other")
        self.ledger.record(category, n_bytes)

    # ------------------------------------------------------------------
    # protocol charges (sim-compatible keys)
    # ------------------------------------------------------------------
    def probe_sent(self) -> None:
        """One probe transmission — matches ``BCP._expand``'s charge.

        Final hops are *not* charged here: the destination runs
        ``BCP._final_hop``, which records its own ``bcp_probe`` exactly
        as the synchronous engine does."""
        self.ledger.record("bcp_probe", PROBE_SIZE)

    def ack_hops(self, n_hops: int) -> None:
        """Setup-ack charges for one branch path (``BCP._setup_phase``)."""
        self.ledger.record("bcp_ack", ACK_SIZE, max(n_hops, 1))

    def failure(self) -> None:
        self.ledger.record("bcp_failure", FAILURE_SIZE)

    # ------------------------------------------------------------------
    # directory-tier charges (live-only logical counters, zero bytes)
    # ------------------------------------------------------------------
    # Cache hits deliberately do NOT replay the dht_route charges the
    # uncached lookup would have made — unlike the sync engine's
    # per-wave WaveLookupCache, this tier's whole point is that the
    # routing work is really not done, and the ledger must show it.
    # The dir_* keys keep the saved/spent split auditable.
    def dir_cache_hit(self) -> None:
        """A lookup served from the peer-local positive cache."""
        self.ledger.record("dir_cache_hit")

    def dir_cache_miss(self) -> None:
        """A lookup that had to route the DHT and cross the wire."""
        self.ledger.record("dir_cache_miss")

    def dir_neg_hit(self) -> None:
        """An absent-function lookup short-circuited by a Bloom summary."""
        self.ledger.record("dir_neg_hit")

    def dir_replica_serve(self) -> None:
        """A lookup served from locally held pushed replica rows."""
        self.ledger.record("dir_replica_serve")

    def dir_replica_push(self, n_targets: int) -> None:
        """One hot-key fan-out: ``n_targets`` ReplicatePush frames queued."""
        self.ledger.record("dir_replica_push", 0, max(n_targets, 1))

    def directory_summary(self) -> dict:
        """The directory-tier books: {dir_* category: count}."""
        return {
            cat: self.ledger.count[cat]
            for cat in sorted(self.ledger.count)
            if cat.startswith("dir_")
        }

    # ------------------------------------------------------------------
    def wire_summary(self) -> dict:
        """The live-only wire books: {category: (frames, bytes)}."""
        return {
            cat: (self.ledger.count[cat], self.ledger.bytes[cat])
            for cat in sorted(self.ledger.count)
            if cat.startswith("net_")
        }
