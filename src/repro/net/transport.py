"""Datagram-style message transports for the live runtime.

Both transports move *frames* (see :mod:`.codec`) between numbered
peers.  Messages are serialized on every send and parsed on every
delivery — even in-process — so the loopback path exercises the exact
bytes a TCP deployment puts on the network.

* :class:`LoopbackTransport` — asyncio queues with injectable one-way
  latency and probabilistic loss; the deterministic substrate for tests
  and the sim-parity harness.
* :class:`TcpTransport` — asyncio streams on localhost (or any address
  book), one server per hosted peer, a per-``(src, dst)`` outbound
  connection pool, and write backpressure via ``drain()``.

Failure model: sending to a *killed* peer is a silent drop (a packet
into the void) on loopback and a connection error on TCP; both surface
to callers as an RPC timeout, which is what drives the retry/backoff
path and, ultimately, credit-loss reporting to the destination.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, List, Optional, Set, Tuple

from ..sim.rng import as_generator
from .codec import FrameReader, decode_frame, encode_frame

__all__ = ["TransportError", "LoopbackTransport", "TcpTransport"]

Handler = Callable[[dict], Awaitable[None]]
# tap(direction, envelope, n_bytes) — see net.accounting.LedgerTap
Tap = Callable[[str, dict, int], None]


class TransportError(RuntimeError):
    """Raised when a frame cannot be handed to the network at all."""


class _BaseTransport:
    def __init__(self, tap: Optional[Tap] = None) -> None:
        self._handlers: Dict[int, Handler] = {}
        self._killed: Set[int] = set()
        self.tap = tap
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_dropped = 0

    def register(self, peer_id: int, handler: Handler) -> None:
        if peer_id in self._handlers:
            raise ValueError(f"peer {peer_id} already registered")
        self._handlers[peer_id] = handler
        self._killed.discard(peer_id)

    def unregister(self, peer_id: int) -> None:
        """Detach a peer's handler (endpoint restart); queue/port survive,
        so a replacement endpoint can ``register`` under the same id."""
        self._handlers.pop(peer_id, None)

    def kill(self, peer_id: int) -> None:
        """Simulate a peer crash: it neither receives nor sends frames."""
        self._killed.add(peer_id)

    def is_killed(self, peer_id: int) -> bool:
        return peer_id in self._killed

    def _tap_send(self, envelope: dict, n_bytes: int) -> None:
        self.frames_sent += 1
        self.bytes_sent += n_bytes
        if self.tap is not None:
            self.tap("tx", envelope, n_bytes)

    async def start(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    async def close(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    async def send(self, src: int, dst: int, envelope: dict) -> None:  # pragma: no cover
        raise NotImplementedError


class LoopbackTransport(_BaseTransport):
    """In-process transport: one inbox queue + dispatcher task per peer.

    ``latency`` is a one-way delay in wall seconds (a float, or a
    callable ``(src, dst) -> float``); ``loss`` drops each frame
    independently with the given probability, using a seeded generator
    so tests are reproducible.
    """

    def __init__(
        self,
        latency: float | Callable[[int, int], float] = 0.0,
        loss: float = 0.0,
        seed: int = 0,
        tap: Optional[Tap] = None,
    ) -> None:
        super().__init__(tap=tap)
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {loss}")
        self._latency = latency if callable(latency) else (lambda s, d, l=latency: l)
        self._loss = loss
        self._rng = as_generator(seed)
        self._queues: Dict[int, asyncio.Queue] = {}
        self._dispatchers: List[asyncio.Task] = []
        self._started = False

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        for peer_id in self._handlers:
            if peer_id not in self._queues:
                self._queues[peer_id] = asyncio.Queue()
                self._dispatchers.append(
                    loop.create_task(self._dispatch(peer_id), name=f"loopback-rx-{peer_id}")
                )
        self._started = True

    async def close(self) -> None:
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._dispatchers.clear()
        self._started = False

    async def send(self, src: int, dst: int, envelope: dict) -> None:
        if not self._started:
            raise TransportError("transport not started")
        if src in self._killed:
            raise TransportError(f"peer {src} is down")
        queue = self._queues.get(dst)
        if queue is None:
            raise TransportError(f"no such peer {dst}")
        frame = encode_frame(envelope)
        self._tap_send(envelope, len(frame))
        if dst in self._killed or (self._loss > 0 and self._rng.random() < self._loss):
            self.frames_dropped += 1
            return  # the void acknowledges nothing
        delay = self._latency(src, dst)
        if delay > 0:
            asyncio.get_running_loop().call_later(delay, queue.put_nowait, frame)
        else:
            queue.put_nowait(frame)

    async def _dispatch(self, peer_id: int) -> None:
        queue = self._queues[peer_id]
        while True:
            frame = await queue.get()
            if peer_id in self._killed:
                continue
            handler = self._handlers.get(peer_id)
            if handler is None:
                continue
            await handler(decode_frame(frame))


class _Conn:
    """One pooled outbound stream with serialized writes."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.lock = asyncio.Lock()


class TcpTransport(_BaseTransport):
    """Localhost TCP: one listening server per hosted peer.

    Ports are allocated by the OS unless ``port_base`` is given (then
    peer ``p`` listens on ``port_base + p``).  Outbound frames reuse a
    pooled connection per ``(src, dst)`` pair; writes await ``drain()``
    so a slow receiver backpressures its senders instead of ballooning
    buffers.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port_base: Optional[int] = None,
        tap: Optional[Tap] = None,
    ) -> None:
        super().__init__(tap=tap)
        self.host = host
        self.port_base = port_base
        self.addresses: Dict[int, Tuple[str, int]] = {}
        self._servers: Dict[int, asyncio.base_events.Server] = {}
        self._conn_tasks: Set[asyncio.Task] = set()
        self._accepted: Dict[int, List[asyncio.StreamWriter]] = {}
        self._pool: Dict[Tuple[int, int], _Conn] = {}
        self._dial_locks: Dict[Tuple[int, int], asyncio.Lock] = {}
        self._started = False

    async def start(self) -> None:
        for peer_id in self._handlers:
            if peer_id in self._servers:
                continue
            port = 0 if self.port_base is None else self.port_base + peer_id
            server = await asyncio.start_server(
                lambda r, w, p=peer_id: self._serve(p, r, w), self.host, port
            )
            self._servers[peer_id] = server
            self.addresses[peer_id] = server.sockets[0].getsockname()[:2]
        self._started = True

    async def close(self) -> None:
        for server in self._servers.values():
            server.close()
        for server in self._servers.values():
            await server.wait_closed()
        self._servers.clear()
        for conn in self._pool.values():
            conn.writer.close()
        self._pool.clear()
        for writers in self._accepted.values():
            for w in writers:
                w.close()
        self._accepted.clear()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        self._conn_tasks.clear()
        self._started = False

    def kill(self, peer_id: int) -> None:
        super().kill(peer_id)
        server = self._servers.pop(peer_id, None)
        if server is not None:
            server.close()
        for w in self._accepted.pop(peer_id, []):
            w.close()
        for key in [k for k in self._pool if peer_id in k]:
            self._pool.pop(key).writer.close()

    async def send(self, src: int, dst: int, envelope: dict) -> None:
        if not self._started:
            raise TransportError("transport not started")
        if src in self._killed:
            raise TransportError(f"peer {src} is down")
        if dst in self._killed:
            raise TransportError(f"peer {dst} is down")
        frame = encode_frame(envelope)
        conn = await self._get_conn(src, dst)
        try:
            async with conn.lock:
                conn.writer.write(frame)
                await conn.writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pool.pop((src, dst), None)
            conn.writer.close()
            raise TransportError(f"send {src}->{dst} failed: {exc}") from exc
        self._tap_send(envelope, len(frame))

    async def _get_conn(self, src: int, dst: int) -> _Conn:
        key = (src, dst)
        conn = self._pool.get(key)
        if conn is not None and not conn.writer.is_closing():
            return conn
        lock = self._dial_locks.setdefault(key, asyncio.Lock())
        async with lock:
            conn = self._pool.get(key)
            if conn is not None and not conn.writer.is_closing():
                return conn
            addr = self.addresses.get(dst)
            if addr is None:
                raise TransportError(f"no address for peer {dst}")
            try:
                reader, writer = await asyncio.open_connection(*addr)
            except (ConnectionError, OSError) as exc:
                raise TransportError(f"dial {src}->{dst} failed: {exc}") from exc
            conn = _Conn(reader, writer)
            self._pool[key] = conn
            return conn

    async def _serve(
        self, peer_id: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._accepted.setdefault(peer_id, []).append(writer)
        frames = FrameReader()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for envelope in frames.feed(chunk):
                    if peer_id in self._killed:
                        return
                    handler = self._handlers.get(peer_id)
                    if handler is not None:
                        await handler(envelope)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # transport teardown; exiting cleanly keeps the loop quiet
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            accepted = self._accepted.get(peer_id)
            if accepted and writer in accepted:
                accepted.remove(writer)
