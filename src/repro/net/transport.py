"""Datagram-style message transports for the live runtime.

Both transports move *frames* (see :mod:`.codec`) between numbered
peers.  Messages are serialized on every send and parsed on every
delivery — even in-process — so the loopback path exercises the exact
bytes a TCP deployment puts on the network.

* :class:`LoopbackTransport` — asyncio queues with injectable one-way
  latency and probabilistic loss; the deterministic substrate for tests
  and the sim-parity harness.
* :class:`TcpTransport` — asyncio streams on localhost (or any address
  book), one server per hosted peer, a per-``(src, dst)`` outbound
  connection pool, and write backpressure via ``drain()``.

Two throughput levers sit here (and default on):

* **Codec version** — senders prefer the v2 binary encoding.  On TCP the
  version is negotiated per connection: the dialer's first frame is a v1
  ``__hello__`` carrying its maximum supported version, the acceptor
  answers with a v1 ``__hello_ack__``, and the connection speaks
  ``min(max_client, max_server)``.  Handshake frames are connection
  metadata, not protocol messages — they are invisible to handlers, taps
  and frame counters.  Loopback has no connections, so its version is a
  constructor knob.
* **Write coalescing** — instead of awaiting ``drain()`` per frame, a
  per-connection flusher task drains the accumulated write buffer once
  per wakeup (plus an optional ``flush_interval`` dally), so a burst of
  frames to one peer costs one syscall batch.  Coalescing batches
  *frames*, never messages: each logical message is still one frame,
  counted once by the tap, so ledgers are identical with it on or off.

Failure model: sending to a *killed* peer is a silent drop (a packet
into the void) on loopback and a connection error on TCP; both surface
to callers as an RPC timeout, which is what drives the retry/backoff
path and, ultimately, credit-loss reporting to the destination.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, List, Optional, Set, Tuple, Union

from ..sim.rng import as_generator
from .codec import (
    _HEADER,
    _HEADER_SIZE,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    WIRE_VERSION_BINARY,
    CodecError,
    FrameReader,
    decode_frame,
    encode_frame,
)

__all__ = ["TransportError", "LoopbackTransport", "TcpTransport"]

Handler = Callable[[dict], Awaitable[None]]
# tap(direction, envelope, n_bytes) — see net.accounting.LedgerTap
Tap = Callable[[str, dict, int], None]

_HELLO = "__hello__"
_HELLO_ACK = "__hello_ack__"
_HANDSHAKE_TIMEOUT = 5.0
# coalesced writers buffer at most this many bytes before the *sender*
# blocks awaiting a drain — per-connection backpressure, like drain()
_HIGH_WATER = 256 * 1024


def _negotiate(local_max: int, remote_max: int) -> int:
    """Pick the connection's wire version from two advertised maxima."""
    version = min(local_max, remote_max)
    if version not in SUPPORTED_WIRE_VERSIONS:
        version = WIRE_VERSION  # v1 JSON is the universal floor
    return version


class TransportError(RuntimeError):
    """Raised when a frame cannot be handed to the network at all."""


class _DelayPump:
    """One link's delayed-dispatch pump — the shared latency-emulation
    engine of both transports.

    Items are enqueued with a due time (``now + one-way delay``) and
    handed to ``deliver`` in FIFO order once due: a burst entering the
    link back-to-back shares one delay instead of serializing N sleeps,
    and per-link ordering is preserved because due times on one pump are
    monotone.  ``stop()`` drains what is already in flight and then ends
    the task; ``cancel()`` abandons it immediately.
    """

    __slots__ = ("_deliver", "_queue", "task")

    def __init__(self, deliver: Callable[[object], Awaitable[None]], name: str) -> None:
        self._deliver = deliver
        self._queue: asyncio.Queue = asyncio.Queue()
        self.task = asyncio.get_running_loop().create_task(self._run(), name=name)

    def put(self, delay: float, item) -> None:
        due = asyncio.get_running_loop().time() + max(0.0, delay)
        self._queue.put_nowait((due, item))

    def stop(self) -> None:
        self._queue.put_nowait(None)

    def cancel(self) -> None:
        self.task.cancel()

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                item = await self._queue.get()
                if item is None:
                    break
                due, payload = item
                now = loop.time()
                if due > now:
                    await asyncio.sleep(due - now)
                await self._deliver(payload)
        except asyncio.CancelledError:
            pass  # transport teardown


class _BaseTransport:
    def __init__(self, tap: Optional[Tap] = None) -> None:
        self._handlers: Dict[int, Handler] = {}
        self._killed: Set[int] = set()
        self.tap = tap
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_dropped = 0

    def register(self, peer_id: int, handler: Handler) -> None:
        if peer_id in self._handlers:
            raise ValueError(f"peer {peer_id} already registered")
        self._handlers[peer_id] = handler
        self._killed.discard(peer_id)

    def unregister(self, peer_id: int) -> None:
        """Detach a peer's handler (endpoint restart); queue/port survive,
        so a replacement endpoint can ``register`` under the same id."""
        self._handlers.pop(peer_id, None)

    def kill(self, peer_id: int) -> None:
        """Simulate a peer crash: it neither receives nor sends frames."""
        self._killed.add(peer_id)

    async def revive(self, peer_id: int) -> None:
        """Undo :meth:`kill`: the peer sends and receives again.

        A replacement endpoint should ``register`` under the id first
        (which also clears the killed flag); subclasses additionally
        restore whatever :meth:`kill` tore down (e.g. a TCP listener)."""
        self._killed.discard(peer_id)

    def is_killed(self, peer_id: int) -> bool:
        return peer_id in self._killed

    def _tap_send(self, envelope: dict, n_bytes: int) -> None:
        self.frames_sent += 1
        self.bytes_sent += n_bytes
        if self.tap is not None:
            self.tap("tx", envelope, n_bytes)

    async def start(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    async def close(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    async def send(self, src: int, dst: int, envelope: dict) -> None:  # pragma: no cover
        raise NotImplementedError


class LoopbackTransport(_BaseTransport):
    """In-process transport: one inbox queue + dispatcher task per peer.

    ``latency`` is a one-way delay in wall seconds (a float, or a
    callable ``(src, dst) -> float``); ``loss`` drops each frame
    independently with the given probability, using a seeded generator
    so tests are reproducible.

    With ``coalesce`` on (the default), zero-latency frames to one
    destination accumulate within an event-loop turn and are delivered
    as one queue item — one dispatcher wakeup per burst instead of one
    per frame.  Delayed frames keep their own timers: coalescing must
    never reorder a link's delivery schedule.
    """

    def __init__(
        self,
        latency: float | Callable[[int, int], float] = 0.0,
        loss: float = 0.0,
        seed: int = 0,
        tap: Optional[Tap] = None,
        wire_version: int = WIRE_VERSION_BINARY,
        coalesce: bool = True,
    ) -> None:
        super().__init__(tap=tap)
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {loss}")
        if wire_version not in SUPPORTED_WIRE_VERSIONS:
            raise ValueError(f"unsupported wire version {wire_version}")
        self._latency = latency if callable(latency) else (lambda s, d, l=latency: l)
        self._loss = loss
        self._rng = as_generator(seed)
        self.wire_version = wire_version
        self.coalesce = coalesce
        self._queues: Dict[int, asyncio.Queue] = {}
        self._pending: Dict[int, List[bytes]] = {}
        self._dispatchers: List[asyncio.Task] = []
        # latency emulation: one _DelayPump per active (src, dst) link
        self._pumps: Dict[Tuple[int, int], _DelayPump] = {}
        self._started = False

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        for peer_id in self._handlers:
            if peer_id not in self._queues:
                self._queues[peer_id] = asyncio.Queue()
                self._dispatchers.append(
                    loop.create_task(self._dispatch(peer_id), name=f"loopback-rx-{peer_id}")
                )
        self._started = True

    async def close(self) -> None:
        tasks = list(self._dispatchers) + [p.task for p in self._pumps.values()]
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._dispatchers.clear()
        self._pumps.clear()
        self._pending.clear()
        self._started = False

    async def send(self, src: int, dst: int, envelope: dict) -> None:
        if not self._started:
            raise TransportError("transport not started")
        if src in self._killed:
            raise TransportError(f"peer {src} is down")
        queue = self._queues.get(dst)
        if queue is None:
            raise TransportError(f"no such peer {dst}")
        frame = encode_frame(envelope, self.wire_version)
        self._tap_send(envelope, len(frame))
        if dst in self._killed or (self._loss > 0 and self._rng.random() < self._loss):
            self.frames_dropped += 1
            return  # the void acknowledges nothing
        delay = self._latency(src, dst)
        if delay > 0:
            self._link_pump(src, dst).put(delay, frame)
        elif self.coalesce:
            batch = self._pending.get(dst)
            if batch is None:
                batch = self._pending[dst] = []
                asyncio.get_running_loop().call_soon(self._flush, dst)
            batch.append(frame)
        else:
            queue.put_nowait(frame)

    def _flush(self, dst: int) -> None:
        batch = self._pending.pop(dst, None)
        if batch:
            self._queues[dst].put_nowait(batch)

    def _link_pump(self, src: int, dst: int) -> _DelayPump:
        key = (src, dst)
        pump = self._pumps.get(key)
        if pump is None:
            queue = self._queues[dst]

            async def deliver(frame: bytes, _queue=queue) -> None:
                _queue.put_nowait(frame)  # kill is re-checked at dispatch

            pump = self._pumps[key] = _DelayPump(
                deliver, name=f"loopback-delay-{src}-{dst}"
            )
        return pump

    async def _dispatch(self, peer_id: int) -> None:
        queue = self._queues[peer_id]
        while True:
            item: Union[bytes, List[bytes]] = await queue.get()
            frames = item if isinstance(item, list) else (item,)
            for frame in frames:
                if peer_id in self._killed:
                    break
                handler = self._handlers.get(peer_id)
                if handler is None:
                    continue
                await handler(decode_frame(frame))


class _Conn:
    """One pooled outbound stream: negotiated version + write coalescing."""

    __slots__ = (
        "reader", "writer", "lock", "version", "buf", "wake", "drained",
        "broken", "flusher",
    )

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.lock = asyncio.Lock()
        self.version = WIRE_VERSION
        self.buf = bytearray()
        self.wake = asyncio.Event()
        self.drained = asyncio.Event()
        self.drained.set()
        self.broken: Optional[BaseException] = None
        self.flusher: Optional[asyncio.Task] = None


class TcpTransport(_BaseTransport):
    """Localhost TCP: one listening server per hosted peer.

    Ports are allocated by the OS unless ``port_base`` is given (then
    peer ``p`` listens on ``port_base + p``).  Outbound frames reuse a
    pooled connection per ``(src, dst)`` pair whose wire version is
    fixed by the dial-time hello handshake (``max_wire_version`` caps
    what this end advertises, so ``max_wire_version=1`` forces the JSON
    fallback against any peer).

    With ``coalesce`` on (the default) each connection owns a flusher
    task: ``send()`` appends the frame to the connection buffer and
    returns, and the flusher writes whatever accumulated with a single
    ``drain()`` per wakeup — ``flush_interval`` seconds of dallying (0
    by default) trades latency for larger batches.  Senders block only
    when a connection's buffer passes the high-water mark, preserving
    per-connection backpressure; a broken connection fails *subsequent*
    sends, which the RPC retry path already treats as message loss.

    ``latency`` emulates one-way wire delay just like the loopback
    transport (a float, or ``(src, dst) -> float`` over peer ids):
    inbound frames are timestamped on arrival and dispatched by a
    per-connection pump once their delay elapses, so a burst keeps one
    shared delay instead of serializing N sleeps.  Localhost TCP is
    effectively zero-latency, which makes every topology look flat —
    this knob lets benchmarks emulate the *modeled* overlay delays on a
    real socket path.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port_base: Optional[int] = None,
        tap: Optional[Tap] = None,
        max_wire_version: int = WIRE_VERSION_BINARY,
        coalesce: bool = True,
        flush_interval: float = 0.0,
        latency: float | Callable[[int, int], float] = 0.0,
    ) -> None:
        super().__init__(tap=tap)
        if max_wire_version not in SUPPORTED_WIRE_VERSIONS:
            raise ValueError(f"unsupported wire version {max_wire_version}")
        if flush_interval < 0:
            raise ValueError("flush_interval must be >= 0")
        self.host = host
        self.port_base = port_base
        self.max_wire_version = max_wire_version
        self.coalesce = coalesce
        self.flush_interval = flush_interval
        self._latency = latency if callable(latency) else (lambda s, d, l=latency: l)
        self._delay_inbound = callable(latency) or latency > 0
        self.addresses: Dict[int, Tuple[str, int]] = {}
        self._servers: Dict[int, asyncio.base_events.Server] = {}
        self._conn_tasks: Set[asyncio.Task] = set()
        self._accepted: Dict[int, List[asyncio.StreamWriter]] = {}
        self._pool: Dict[Tuple[int, int], _Conn] = {}
        self._dial_locks: Dict[Tuple[int, int], asyncio.Lock] = {}
        self._started = False

    async def start(self) -> None:
        for peer_id in self._handlers:
            if peer_id not in self._servers:
                await self._listen(peer_id)
        self._started = True

    async def _listen(self, peer_id: int) -> None:
        port = 0 if self.port_base is None else self.port_base + peer_id
        server = await asyncio.start_server(
            lambda r, w, p=peer_id: self._serve(p, r, w), self.host, port
        )
        self._servers[peer_id] = server
        self.addresses[peer_id] = server.sockets[0].getsockname()[:2]

    async def close(self) -> None:
        for server in self._servers.values():
            server.close()
        for server in self._servers.values():
            await server.wait_closed()
        self._servers.clear()
        for conn in self._pool.values():
            self._teardown_conn(conn)
        self._pool.clear()
        for writers in self._accepted.values():
            for w in writers:
                w.close()
        self._accepted.clear()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        self._conn_tasks.clear()
        self._started = False

    def kill(self, peer_id: int) -> None:
        super().kill(peer_id)
        server = self._servers.pop(peer_id, None)
        if server is not None:
            server.close()
        for w in self._accepted.pop(peer_id, []):
            w.close()
        for key in [k for k in self._pool if peer_id in k]:
            self._teardown_conn(self._pool.pop(key))

    async def revive(self, peer_id: int) -> None:
        """Restart a killed peer's listener (possibly on a new OS port —
        dialers re-read :attr:`addresses`, and every pooled connection
        involving the peer was torn down at kill time)."""
        await super().revive(peer_id)
        if self._started and peer_id not in self._servers:
            await self._listen(peer_id)

    def _teardown_conn(self, conn: _Conn) -> None:
        if conn.flusher is not None:
            conn.flusher.cancel()
        conn.writer.close()

    async def send(self, src: int, dst: int, envelope: dict) -> None:
        if not self._started:
            raise TransportError("transport not started")
        if src in self._killed:
            raise TransportError(f"peer {src} is down")
        if dst in self._killed:
            raise TransportError(f"peer {dst} is down")
        conn = await self._get_conn(src, dst)
        frame = encode_frame(envelope, conn.version)
        if self.coalesce:
            await self._send_coalesced((src, dst), conn, frame)
        else:
            try:
                async with conn.lock:
                    conn.writer.write(frame)
                    await conn.writer.drain()
            except (ConnectionError, OSError) as exc:
                self._drop_conn((src, dst), conn)
                raise TransportError(f"send {src}->{dst} failed: {exc}") from exc
        self._tap_send(envelope, len(frame))

    async def _send_coalesced(self, key: Tuple[int, int], conn: _Conn, frame: bytes) -> None:
        if conn.broken is not None:
            self._drop_conn(key, conn)
            raise TransportError(f"send {key[0]}->{key[1]} failed: {conn.broken}")
        conn.buf += frame
        conn.wake.set()
        if len(conn.buf) >= _HIGH_WATER:
            conn.drained.clear()
            await conn.drained.wait()
            if conn.broken is not None:
                self._drop_conn(key, conn)
                raise TransportError(f"send {key[0]}->{key[1]} failed: {conn.broken}")

    async def _flush_loop(self, key: Tuple[int, int], conn: _Conn) -> None:
        try:
            while True:
                await conn.wake.wait()
                conn.wake.clear()
                if self.flush_interval > 0:
                    await asyncio.sleep(self.flush_interval)
                if conn.buf:
                    data = bytes(conn.buf)
                    conn.buf.clear()
                    conn.writer.write(data)
                    await conn.writer.drain()
                conn.drained.set()
        except asyncio.CancelledError:
            pass  # transport teardown
        except (ConnectionError, OSError) as exc:
            conn.broken = exc
            conn.drained.set()  # unblock high-water waiters; they re-check
            self._drop_conn(key, conn)

    def _drop_conn(self, key: Tuple[int, int], conn: _Conn) -> None:
        if self._pool.get(key) is conn:
            self._pool.pop(key, None)
        if conn.flusher is not None and conn.flusher is not asyncio.current_task():
            conn.flusher.cancel()
        conn.writer.close()

    async def _get_conn(self, src: int, dst: int) -> _Conn:
        key = (src, dst)
        conn = self._pool.get(key)
        if conn is not None and conn.broken is None and not conn.writer.is_closing():
            return conn
        lock = self._dial_locks.setdefault(key, asyncio.Lock())
        async with lock:
            conn = self._pool.get(key)
            if conn is not None:
                if conn.broken is None and not conn.writer.is_closing():
                    return conn
                self._drop_conn(key, conn)
            addr = self.addresses.get(dst)
            if addr is None:
                raise TransportError(f"no address for peer {dst}")
            try:
                reader, writer = await asyncio.open_connection(*addr)
                conn = _Conn(reader, writer)
                conn.version = await asyncio.wait_for(
                    self._handshake(reader, writer), _HANDSHAKE_TIMEOUT
                )
            except (ConnectionError, OSError, asyncio.TimeoutError, CodecError) as exc:
                raise TransportError(f"dial {src}->{dst} failed: {exc}") from exc
            if self.coalesce:
                conn.flusher = asyncio.get_running_loop().create_task(
                    self._flush_loop(key, conn), name=f"tcp-flush-{src}-{dst}"
                )
            self._pool[key] = conn
            return conn

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> int:
        """Dial-time version negotiation; always spoken in v1 JSON."""
        writer.write(encode_frame({"kind": _HELLO, "max": self.max_wire_version}))
        await writer.drain()
        header = await reader.readexactly(_HEADER_SIZE)
        _magic, _version, length = _HEADER.unpack(header)
        payload = await reader.readexactly(length)
        ack = decode_frame(header + payload)
        if not isinstance(ack, dict) or ack.get("kind") != _HELLO_ACK:
            raise CodecError(f"bad handshake ack: {ack!r}")
        return _negotiate(self.max_wire_version, int(ack.get("max", WIRE_VERSION)))

    async def _serve(
        self, peer_id: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._accepted.setdefault(peer_id, []).append(writer)
        frames = FrameReader()
        # with latency emulation, frames go through a per-connection
        # _DelayPump that releases each one at arrival_time + delay
        pump: Optional[_DelayPump] = None
        if self._delay_inbound:

            async def deliver(envelope: dict) -> None:
                if peer_id in self._killed:
                    return
                handler = self._handlers.get(peer_id)
                if handler is not None:
                    await handler(envelope)

            pump = _DelayPump(deliver, name=f"tcp-delay-{peer_id}")
            self._conn_tasks.add(pump.task)
            pump.task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for envelope in frames.feed(chunk):
                    if isinstance(envelope, dict) and envelope.get("kind") == _HELLO:
                        # connection metadata: answer on the accepted
                        # socket, invisible to handlers/taps/counters
                        writer.write(
                            encode_frame(
                                {"kind": _HELLO_ACK, "max": self.max_wire_version}
                            )
                        )
                        await writer.drain()
                        continue
                    if peer_id in self._killed:
                        return
                    if pump is not None:
                        src = envelope.get("src", peer_id)
                        pump.put(self._latency(src, peer_id), envelope)
                        continue
                    handler = self._handlers.get(peer_id)
                    if handler is not None:
                        await handler(envelope)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # transport teardown; exiting cleanly keeps the loop quiet
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            if pump is not None:
                pump.stop()  # drain what's in flight, then stop
            writer.close()
            accepted = self._accepted.get(peer_id)
            if accepted and writer in accepted:
                accepted.remove(writer)
