"""Multi-process scale-out harness: cluster launcher + open-loop load.

A single :class:`~repro.net.cluster.LiveCluster` hosts every overlay
peer in one event loop — fine for protocol tests, useless for asking
"what happens at 96 peers and 200 requests/second?", where one Python
process serializes all the work.  This module shards one cluster across
N worker *processes*:

* Every worker builds the **identical** scenario from the shared seed
  (peer ids, components, capacities and the DHT ring are all derived
  deterministically), then hosts only the peers of its shard
  (``peer % procs == shard``) over a :class:`TcpTransport` with a fixed
  ``port_base``, so peer ``p``'s address is computable as
  ``(host, port_base + p)`` by everyone without a discovery step.
* Boot is two-phase (:meth:`LiveCluster.start_transport` then
  :meth:`LiveCluster.activate`): all shards come up listening before any
  shard starts its DHT-routed boot registration, which may land on any
  process.
* Load is **open-loop**: :class:`LoadDriver` fires Poisson arrivals off
  the wall clock (:class:`~repro.workload.arrivals.AsyncioScheduler`)
  and never awaits a composition before launching the next — offered
  load is what the experiment says it is, regardless of how slowly the
  cluster answers.  That is the load shape that makes congestion
  collapse observable, and the one the admission guard
  (:mod:`repro.net.admission`) exists to survive.

The controller talks to workers over a line-oriented JSON protocol on
stdin/stdout (commands down, events up), so the whole harness needs
nothing but subprocess pipes:

.. code-block:: text

    controller -> worker:  {"cmd": "activate"} | {"cmd": "load", ...}
                           {"cmd": "kill", "peer": 7} | {"cmd": "revive", "peer": 7}
                           {"cmd": "stop"}
    worker -> controller:  {"event": "listening", ...} -> "ready" ->
                           "load_done" (with per-request records) -> "stopped"

``python -m repro cluster`` is the CLI face of
:class:`ScaleoutController`; ``python -m repro cluster-worker`` is the
entry point the controller spawns.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..workload.arrivals import AsyncioScheduler, PoissonArrivals
from ..workload.generator import RequestGenerator
from .admission import AdmissionConfig
from .cluster import ClusterConfig, LiveCluster
from .measurement import MeasurementConfig
from .rpc import RpcError

__all__ = [
    "LoadDriver",
    "RequestRecord",
    "ScaleoutConfig",
    "ScaleoutController",
    "quantile",
    "run_scaleout",
    "run_worker",
    "summarize_records",
]

# request-id namespace width per shard: workers stamp their own ids so
# two processes can never open the same session id at one destination
RID_SPAN = 10_000_000


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScaleoutConfig:
    """One scale-out run: environment, sharding, load, and churn."""

    n_peers: int = 16
    n_functions: int = 8
    procs: int = 2
    port_base: int = 27000  # below the ephemeral range (32768+)
    seed: int = 0
    capacity_scale: float = 4.0
    # open-loop load (cluster-wide arrivals/s, split evenly over shards)
    rate: float = 20.0
    duration: float = 5.0
    budget: Optional[int] = None
    confirm: bool = True
    request_timeout: float = 10.0
    # destination fallback window; short, so an overloaded run's lost
    # credit resolves in bounded time instead of the tier-1 default 10 s
    collect_wall_timeout: float = 3.0
    soft_timeout: float = 30.0
    measure: bool = True
    wire_version: int = 2
    admission: Optional[AdmissionConfig] = None
    # scripted churn, offsets in seconds from the start of the load
    # phase: kill_peer dies at kill_after, revives at revive_after
    kill_peer: Optional[int] = None
    kill_after: float = 1.0
    revive_after: Optional[float] = None

    def __post_init__(self) -> None:
        if self.procs < 1:
            raise ValueError("procs must be >= 1")
        if self.n_peers < 2 * self.procs:
            raise ValueError(
                f"{self.n_peers} peers over {self.procs} procs leaves a shard "
                "without both a source and a destination"
            )
        if self.rate <= 0 or self.duration <= 0:
            raise ValueError("rate and duration must be positive")

    def hosted_by(self, shard: int) -> Tuple[int, ...]:
        """The peers worker ``shard`` hosts (round-robin assignment)."""
        return tuple(p for p in range(self.n_peers) if p % self.procs == shard)

    def cluster_config(self, shard: Optional[int] = None) -> ClusterConfig:
        """The per-process :class:`ClusterConfig` for one shard (or a
        single-process cluster hosting everything, when ``shard`` is
        None — used by tests and the smoke path)."""
        multi = shard is not None and self.procs > 1
        return ClusterConfig(
            n_peers=self.n_peers,
            n_functions=self.n_functions,
            transport="tcp" if multi else "loopback",
            port_base=self.port_base if multi else None,
            seed=self.seed,
            capacity_scale=self.capacity_scale,
            soft_timeout=self.soft_timeout,
            collect_wall_timeout=self.collect_wall_timeout,
            distributed=True,
            measurement=MeasurementConfig(enabled=self.measure),
            wire_version=self.wire_version,
            admission=self.admission,
            hosted=self.hosted_by(shard) if multi else None,
        )

    # -- JSON round trip (the config crosses the process boundary) -----
    def to_dict(self) -> Dict[str, object]:
        out = dataclasses.asdict(self)
        if self.admission is not None:
            out["admission"] = dataclasses.asdict(self.admission)
        return out

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "ScaleoutConfig":
        doc = dict(doc)
        adm = doc.get("admission")
        if adm is not None:
            doc["admission"] = AdmissionConfig(**adm)
        return cls(**doc)


# ----------------------------------------------------------------------
# open-loop load driver
# ----------------------------------------------------------------------
@dataclass
class RequestRecord:
    """One offered request's fate, in wall-clock seconds."""

    t: float  # launch offset from the start of the load phase
    latency: float  # seconds until the outcome was known
    outcome: str  # "ok" | "busy" | "failed" | "error"
    reason: str = ""
    source: int = -1
    dest: int = -1


class LoadDriver:
    """Drive one cluster shard with Poisson arrivals, open loop.

    The arrival callback launches each composition as a free-running
    task and returns immediately — completion latency never throttles
    the arrival stream.  Sources are drawn uniformly from ``sources``
    (this process's hosted peers in a sharded run); destinations may be
    anywhere in the overlay.  ``rid_base`` namespaces request ids so
    concurrent shards cannot collide at a shared destination.
    """

    def __init__(
        self,
        cluster: LiveCluster,
        rate: float,
        duration: float,
        *,
        sources: Optional[Sequence[int]] = None,
        generator: Optional[RequestGenerator] = None,
        budget: Optional[int] = None,
        confirm: bool = True,
        timeout: float = 10.0,
        rid_base: int = 0,
        seed: int = 0,
    ) -> None:
        self.cluster = cluster
        self.rate = rate
        self.duration = duration
        self.sources = sorted(sources if sources is not None else cluster.daemons)
        if not self.sources:
            raise ValueError("no source peers to drive load from")
        self.generator = generator or cluster.scenario.requests
        self.budget = budget
        self.confirm = confirm
        self.timeout = timeout
        self.rid_base = rid_base
        self.seed = seed
        self.records: List[RequestRecord] = []
        self.offered = 0
        self._seq = 0
        self._tasks: Set[asyncio.Task] = set()
        self._t0 = 0.0
        self._closing = False

    async def run(self) -> List[RequestRecord]:
        loop = asyncio.get_running_loop()
        import numpy as np

        sched = AsyncioScheduler(loop)
        arrivals = PoissonArrivals(
            sched, self.rate, self._launch, rng=np.random.default_rng(self.seed)
        )
        self._src_rng = np.random.default_rng(self.seed ^ 0x5CA1E)
        self._t0 = loop.time()
        arrivals.start()
        await asyncio.sleep(self.duration)
        arrivals.stop()
        self._closing = True
        # stragglers get one request-timeout to resolve, then the run is
        # over: anything still pending is cancelled and recorded as such
        if self._tasks:
            await asyncio.wait(list(self._tasks), timeout=self.timeout + 1.0)
        leftovers = [t for t in self._tasks if not t.done()]
        for task in leftovers:
            task.cancel()
        if leftovers:
            await asyncio.gather(*leftovers, return_exceptions=True)
        return self.records

    # -- internals ------------------------------------------------------
    def _launch(self) -> None:
        if self._closing:
            return
        src = self.sources[int(self._src_rng.integers(0, len(self.sources)))]
        request = self.generator.next_request(source=src)
        if self.rid_base:
            request = dataclasses.replace(
                request, request_id=self.rid_base + self._seq
            )
        self._seq += 1
        self.offered += 1
        task = asyncio.ensure_future(self._one(request))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _one(self, request) -> None:
        loop = asyncio.get_running_loop()
        t_launch = loop.time() - self._t0
        t0 = loop.time()
        outcome, reason = "ok", ""
        try:
            result = await self.cluster.compose(
                request,
                budget=self.budget,
                confirm=self.confirm,
                timeout=self.timeout,
            )
        except asyncio.CancelledError:
            outcome, reason = "error", "cancelled at shutdown"
        except asyncio.TimeoutError:
            outcome, reason = "error", f"no result within {self.timeout}s"
        except RpcError as exc:
            outcome, reason = "error", f"{type(exc).__name__}: {exc}"
        else:
            if not result.success:
                why = result.failure_reason or "failed"
                outcome = "busy" if why.startswith("busy") else "failed"
                reason = why
        self.records.append(
            RequestRecord(
                t=round(t_launch, 6),
                latency=round(loop.time() - t0, 6),
                outcome=outcome,
                reason=reason,
                source=request.source_peer,
                dest=request.dest_peer,
            )
        )


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank-with-interpolation quantile; 0.0 for empty input."""
    if not values:
        return 0.0
    data = sorted(values)
    pos = (len(data) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    return data[lo] + (data[hi] - data[lo]) * (pos - lo)


def _latency_block(latencies: Sequence[float]) -> Dict[str, float]:
    return {
        "count": len(latencies),
        "mean": sum(latencies) / len(latencies) if latencies else 0.0,
        "p50": quantile(latencies, 0.50),
        "p95": quantile(latencies, 0.95),
        "p99": quantile(latencies, 0.99),
    }


def summarize_records(
    records: Sequence[RequestRecord], duration: float
) -> Dict[str, object]:
    """Cluster-wide load summary: goodput, shed/failure rates, tails."""
    by: Dict[str, List[float]] = {"ok": [], "busy": [], "failed": [], "error": []}
    for rec in records:
        by.setdefault(rec.outcome, []).append(rec.latency)
    total = len(records)
    ok, busy = len(by["ok"]), len(by["busy"])
    bad = len(by["failed"]) + len(by["error"])
    return {
        "offered": total,
        "offered_rate": total / duration if duration else 0.0,
        "ok": ok,
        "busy": busy,
        "failed": len(by["failed"]),
        "error": len(by["error"]),
        "goodput": ok / duration if duration else 0.0,
        "shed_rate": busy / total if total else 0.0,
        "failure_rate": bad / total if total else 0.0,
        "latency_ok": _latency_block(by["ok"]),
        "latency_busy": _latency_block(by["busy"]),
        "latency_all": _latency_block([r.latency for r in records]),
    }


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _emit(doc: Dict[str, object]) -> None:
    sys.stdout.write(json.dumps(doc, separators=(",", ":")) + "\n")
    sys.stdout.flush()


async def _stdin_lines():
    loop = asyncio.get_running_loop()
    while True:
        line = await loop.run_in_executor(None, sys.stdin.readline)
        if not line:
            return
        line = line.strip()
        if line:
            yield line


async def run_worker(config: ScaleoutConfig, shard: int) -> int:
    """One shard's process body: obey stdin commands, report on stdout."""
    hosted = config.hosted_by(shard)
    cluster = LiveCluster(config.cluster_config(shard))
    await cluster.start_transport()
    _emit({"event": "listening", "shard": shard, "peers": list(hosted)})
    load_task: Optional[asyncio.Task] = None

    # each shard draws its own request stream: same environment, but
    # independent randomness, so shards don't replay identical graphs
    base = cluster.scenario.requests
    import numpy as np

    generator = RequestGenerator(
        base.overlay,
        base.functions,
        base.config,
        rng=np.random.default_rng(config.seed * 7919 + shard + 1),
        alive=base.alive,
        endpoint_pool=base.endpoint_pool,
    )

    async def _load() -> None:
        driver = LoadDriver(
            cluster,
            rate=config.rate / config.procs,
            duration=config.duration,
            sources=hosted,
            generator=generator,
            budget=config.budget,
            confirm=config.confirm,
            timeout=config.request_timeout,
            rid_base=RID_SPAN * (shard + 1),
            seed=config.seed * 104729 + shard,
        )
        records = await driver.run()
        _emit(
            {
                "event": "load_done",
                "shard": shard,
                "offered": driver.offered,
                "records": [dataclasses.asdict(r) for r in records],
            }
        )

    failures = 0
    try:
        async for line in _stdin_lines():
            try:
                cmd = json.loads(line)
            except json.JSONDecodeError:
                continue
            name = cmd.get("cmd")
            if name == "activate":
                await cluster.activate()
                _emit({"event": "ready", "shard": shard})
            elif name == "load":
                load_task = asyncio.ensure_future(_load())
            elif name == "kill":
                cluster.kill_peer(int(cmd["peer"]))
                _emit({"event": "killed", "shard": shard, "peer": cmd["peer"]})
            elif name == "revive":
                await cluster.revive_peer(int(cmd["peer"]))
                _emit({"event": "revived", "shard": shard, "peer": cmd["peer"]})
            elif name == "stop":
                break
            else:
                _emit({"event": "error", "shard": shard, "error": f"unknown cmd {name!r}"})
    finally:
        if load_task is not None and not load_task.done():
            load_task.cancel()
            await asyncio.gather(load_task, return_exceptions=True)
        await cluster.stop()
        errors = cluster.errors()
        failures = len(errors)
        _emit(
            {
                "event": "stopped",
                "shard": shard,
                "errors": errors,
                "admission": cluster.admission_stats(),
                "rpc": cluster.rpc_stats(),
            }
        )
    return 1 if failures else 0


# ----------------------------------------------------------------------
# controller side
# ----------------------------------------------------------------------
class _Worker:
    """Controller-side handle on one spawned shard process."""

    def __init__(self, shard: int, proc: asyncio.subprocess.Process) -> None:
        self.shard = shard
        self.proc = proc
        self.events: List[Dict[str, object]] = []
        self._stderr_tail: List[bytes] = []
        self._stderr_task = asyncio.ensure_future(self._drain_stderr())

    async def _drain_stderr(self) -> None:
        assert self.proc.stderr is not None
        while True:
            line = await self.proc.stderr.readline()
            if not line:
                return
            self._stderr_tail.append(line)
            del self._stderr_tail[:-40]  # keep the last lines for diagnosis

    def stderr_text(self) -> str:
        return b"".join(self._stderr_tail).decode("utf-8", "replace")

    def send(self, cmd: Dict[str, object]) -> None:
        assert self.proc.stdin is not None
        self.proc.stdin.write(json.dumps(cmd).encode("utf-8") + b"\n")

    async def expect(self, event: str, timeout: float) -> Dict[str, object]:
        """Read events until ``event`` arrives (other events are kept)."""
        assert self.proc.stdout is not None

        async def _next() -> Dict[str, object]:
            while True:
                line = await self.proc.stdout.readline()
                if not line:
                    raise RuntimeError(
                        f"worker {self.shard} exited while waiting for "
                        f"{event!r}; stderr tail:\n{self.stderr_text()}"
                    )
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    continue  # stray non-protocol output
                if isinstance(doc, dict) and "event" in doc:
                    self.events.append(doc)
                    if doc["event"] == event:
                        return doc

        return await asyncio.wait_for(_next(), timeout)


class ScaleoutController:
    """Spawn, synchronize, load, churn, and reap a sharded cluster."""

    def __init__(self, config: ScaleoutConfig) -> None:
        self.config = config
        self.workers: List[_Worker] = []

    async def run(self) -> Dict[str, object]:
        cfg = self.config
        cfg_json = json.dumps(cfg.to_dict())
        try:
            for shard in range(cfg.procs):
                proc = await asyncio.create_subprocess_exec(
                    sys.executable,
                    "-m",
                    "repro",
                    "cluster-worker",
                    cfg_json,
                    "--shard",
                    str(shard),
                    stdin=asyncio.subprocess.PIPE,
                    stdout=asyncio.subprocess.PIPE,
                    stderr=asyncio.subprocess.PIPE,
                )
                self.workers.append(_Worker(shard, proc))
            return await self._drive()
        finally:
            await self._reap()

    async def _drive(self) -> Dict[str, object]:
        cfg = self.config
        boot_timeout = 30.0 + cfg.n_peers * 0.5
        # phase 1: every listener up before anyone registers over the DHT
        await asyncio.gather(
            *(w.expect("listening", boot_timeout) for w in self.workers)
        )
        for w in self.workers:
            w.send({"cmd": "activate"})
        await asyncio.gather(*(w.expect("ready", boot_timeout) for w in self.workers))
        # load phase, with optional scripted churn against one peer
        for w in self.workers:
            w.send({"cmd": "load"})
        churn = None
        if cfg.kill_peer is not None:
            churn = asyncio.ensure_future(self._churn())
        load_timeout = cfg.duration + cfg.request_timeout + boot_timeout
        dones = await asyncio.gather(
            *(w.expect("load_done", load_timeout) for w in self.workers)
        )
        if churn is not None:
            await churn
        for w in self.workers:
            w.send({"cmd": "stop"})
        stops = await asyncio.gather(
            *(w.expect("stopped", boot_timeout) for w in self.workers)
        )
        return self._merge(dones, stops)

    async def _churn(self) -> None:
        cfg = self.config
        owner = self.workers[cfg.kill_peer % cfg.procs]
        await asyncio.sleep(cfg.kill_after)
        owner.send({"cmd": "kill", "peer": cfg.kill_peer})
        if cfg.revive_after is not None:
            await asyncio.sleep(max(0.0, cfg.revive_after - cfg.kill_after))
            owner.send({"cmd": "revive", "peer": cfg.kill_peer})

    def _merge(self, dones, stops) -> Dict[str, object]:
        cfg = self.config
        records = [
            RequestRecord(**rec) for done in dones for rec in done["records"]
        ]
        admission = {
            key: sum(int(s["admission"].get(key, 0)) for s in stops)
            for key in (
                "sessions_admitted",
                "sessions_rejected",
                "probes_shed",
                "budget_degrades",
            )
        }
        admission["enabled"] = any(s["admission"].get("enabled") for s in stops)
        errors = [e for s in stops for e in s["errors"]]
        return {
            "config": cfg.to_dict(),
            "procs": cfg.procs,
            "peers": cfg.n_peers,
            "summary": summarize_records(records, cfg.duration),
            "admission": admission,
            "errors": errors,
            "records": [dataclasses.asdict(r) for r in records],
        }

    async def _reap(self) -> None:
        for w in self.workers:
            if w.proc.returncode is None and w.proc.stdin is not None:
                try:
                    w.send({"cmd": "stop"})
                    w.proc.stdin.close()
                except (BrokenPipeError, ConnectionResetError, RuntimeError):
                    pass
        for w in self.workers:
            try:
                await asyncio.wait_for(w.proc.wait(), timeout=15.0)
            except asyncio.TimeoutError:
                w.proc.kill()
                await w.proc.wait()
            w._stderr_task.cancel()
            await asyncio.gather(w._stderr_task, return_exceptions=True)


async def run_scaleout(config: ScaleoutConfig) -> Dict[str, object]:
    """Run one full scale-out experiment and return the merged report."""
    return await ScaleoutController(config).run()
