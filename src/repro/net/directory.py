"""A live peer's slice of the decentralized service directory.

In distributed mode every :class:`~repro.net.peer.PeerDaemon` stores the
meta-data rows whose DHT keys it owns (or replicates) — the live
counterpart of one Pastry node's ``store``.  Rows arrive exclusively as
``RegisterComponent`` frames and leave as ``LookupRequest`` replies; the
slice never consults the shared :class:`ServiceRegistry`, which is what
the cluster's shared-state guard asserts.

Rows are keyed by ``(key, component_id)`` so re-registration (a peer
retrying a boot-time RPC, or a replica receiving the same row from two
paths) is idempotent rather than duplicating directory entries.
"""

from __future__ import annotations

from typing import Dict, List

from ..discovery.metadata import ServiceMetadata

__all__ = ["DirectorySlice"]


class DirectorySlice:
    """The directory rows one live peer holds for keys it is responsible for."""

    def __init__(self) -> None:
        self._rows: Dict[int, Dict[int, ServiceMetadata]] = {}
        self.stores = 0  # RegisterComponent frames applied (incl. repeats)
        self.serves = 0  # LookupRequest queries answered from this slice

    def store(self, key: int, meta: ServiceMetadata) -> bool:
        """Insert one row; True iff it was not already present."""
        rows = self._rows.setdefault(key, {})
        fresh = meta.component_id not in rows
        rows[meta.component_id] = meta
        self.stores += 1
        return fresh

    def lookup(self, key: int) -> List[ServiceMetadata]:
        """Every row stored under ``key``, in deterministic order."""
        self.serves += 1
        rows = self._rows.get(key)
        if not rows:
            return []
        return [rows[cid] for cid in sorted(rows)]

    def keys(self) -> List[int]:
        return sorted(self._rows)

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._rows.values())
