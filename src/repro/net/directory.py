"""A live peer's slice of the decentralized service directory.

In distributed mode every :class:`~repro.net.peer.PeerDaemon` stores the
meta-data rows whose DHT keys it owns (or replicates) — the live
counterpart of one Pastry node's ``store``.  Rows arrive exclusively as
``RegisterComponent`` / ``RegisterBatch`` frames and leave as
``LookupRequest`` replies; the slice never consults the shared
:class:`ServiceRegistry`, which is what the cluster's shared-state guard
asserts.

Rows are keyed by ``(key, component_id)`` so re-registration (a peer
retrying a boot-time RPC, or a replica receiving the same row from two
paths) is idempotent rather than duplicating directory entries.

Beyond the authoritative rows, the slice carries the bookkeeping for the
**directory acceleration tier** (see ``docs/ARCHITECTURE.md``):

* a monotonic **version** counter, bumped on every content-*changing*
  store, stamped on lookup/registration replies so peer-local caches can
  be invalidated precisely on registration churn;
* per-key **serve-rate tracking** (an exponentially decayed counter):
  when remote demand for a key crosses the configured hotness threshold
  its holder pushes the rows to the ring peers past the base replica set
  (``ReplicatePush``), and lookups resolve in the key's routing
  neighbourhood instead of converging on the owner;
* a **Bloom summary** of the function names held, piggybacked on replies
  so queriers can prove absence without routing the DHT;
* **stale-holder tracking** — which peers recently queried a key, were
  pushed replica rows, or received the Bloom summary — so a
  content-changing registration can invalidate exactly the peers that
  may hold a stale copy (``ReplicaInvalidate``), rather than broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..discovery.metadata import ServiceMetadata
from .bloom import BloomFilter

__all__ = ["DirectorySlice", "DirectoryTierConfig"]

# stale-holder sets are bounded: a peer evicted here is still covered by
# the TTL backstop on its cached entry, so caps trade a bounded
# staleness window (<= cache_ttl) for bounded memory
_QUERIER_CAP = 128
_BLOOM_RECIPIENT_CAP = 512


@dataclass(frozen=True)
class DirectoryTierConfig:
    """Knobs for the directory acceleration tier (distributed mode).

    ``enabled=False`` reproduces the pre-tier behaviour exactly: every
    logical lookup routes the DHT and crosses the wire to the key's
    owner, registration travels one ``RegisterComponent`` per (spec,
    replica), and no state is cached anywhere.
    """

    enabled: bool = True
    # peer-local positive-cache TTL (seconds); also bounds the staleness
    # window for holders the precise invalidation could not reach
    cache_ttl: float = 30.0
    # short-circuit absent-function lookups via the owner's Bloom summary
    negative_cache: bool = True
    # decayed remote-serve count that triggers replica fan-out; 0 turns
    # fan-out off (peer-local caching still applies)
    hot_threshold: float = 8.0
    # ring successors past the base replica set that receive hot rows
    replica_span: int = 2
    # half-life (seconds) of the serve-rate decay
    popularity_halflife: float = 5.0


class DirectorySlice:
    """The directory rows one live peer holds for keys it is responsible for."""

    def __init__(self) -> None:
        self._rows: Dict[int, Dict[int, ServiceMetadata]] = {}
        # replica tier: rows pushed here because the key ran hot at its
        # owner — served as a fallback, never authoritative for churn
        self._replica_rows: Dict[int, Tuple[int, Dict[int, ServiceMetadata]]] = {}
        self.stores = 0  # registration frames applied (incl. repeats)
        self.serves = 0  # LookupRequest queries answered from this slice
        self.replica_stores = 0  # ReplicatePush row sets accepted
        # monotonic content version: bumped on every store that changed
        # a row; per-key versions record the slice version at that key's
        # last change so invalidations can carry an exact watermark
        self.version = 0
        self._key_version: Dict[int, int] = {}
        # popularity: key -> (decayed remote-serve count, last bump time)
        self._rate: Dict[int, Tuple[float, float]] = {}
        # keys whose current version was already pushed to the extended
        # replica set (re-armed automatically when the version bumps)
        self._pushed_version: Dict[int, int] = {}
        self._pushed_peers: Dict[int, Set[int]] = {}
        # peers that recently queried a key / hold our Bloom summary —
        # the precise invalidation targets for a content change
        self._queriers: Dict[int, Set[int]] = {}
        self._bloom_recipients: Set[int] = set()
        self._bloom = BloomFilter()
        self._bloom_wire: Optional[List] = None

    # ------------------------------------------------------------------
    # authoritative rows
    # ------------------------------------------------------------------
    def store(self, key: int, meta: ServiceMetadata) -> bool:
        """Insert one row; True iff it changed the slice's content.

        A brand-new ``(key, component_id)`` row and a re-registration
        that *replaced* a row's meta-data both count as changes (and
        bump :attr:`version`); an exact replay — an RPC retry, a replica
        receiving the same row twice — is a no-op and returns False.
        """
        rows = self._rows.setdefault(key, {})
        changed = rows.get(meta.component_id) != meta
        rows[meta.component_id] = meta
        self.stores += 1
        if changed:
            self.version += 1
            self._key_version[key] = self.version
            self._bloom.add(meta.function)
            self._bloom_wire = None
        return changed

    def lookup(self, key: int) -> List[ServiceMetadata]:
        """Every row stored under ``key``, in deterministic order."""
        self.serves += 1
        rows = self._rows.get(key)
        if not rows:
            return []
        return [rows[cid] for cid in sorted(rows)]

    def rows(self, key: int) -> List[ServiceMetadata]:
        """Like :meth:`lookup` but without bumping the serve counter
        (internal reads: replica pushes, stats)."""
        rows = self._rows.get(key)
        if not rows:
            return []
        return [rows[cid] for cid in sorted(rows)]

    def key_version(self, key: int) -> int:
        """The slice version at ``key``'s last content change (0 = never)."""
        return self._key_version.get(key, 0)

    def keys(self) -> List[int]:
        return sorted(self._rows)

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._rows.values())

    # ------------------------------------------------------------------
    # replica tier (rows pushed here by a hot key's owner)
    # ------------------------------------------------------------------
    def store_replica(
        self, key: int, rows: Sequence[ServiceMetadata], version: int
    ) -> bool:
        """Accept a ``ReplicatePush`` row set; newest version wins."""
        held = self._replica_rows.get(key)
        if held is not None and held[0] >= version:
            return False
        self._replica_rows[key] = (version, {m.component_id: m for m in rows})
        self.replica_stores += 1
        return True

    def replica_lookup(self, key: int) -> Optional[List[ServiceMetadata]]:
        """Rows pushed here for ``key``, or None if it holds none."""
        held = self._replica_rows.get(key)
        if held is None:
            return None
        rows = held[1]
        return [rows[cid] for cid in sorted(rows)]

    def drop_replica(self, key: int) -> None:
        self._replica_rows.pop(key, None)

    def replica_keys(self) -> List[int]:
        return sorted(self._replica_rows)

    # ------------------------------------------------------------------
    # popularity + fan-out bookkeeping
    # ------------------------------------------------------------------
    def note_serve_rate(self, key: int, now: float, halflife: float) -> float:
        """Bump and return ``key``'s exponentially decayed serve count."""
        rate, last = self._rate.get(key, (0.0, now))
        if halflife > 0 and now > last:
            rate *= 0.5 ** ((now - last) / halflife)
        rate += 1.0
        self._rate[key] = (rate, now)
        return rate

    def mark_pushed(self, key: int) -> bool:
        """Claim the fan-out for ``key``'s current version.

        True iff this version was not already pushed — the caller that
        wins the claim performs the (async) push, so concurrent serves
        spawn exactly one fan-out per content version."""
        version = self.key_version(key)
        if self._pushed_version.get(key) == version:
            return False
        self._pushed_version[key] = version
        return True

    def note_pushed(self, key: int, peers: Sequence[int]) -> None:
        self._pushed_peers.setdefault(key, set()).update(peers)

    def note_querier(self, key: int, peer: int) -> None:
        holders = self._queriers.setdefault(key, set())
        if len(holders) < _QUERIER_CAP:
            holders.add(peer)

    def note_bloom_recipient(self, peer: int) -> None:
        if len(self._bloom_recipients) < _BLOOM_RECIPIENT_CAP:
            self._bloom_recipients.add(peer)

    def stale_holders(self, key: int) -> Set[int]:
        """Peers that may hold a stale copy after ``key``'s content changed:
        recent queriers (positive caches), pushed replica holders, and
        Bloom-summary recipients (negative caches)."""
        out: Set[int] = set()
        out |= self._queriers.get(key, set())
        out |= self._pushed_peers.get(key, set())
        out |= self._bloom_recipients
        return out

    # ------------------------------------------------------------------
    # Bloom summary
    # ------------------------------------------------------------------
    @property
    def bloom(self) -> BloomFilter:
        return self._bloom

    def bloom_wire(self) -> List:
        if self._bloom_wire is None:
            self._bloom_wire = self._bloom.to_wire()
        return self._bloom_wire

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "rows": len(self),
            "keys": len(self._rows),
            "stores": self.stores,
            "serves": self.serves,
            "version": self.version,
            "replica_keys": len(self._replica_rows),
            "replica_stores": self.replica_stores,
        }
