"""Peer-local topology measurement plane: live link state for live BCP.

The shared :class:`~repro.topology.overlay.Overlay` is a *declared*
snapshot: link delays come from the IP model (or WAN RTT model) at build
time and never change.  The paper's framework, by contrast, treats the
overlay as continuously *measured* — peers benchmark their links and
react to degradation.  This module closes that gap for the live runtime
without touching the simulator substrates:

* **Active probing** — each daemon's :class:`MeasurementPlane`
  periodically sends ``PathProbe`` frames (answered with ``ProbeAck``)
  to a bounded set of its overlay neighbours, charged to the
  ``net_measure`` ledger category.  Down paths are probed first, so a
  recovered peer is re-admitted by the next cycle.
* **Passive measurement** — every RPC round-trip already crosses the
  link; :class:`~repro.net.rpc.RpcEndpoint` reports per-call RTTs via
  its ``on_rtt`` hook (first-attempt successes only — Karn's algorithm:
  a retransmitted exchange's RTT is ambiguous), so hot paths are
  measured for free.
* **Estimation** — per-destination :class:`LinkEstimator` maintains a
  TCP-style smoothed RTT (``srtt``/``rttvar`` EWMA).  After a warm-up
  it locks a *baseline*; estimates that stop receiving samples decay
  back toward that baseline with a configurable half-life, so stale
  measurements cannot steer routing forever.
* **Dead-path detection** — ``down_after`` consecutive RPC/probe
  failures to a peer trigger :meth:`MeasurementPlane.mark_path_down`;
  any later successful exchange (typically a recovery probe) triggers
  :meth:`~MeasurementPlane.mark_path_up`.
* **Adaptive routing** — material deltas feed a
  :class:`MeasuredOverlayView` layered over the static overlay.  The
  view keeps the base topology's edge set and canonical link order (so
  :class:`~repro.core.resources.ResourcePool` arrays stay aligned) but
  re-prices individual links and prices down-peer links at ``inf``,
  then fires the overlay cache listeners so BCP's per-pair QoS caches
  re-price.

**Parity by construction.**  Wall-clock RTTs and modeled delays live in
different unit systems, so measurements are applied as *ratios*: a
link's modeled delay is scaled by ``srtt / baseline``, and only when the
inflation is material (``material_ratio`` and ``min_delta`` both
exceeded).  Over an unchanged topology the ratio hovers at ~1, no
override is ever installed, and the view delegates every query verbatim
to the base overlay — selections are bit-identical to the static
substrates, which is what the parity suite asserts with measurement on.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from . import codec
from .rpc import RetryPolicy, RpcError

__all__ = [
    "MeasurementConfig",
    "LinkEstimator",
    "MeasuredOverlayView",
    "MeasurementPlane",
]

Link = Tuple[int, int]


def _canon(a: int, b: int) -> Link:
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class MeasurementConfig:
    """Knobs for the peer-local measurement plane.

    ``enabled=False`` reproduces the pre-measurement behaviour exactly:
    no probe traffic, no passive sampling, no routing adaptation.
    ``probe_interval=0`` keeps the plane passive-only (RPC piggyback and
    dead-path detection still run, but no active probes are sent).
    """

    enabled: bool = True
    # seconds between active probe cycles; 0 disables active probing
    probe_interval: float = 0.5
    # static overlay neighbours probed per cycle (nearest by declared delay)
    probe_fanout: int = 3
    # hard cap on probes sent per cycle, recovery probes included
    probe_budget: int = 8
    # single-attempt probe timeout (probes never retry: a retried RTT is
    # ambiguous, and the failure itself is the dead-path signal)
    probe_timeout: float = 0.25
    # EWMA gains (TCP RFC 6298 defaults: srtt 1/8, rttvar 1/4)
    alpha: float = 0.125
    beta: float = 0.25
    # samples before the baseline RTT locks (and deltas become meaningful)
    warmup: int = 3
    # seconds without a sample before the estimate starts decaying back
    # toward baseline, and the half-life of that decay
    stale_after: float = 5.0
    decay_halflife: float = 5.0
    # consecutive exhausted exchanges before mark_path_down fires
    down_after: int = 3
    # a link is re-priced only when srtt/baseline exceeds this ratio AND
    # the absolute wall-clock change exceeds min_delta — keeps scheduler
    # jitter from ever perturbing routing (the parity guarantee)
    material_ratio: float = 1.5
    min_delta: float = 0.002
    # an installed scale is only replaced when it moves by this relative
    # amount, so per-sample jitter does not thrash router rebuilds
    rescale_tolerance: float = 0.25
    # feed deltas into the MeasuredOverlayView (distributed mode only;
    # False collects statistics without touching routing)
    adapt_routing: bool = True

    def __post_init__(self) -> None:
        if self.probe_interval < 0:
            raise ValueError("probe_interval must be >= 0")
        if self.probe_fanout < 0 or self.probe_budget < 0:
            raise ValueError("probe fanout/budget must be >= 0")
        if not 0 < self.alpha <= 1 or not 0 < self.beta <= 1:
            raise ValueError("EWMA gains must be in (0, 1]")
        if self.warmup < 1:
            raise ValueError("warmup must be >= 1")
        if self.down_after < 1:
            raise ValueError("down_after must be >= 1")
        if self.material_ratio <= 1.0:
            raise ValueError("material_ratio must be > 1")


class LinkEstimator:
    """Smoothed RTT for one measured path (TCP-style srtt/rttvar EWMA).

    The first sample seeds ``srtt``; after ``warmup`` samples the
    then-current ``srtt`` locks in as the *baseline* — the path's normal
    RTT, against which later inflation is judged.  :meth:`estimate`
    applies staleness decay: once no sample has arrived for
    ``stale_after`` seconds, the deviation from baseline halves every
    ``decay_halflife`` seconds, so an estimator that stops being fed
    gracefully forgets a transient spike instead of pinning it forever.
    """

    __slots__ = ("_cfg", "srtt", "rttvar", "baseline", "samples", "last_at")

    def __init__(self, config: MeasurementConfig) -> None:
        self._cfg = config
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.baseline: Optional[float] = None
        self.samples: int = 0
        self.last_at: float = 0.0

    def add_sample(self, rtt: float, now: float) -> None:
        if rtt < 0:
            return
        self.samples += 1
        self.last_at = now
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            err = rtt - self.srtt
            self.rttvar += self._cfg.beta * (abs(err) - self.rttvar)
            self.srtt += self._cfg.alpha * err
        if self.baseline is None and self.samples >= self._cfg.warmup:
            self.baseline = self.srtt

    def estimate(self, now: float) -> Optional[float]:
        """Current smoothed RTT with staleness decay applied."""
        if self.srtt is None:
            return None
        if self.baseline is None:
            return self.srtt
        age = now - self.last_at
        if age <= self._cfg.stale_after:
            return self.srtt
        halves = (age - self._cfg.stale_after) / self._cfg.decay_halflife
        return self.baseline + (self.srtt - self.baseline) * (0.5 ** halves)

    def ratio(self, now: float) -> float:
        """Measured inflation over baseline (1.0 until warm-up locks)."""
        if self.baseline is None or self.baseline <= 0:
            return 1.0
        est = self.estimate(now)
        return est / self.baseline if est is not None else 1.0

    def snapshot(self, now: float) -> Dict[str, float]:
        return {
            "srtt": self.srtt if self.srtt is not None else -1.0,
            "rttvar": self.rttvar,
            "baseline": self.baseline if self.baseline is not None else -1.0,
            "samples": self.samples,
            "ratio": round(self.ratio(now), 3),
        }


class MeasuredOverlayView:
    """An overlay facade layering measured deltas onto the static map.

    With no deltas installed every query delegates verbatim to the base
    overlay (including its router, so memoized paths are shared) —
    selections are bit-identical to the static substrate by
    construction.  The first material delta materializes a private
    :meth:`~repro.topology.routing.OverlayRouter.reweighted` router over
    the *same* graph object: scaled links carry ``declared_delay x
    scale``, links incident to a down peer carry ``inf``.  The edge set
    and canonical link order are unchanged, so pool capacity/usage
    arrays indexed by ``router.link_order`` remain valid.

    Mutations fire the view's cache listeners (BCP registers its
    ``clear_caches`` at construction), so per-pair QoS caches re-price
    against the new router.
    """

    def __init__(self, base) -> None:
        self.base = base
        self.graph = base.graph
        self._scales: Dict[Link, float] = {}
        self._down: Set[int] = set()
        self._router = None  # materialized lazily; None -> delegate
        self._loss_cache: Dict[Tuple[int, int], float] = {}
        self._cache_listeners: List[Callable[[], None]] = []
        self.rebuilds = 0  # private routers materialized (cost telemetry)

    # -- delegation ----------------------------------------------------
    def __getattr__(self, name):
        # anything not overridden (ip_of, ip_graph, kind, ...) is the base's
        return getattr(self.base, name)

    @property
    def n_peers(self) -> int:
        return self.base.n_peers

    def peers(self) -> List[int]:
        return self.base.peers()

    @property
    def router(self):
        if not self._scales and not self._down:
            return self.base.router
        if self._router is None:
            overrides: Dict[Link, float] = {}
            for link, scale in self._scales.items():
                overrides[link] = float(self.graph.edges[link]["delay"]) * scale
            if self._down:
                for u, v in self.graph.edges:
                    link = _canon(u, v)
                    if u in self._down or v in self._down:
                        overrides[link] = float("inf")
            self._router = self.base.router.reweighted(overrides)
            self.rebuilds += 1
        return self._router

    def latency(self, a: int, b: int) -> float:
        return self.router.delay(a, b)

    def link_bandwidth(self, a: int, b: int) -> float:
        return self.base.link_bandwidth(a, b)

    def link_loss_add(self, a: int, b: int) -> float:
        return self.base.link_loss_add(a, b)

    def path_loss_add(self, a: int, b: int) -> float:
        """Additive loss along the *measured* route a->b.

        Unlike the base overlay this guards unreachability (a down peer
        prices its links at ``inf``): an unreachable pair reports ``inf``
        loss rather than raising, mirroring the delay metric.
        """
        if not self._scales and not self._down:
            return self.base.path_loss_add(a, b)
        if a == b:
            return 0.0
        key = (a, b)
        hit = self._loss_cache.get(key)
        if hit is None:
            router = self.router
            if not router.reachable(a, b):
                hit = float("inf")
            else:
                hit = sum(
                    self.base.link_loss_add(u, v) for u, v in router.links(a, b)
                )
            self._loss_cache[key] = hit
        return hit

    def add_cache_listener(self, callback: Callable[[], None]) -> None:
        self._cache_listeners.append(callback)

    def clear_caches(self) -> None:
        self._invalidate()

    # -- mutation surface (driven by MeasurementPlane) -----------------
    @property
    def down_peers(self) -> Set[int]:
        return set(self._down)

    @property
    def link_scales(self) -> Dict[Link, float]:
        return dict(self._scales)

    def set_link_scale(self, link: Link, scale: Optional[float]) -> bool:
        """Install (or with ``None`` clear) a delay multiplier for one
        overlay link.  Returns whether anything changed."""
        link = _canon(*link)
        if link not in self.graph.edges:
            return False
        if scale is None:
            if link not in self._scales:
                return False
            del self._scales[link]
        else:
            if self._scales.get(link) == scale:
                return False
            self._scales[link] = float(scale)
        self._invalidate()
        return True

    def set_peer_down(self, peer: int) -> bool:
        if peer in self._down:
            return False
        self._down.add(peer)
        self._invalidate()
        return True

    def clear_peer_down(self, peer: int) -> bool:
        if peer not in self._down:
            return False
        self._down.discard(peer)
        self._invalidate()
        return True

    def reset(self) -> None:
        """Drop every measured delta (used on peer restart)."""
        if self._scales or self._down:
            self._scales.clear()
            self._down.clear()
            self._invalidate()

    def _invalidate(self) -> None:
        self._router = None
        self._loss_cache.clear()
        for callback in self._cache_listeners:
            callback()


class MeasurementPlane:
    """One live peer's measurement state: prober, estimators, path health.

    Samples arrive through two funnels, both wired by the daemon:

    * ``record_rtt(peer, rtt, method)`` — from the endpoint's ``on_rtt``
      hook (first-attempt successes only) and from answered probes;
    * ``record_failure(peer, method)`` — from the endpoint's
      ``on_failure`` hook whenever an RPC exhausts its retries.

    When constructed with a :class:`MeasuredOverlayView` (distributed
    mode with ``adapt_routing``), material estimate changes and path
    up/down transitions are pushed into the view; otherwise the plane is
    a pure observer (shared-state mode keeps one global BCP whose
    overlay must not be mutated per-peer).
    """

    def __init__(
        self,
        peer_id: int,
        base_overlay,
        endpoint,
        config: MeasurementConfig,
        view: Optional[MeasuredOverlayView] = None,
        tap=None,
        trace=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.peer_id = peer_id
        self.config = config
        self.endpoint = endpoint
        self.view = view
        self._tap = tap
        self._trace = trace
        self._clock = clock
        # bounded probe set: this peer's direct overlay neighbours,
        # nearest (by declared delay) first
        neighbours = sorted(
            base_overlay.graph.neighbors(peer_id),
            key=lambda q: float(base_overlay.graph.edges[peer_id, q]["delay"]),
        )
        self.neighbours: List[int] = neighbours[: config.probe_fanout]
        self._links: Set[Link] = {
            _canon(peer_id, q) for q in base_overlay.graph.neighbors(peer_id)
        }
        self._probe_retry = RetryPolicy(
            timeout=config.probe_timeout, retries=0, backoff=0.01
        )
        self._estimators: Dict[int, LinkEstimator] = {}
        self._failures: Dict[int, int] = {}
        self._down: Dict[int, float] = {}  # peer -> clock() at transition
        self._applied: Dict[Link, float] = {}  # scales installed in the view
        self._task: Optional[asyncio.Task] = None
        self._seq = 0
        self._rotate = 0
        # counters (surfaced via stats() / the CLI --profile block)
        self.probes_sent = 0
        self.probe_failures = 0
        self.samples_active = 0
        self.samples_passive = 0
        self.down_events = 0
        self.up_events = 0
        self.reprices = 0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Begin the active probe loop (needs a running event loop)."""
        if (
            not self.config.enabled
            or self.config.probe_interval <= 0
            or self._task is not None
        ):
            return
        self._task = asyncio.get_running_loop().create_task(
            self._probe_loop(), name=f"measure-{self.peer_id}"
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def rebind(self, endpoint) -> None:
        """Re-home the plane on a fresh endpoint after a peer restart.

        A restarted process has no memory: estimators, failure counters
        and any routing deltas this peer had installed are dropped."""
        self.stop()
        self.endpoint = endpoint
        self._estimators.clear()
        self._failures.clear()
        self._down.clear()
        self._applied.clear()
        self._seq = 0
        if self.view is not None:
            self.view.reset()

    # -- active probing ------------------------------------------------
    async def _probe_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.config.probe_interval)
                await self._probe_cycle()
        except asyncio.CancelledError:
            pass

    def _targets(self) -> List[int]:
        """This cycle's probe targets, recovery probes first.

        Down paths can only come back via a successful probe, so they
        always make the cut; remaining budget goes to the neighbour set,
        rotated so a fanout larger than the budget still covers every
        neighbour over successive cycles."""
        targets = sorted(self._down)
        if self.neighbours:
            n = len(self.neighbours)
            start = self._rotate % n
            self._rotate += 1
            ring = self.neighbours[start:] + self.neighbours[:start]
            targets += [q for q in ring if q not in self._down]
        return targets[: self.config.probe_budget]

    async def _probe_cycle(self) -> None:
        loop = asyncio.get_running_loop()
        for target in self._targets():
            self._seq += 1
            self.probes_sent += 1
            # the wire tap books the frame itself under ``net_measure``
            t0 = loop.time()
            try:
                # ignore_down: recovery probes are exactly the calls that
                # must still reach a marked-down peer — with the RPC
                # layer's peer_down fail-fast applied here, a downed path
                # could never be observed coming back up
                await self.endpoint.call(
                    target,
                    codec.PathProbe(origin=self.peer_id, seq=self._seq, sent_at=t0),
                    retry=self._probe_retry,
                    ignore_down=True,
                )
            except RpcError:
                # the endpoint's on_failure hook already routed this into
                # record_failure; here the loop just moves on
                continue

    # -- sample intake -------------------------------------------------
    def record_rtt(self, peer: int, rtt: float, method: str = "") -> None:
        """One measured round-trip to ``peer`` (active or passive)."""
        if not self.config.enabled:
            return
        if method == "PathProbe":
            self.samples_active += 1
        else:
            self.samples_passive += 1
        now = self._clock()
        est = self._estimators.get(peer)
        if est is None:
            est = self._estimators[peer] = LinkEstimator(self.config)
        est.add_sample(rtt, now)
        self._failures[peer] = 0
        if peer in self._down:
            self.mark_path_up(peer)
        self._reprice(peer, now)

    def record_failure(self, peer: int, method: str = "") -> None:
        """One exhausted exchange toward ``peer`` (probe or RPC)."""
        if not self.config.enabled:
            return
        if method == "PathProbe":
            self.probe_failures += 1
        count = self._failures.get(peer, 0) + 1
        self._failures[peer] = count
        if peer not in self._down and count >= self.config.down_after:
            self.mark_path_down(peer)

    # -- path health ---------------------------------------------------
    def mark_path_down(self, peer: int) -> None:
        if peer in self._down:
            return
        self._down[peer] = self._clock()
        self.down_events += 1
        if self._trace is not None:
            self._trace.record(
                "path_down", peer=self.peer_id, target=peer,
                failures=self._failures.get(peer, 0),
            )
        if self.view is not None and self.config.adapt_routing:
            self.view.set_peer_down(peer)

    def mark_path_up(self, peer: int) -> None:
        if peer not in self._down:
            return
        del self._down[peer]
        self._failures[peer] = 0
        self.up_events += 1
        if self._trace is not None:
            self._trace.record("path_up", peer=self.peer_id, target=peer)
        if self.view is not None and self.config.adapt_routing:
            self.view.clear_peer_down(peer)

    def is_down(self, peer: int) -> bool:
        return peer in self._down

    @property
    def down_paths(self) -> List[int]:
        return sorted(self._down)

    # -- routing adaptation --------------------------------------------
    def _reprice(self, peer: int, now: float) -> None:
        """Push a material estimate change for an adjacent link into the
        view (ratio-scaled; see module docstring for the unit argument)."""
        if self.view is None or not self.config.adapt_routing:
            return
        link = _canon(self.peer_id, peer)
        if link not in self._links:
            return  # measured a multi-hop path; only direct links re-price
        est = self._estimators[peer]
        if est.baseline is None:
            return
        ratio = est.ratio(now)
        estimate = est.estimate(now)
        material = (
            ratio >= self.config.material_ratio
            and estimate is not None
            and abs(estimate - est.baseline) >= self.config.min_delta
        )
        applied = self._applied.get(link)
        if material:
            if (
                applied is None
                or abs(ratio - applied) / applied > self.config.rescale_tolerance
            ):
                if self.view.set_link_scale(link, ratio):
                    self._applied[link] = ratio
                    self.reprices += 1
                    if self._trace is not None:
                        self._trace.record(
                            "link_repriced", peer=self.peer_id, target=peer,
                            ratio=round(ratio, 3),
                        )
        elif applied is not None:
            if self.view.set_link_scale(link, None):
                del self._applied[link]
                self.reprices += 1

    # -- introspection -------------------------------------------------
    def estimator(self, peer: int) -> Optional[LinkEstimator]:
        return self._estimators.get(peer)

    def stats(self) -> Dict[str, object]:
        now = self._clock()
        return {
            "probes_sent": self.probes_sent,
            "probe_failures": self.probe_failures,
            "samples_active": self.samples_active,
            "samples_passive": self.samples_passive,
            "down_events": self.down_events,
            "up_events": self.up_events,
            "reprices": self.reprices,
            "paths_down": self.down_paths,
            "router_rebuilds": self.view.rebuilds if self.view is not None else 0,
            "links": {
                peer: est.snapshot(now)
                for peer, est in sorted(self._estimators.items())
            },
        }
