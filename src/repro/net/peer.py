"""The live peer daemon: SpiderNet's per-hop protocol over a transport.

Each daemon owns one overlay peer id and processes protocol messages as
asyncio tasks, *reusing the wrapped* :class:`~repro.core.bcp.BCP`
*per-hop methods exactly as* :mod:`repro.core.async_bcp` *does* — Steps
2.1–2.4 of the paper exist once, in ``bcp.py``:

* ``BCP._admit``          — Step 2.1 admission (QoS check + soft alloc)
  at the probe's *receiving* peer,
* ``derive_next_functions`` + ``BCP._filter_components`` +
  ``BCP._select_components`` — Steps 2.2/2.3 at the expanding peer,
* ``BCP._final_hop`` / ``merge_probes`` / ``select_composition`` — the
  destination's Step 3,
* ``BCP._tokens_of`` + pool confirm — the Step 4 ack pass.

**Termination detection.**  The synchronous engine knows the wave is
over when its heap drains; a distributed destination cannot see remote
queues.  Instead every composition carries one unit of *credit*: the
root probe holds ``Fraction(1)``, each fan-out splits the parent's
credit exactly among its children, and credit returns to the destination
on arrival (``FinalProbe``), prune/duplicate/late drop or send failure
(``CreditReturn``).  The collection window closes exactly when the
credit sums back to 1 — or when a wall-clock fallback fires, covering
credit lost with a crashed peer.

**Soft state.**  Reservations made during admission arm per-token expiry
timers (the paper's soft allocation): a reservation not confirmed by the
setup ack within the timeout evaporates on its own, which is also what
cleans up after probes that were still in flight when the destination
closed the window.  Confirmed (firm) tokens are tracked separately so a
later release — a setup ack that fails partway, or a session teardown —
frees them too instead of leaking capacity.

**Distributed mode.**  With a ``directory``/``ring``/``dht`` triple the
daemon stops consulting the shared :class:`ServiceRegistry` entirely:
component meta-data lives in the :class:`DirectorySlice` of the peer
owning ``hash(function)`` in the DHT id space (plus its replica-ring
successors), registration and discovery travel as
:class:`~repro.net.codec.RegisterComponent` /
:class:`~repro.net.codec.LookupRequest` RPCs, and the lookup RTT is
derived from the same Pastry route a sync lookup would take — so the
message ledger and probe timing stay comparable across modes.

**Directory acceleration tier.**  With a
:class:`~repro.net.directory.DirectoryTierConfig` enabled (the cluster
default), repeated lookups stop converging on the key's owner: each
daemon keeps a TTL'd *positive cache* of resolved duplicate lists
(invalidated precisely on registration churn via content versions and
``ReplicaInvalidate``), a *negative cache* built from the owners' Bloom
summaries (absent functions short-circuit without routing the DHT), and
serves keys whose owner pushed replica rows here (``ReplicatePush``,
triggered by the owner's decayed serve rate).  A cache hit returns the
exact (components, rtt) pair the routed lookup produced the first time
— the DHT route is deterministic over a static ring, so selections and
probe timing are bit-identical with the tier on or off; only the
``dht_route`` / ``net_directory`` charges genuinely shrink, which the
ledger's ``dir_*`` counters audit.  Staleness is bounded by the awaited
invalidation fan-out on re-registration plus the cache TTL backstop
(see ``docs/ARCHITECTURE.md`` for the exact window).
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Awaitable, Dict, List, Optional, Set, Tuple

from ..core.bcp import BCP, CompositionResult, derive_next_functions
from ..core.probe import Probe
from ..core.quota import split_budget
from ..core.request import CompositeRequest
from ..core.resources import InsufficientResources
from ..core.selection import admit_graph, merge_probes, select_composition
from ..core.service_graph import ServiceGraph
from ..dht.id_space import key_for
from ..dht.ring import RingSnapshot
from ..discovery.metadata import ServiceMetadata
from ..services.component import ComponentSpec
from . import codec
from .accounting import LedgerTap
from .admission import LoadGuard
from .bloom import BloomFilter
from .directory import DirectorySlice, DirectoryTierConfig
from .rpc import DedupCache, RetryPolicy, RpcEndpoint, RpcError

__all__ = ["PeerDaemon", "LiveSession"]


@dataclass
class LiveSession:
    """Source-side record of an established composition."""

    request_id: int
    graph: ServiceGraph
    tokens: Tuple[Tuple, ...]
    established_at: float
    failed: bool = False
    pings: int = 0


@dataclass
class _Collection:
    """Destination-side state of one probe collection window."""

    request: CompositeRequest
    confirm: bool
    budget: int
    result: CompositionResult
    started: float
    arrivals: Dict[Tuple, Probe] = field(default_factory=dict)
    credit: Fraction = Fraction(0)
    discovery: float = 0.0
    deadline_handle: Optional[asyncio.TimerHandle] = None
    done: bool = False
    # distributed mode: remote peers' wave reservations, accumulated from
    # ReservationReport frames ((peer, rtype) -> amount, link -> bandwidth)
    wave_peer_used: Dict[Tuple[int, str], float] = field(default_factory=dict)
    wave_link_used: Dict[Tuple[int, int], float] = field(default_factory=dict)


class _WaveLoadView:
    """The pool interface ψλ needs, over (local pool − remote wave load).

    A distributed destination's pool holds only the claims it admitted
    itself; the rest of the wave's soft reservations live in the
    admitting peers' pools and arrive as :class:`ReservationReport`
    deltas.  Subtracting those deltas from the local view reconstructs
    exactly the availability a shared-pool engine would see at selection
    time — wire-only, no remote reads.
    """

    def __init__(
        self,
        pool,
        peer_used: Dict[Tuple[int, str], float],
        link_used: Dict[Tuple[int, int], float],
    ) -> None:
        self._pool = pool
        self._peer_used = peer_used
        self._link_used = link_used

    @property
    def resource_types(self):
        return self._pool.resource_types

    def available_amount(self, peer: int, rtype: str) -> float:
        base = self._pool.available_amount(peer, rtype)
        return max(base - self._peer_used.get((peer, rtype), 0.0), 0.0)

    def path_available_bandwidth(self, src: int, dst: int) -> float:
        if src == dst:
            return math.inf
        links = self._pool.overlay.router.links(src, dst)
        if not links:
            return math.inf
        low = min(
            self._pool.link_available(l) - self._link_used.get(tuple(sorted(l)), 0.0)
            for l in links
        )
        return low if low > 0.0 else 0.0


class PeerDaemon:
    """One live peer: registry slice, probe processing, session handling."""

    def __init__(
        self,
        peer_id: int,
        bcp: BCP,
        endpoint: RpcEndpoint,
        peers: List[int],
        counters: Dict[int, int],
        tap: Optional[LedgerTap] = None,
        trace=None,
        clock=None,
        soft_timeout: float = 30.0,
        collect_wall_timeout: float = 10.0,
        probe_retry: Optional[RetryPolicy] = None,
        control_retry: Optional[RetryPolicy] = None,
        maint_interval: Optional[float] = None,
        directory: Optional[DirectorySlice] = None,
        ring: Optional[RingSnapshot] = None,
        dht=None,
        dir_tier: Optional[DirectoryTierConfig] = None,
        measurement=None,
        guard: Optional[LoadGuard] = None,
        composer=None,
    ) -> None:
        self.peer_id = peer_id
        self.bcp = bcp
        self.endpoint = endpoint
        self.peers = list(peers)
        # distributed mode: all three are set and the shared registry is
        # never read — discovery goes over the wire to the key's owner
        self.directory = directory
        self.ring = ring
        self.dht = dht if dht is not None else getattr(bcp.registry, "dht", None)
        self.dir_tier = dir_tier
        self.counters = counters  # shared rid -> probes_sent (harness bookkeeping)
        self.tap = tap
        self.trace = trace
        self._clock = clock if clock is not None else time.monotonic
        self.soft_timeout = soft_timeout
        self.collect_wall_timeout = collect_wall_timeout
        self.probe_retry = probe_retry or RetryPolicy(timeout=1.0, retries=2, backoff=0.05)
        self.control_retry = control_retry or RetryPolicy(timeout=1.0, retries=2, backoff=0.05)
        self.maint_interval = maint_interval
        # measurement plane (None when measurement is disabled): fed by
        # the endpoint's RTT/failure hooks, owner of the active prober
        self.measurement = measurement
        # admission control (None = pre-admission behaviour, bit-exact)
        self.guard = guard
        # optional CompositionStrategy (repro.core.strategies): when set
        # (shared-state clusters only), start_compose runs it at the
        # source daemon instead of probing over the wire
        self.composer = composer
        self.stopped = False
        self.errors: List[str] = []
        # structured retry-exhaustion records (RpcFailure) — expected
        # failure-path data (dead peers), deliberately separate from
        # ``errors``, which stays reserved for daemon *bugs*
        self.rpc_failures: List = []
        self._tokens: Dict[int, Set[Tuple]] = {}  # rid -> soft tokens owned here
        self._confirmed: Dict[int, Set[Tuple]] = {}  # rid -> firm tokens owned here
        self._timers: Dict[Tuple[int, Tuple], asyncio.TimerHandle] = {}
        self._seen = DedupCache()  # (rid, Probe.dedup_key()) application dedup
        # rid -> {(function, origin): future} single-flight lookup dedup
        # (the tier-off wire path; entries are evicted when the request's
        # session completes — release broadcast, source return, finalize)
        self._lookup_flight: Dict[int, Dict[Tuple[str, int], asyncio.Future]] = {}
        # directory tier state (tier-on distributed mode only):
        # function -> (components, rtt, expires) positive cache
        self._dir_cache: Dict[str, Tuple[Tuple[ServiceMetadata, ...], float, float]] = {}
        # function -> route-priced rtt; never invalidated (the ring and
        # topology are static, so the route is a pure function of the key)
        self._rtt_cache: Dict[str, float] = {}
        # serving peer -> (BloomFilter, expires) negative-cache summaries
        self._owner_blooms: Dict[int, Tuple[BloomFilter, float]] = {}
        # function -> in-flight miss future (daemon-wide single flight:
        # concurrent misses share one route+fetch, then hit the cache)
        self._miss_flight: Dict[str, asyncio.Future] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.neg_hits = 0
        self.replica_serves = 0
        self._collections: Dict[int, _Collection] = {}
        self._pending_results: Dict[int, asyncio.Future] = {}
        self.sessions: Dict[int, LiveSession] = {}
        self._tasks: Set[asyncio.Task] = set()
        endpoint.on(codec.ComposeBegin, self._on_begin)
        endpoint.on(codec.DiscoveryReport, self._on_discovery)
        endpoint.on(codec.ProbeTransfer, self._on_probe)
        endpoint.on(codec.FinalProbe, self._on_final)
        endpoint.on(codec.CreditReturn, self._on_credit)
        endpoint.on(codec.ReservationReport, self._on_reservation)
        endpoint.on(codec.SessionRelease, self._on_release)
        endpoint.on(codec.SessionConfirm, self._on_confirm)
        endpoint.on(codec.ComposeResult, self._on_result)
        endpoint.on(codec.MaintenancePing, self._on_ping)
        endpoint.on(codec.RegisterComponent, self._on_register)
        endpoint.on(codec.RegisterBatch, self._on_register_batch)
        endpoint.on(codec.LookupRequest, self._on_lookup)
        endpoint.on(codec.ReplicatePush, self._on_replica_push)
        endpoint.on(codec.ReplicaInvalidate, self._on_replica_invalidate)
        endpoint.on(codec.PathProbe, self._on_path_probe)
        # passive measurement intake: every RPC round-trip feeds the
        # plane, every retry exhaustion is recorded (and feeds dead-path
        # detection) — see rpc.RpcEndpoint.on_rtt/on_failure
        endpoint.on_rtt = self._on_rpc_rtt
        endpoint.on_failure = self._on_rpc_failure
        # fail-fast: calls to a peer the transport killed (or the plane
        # marked down) abort instead of burning the retry/timeout budget
        endpoint.peer_down = self._peer_down

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def distributed(self) -> bool:
        """True when discovery is DHT-routed instead of shared-registry."""
        return self.directory is not None and self.ring is not None

    @property
    def tier_enabled(self) -> bool:
        """True when the directory acceleration tier is active."""
        return (
            self.distributed
            and self.dir_tier is not None
            and self.dir_tier.enabled
        )

    def _now(self) -> float:
        return float(self._clock())

    def _trace(self, category: str, **fields) -> None:
        if self.trace is not None:
            self.trace.record(category, time=self._now(), peer=self.peer_id, **fields)

    def _spawn(self, coro: Awaitable) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._task_done)
        return task

    def _task_done(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self.errors.append(f"{type(exc).__name__}: {exc}")
            self._trace("daemon_error", error=f"{type(exc).__name__}: {exc}")

    def _on_rpc_rtt(self, dst: int, rtt: float, method: str) -> None:
        if self.measurement is not None:
            self.measurement.record_rtt(dst, rtt, method)

    def _on_rpc_failure(self, failure) -> None:
        if self.stopped:
            # teardown noise: a daemon being shut down mid-exchange is
            # not a peer observing a failure — recording it would make
            # every clean cluster stop look like an incident
            return
        self.rpc_failures.append(failure)
        self._trace(
            "rpc_exhausted",
            target=failure.peer,
            method=failure.method,
            attempts=failure.attempts,
        )
        if self.measurement is not None:
            self.measurement.record_failure(failure.peer, failure.method)

    def _peer_down(self, dst: int) -> bool:
        """RPC-layer fail-fast predicate: is ``dst`` known unreachable?

        Combines the transport's kill switch (authoritative within a
        process: a killed peer *cannot* answer) with the measurement
        plane's dead-path verdict (``down_after`` consecutive exhausted
        exchanges).  Both only ever short-circuit calls that were going
        to exhaust their retries anyway — outcomes are unchanged, the
        per-hop timeout burn is not.  Measurement recovery probes bypass
        this via ``ignore_down`` so down paths can still be re-proved."""
        transport = self.endpoint.transport
        if transport.is_killed(dst):
            return True
        return self.measurement is not None and self.measurement.is_down(dst)

    async def _on_path_probe(self, src: int, msg: codec.PathProbe) -> Optional[dict]:
        """Measurement echo: answer immediately (no daemon state touched)."""
        if self.stopped:
            return {"error": "stopped"}
        return {"ack": codec.ProbeAck(seq=msg.seq, echo=msg.sent_at)}

    def stop(self) -> None:
        """Halt message processing and cancel timers/tasks (crash or teardown)."""
        self.stopped = True
        if self.measurement is not None:
            self.measurement.stop()
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        for col in self._collections.values():
            if col.deadline_handle is not None:
                col.deadline_handle.cancel()
        self._lookup_flight.clear()
        self._miss_flight.clear()
        for task in list(self._tasks):
            task.cancel()

    async def drain(self) -> None:
        """Await all in-flight tasks (clean teardown path)."""
        tasks = [t for t in self._tasks if not t.done()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def abort_pending(self, reason: str = "aborted") -> None:
        """Resolve every in-flight ``start_compose`` with a failed result.

        The orderly-shutdown half of the teardown contract: callers
        blocked in :meth:`start_compose` get a structured failure
        (``failure_reason=reason``) instead of waiting out wall timeouts
        against a cluster that is being dismantled under them."""
        for rid, future in list(self._pending_results.items()):
            if not future.done():
                future.set_result(
                    codec.ComposeResult(
                        request_id=rid,
                        success=False,
                        graph=None,
                        qos=None,
                        cost=math.inf,
                        failure_reason=reason,
                        probes_sent=0,
                        candidates_examined=0,
                        setup_time=0.0,
                    )
                )

    # ------------------------------------------------------------------
    # soft-state timers
    # ------------------------------------------------------------------
    def _arm_expiry(self, rid: int, token: Tuple) -> None:
        if not self.soft_timeout or self.soft_timeout <= 0:
            return
        loop = asyncio.get_running_loop()
        self._timers[(rid, token)] = loop.call_later(
            self.soft_timeout, self._expire_token, rid, token
        )

    def _expire_token(self, rid: int, token: Tuple) -> None:
        self._timers.pop((rid, token), None)
        mine = self._tokens.get(rid)
        if not mine or token not in mine:
            return
        mine.discard(token)
        try:
            self.bcp.pool.cancel(token)
        except InsufficientResources:
            pass  # became firm concurrently; release() owns it now
        self._trace("reservation_expired", request=rid, token=list(token))

    def _cancel_timer(self, rid: int, token: Tuple) -> None:
        handle = self._timers.pop((rid, token), None)
        if handle is not None:
            handle.cancel()

    # ------------------------------------------------------------------
    # source side: start a composition
    # ------------------------------------------------------------------
    async def start_compose(
        self,
        request: CompositeRequest,
        budget: Optional[int] = None,
        confirm: bool = True,
        timeout: Optional[float] = None,
    ) -> CompositionResult:
        """Run one live composition from this (source) peer."""
        if request.source_peer != self.peer_id:
            raise ValueError(f"request sources at {request.source_peer}, daemon is {self.peer_id}")
        if self.composer is not None:
            # a global-view strategy is attached (shared-state mode):
            # compose locally at the source daemon — no probes on the
            # wire, only the strategy's own ledger accounting
            rid = request.request_id
            self._trace(
                "compose_started", request=rid, dest=request.dest_peer,
                budget=0, composer=self.composer.name,
            )
            result = self.composer.compose(request, budget=budget, confirm=confirm)
            self._trace(
                "compose_finished", request=rid, success=result.success,
                composer=self.composer.name,
            )
            return result
        cfg = self.bcp.config
        beta = cfg.budget if budget is None else budget
        if beta < 1:
            raise ValueError(f"probing budget must be >= 1, got {beta}")
        rid = request.request_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending_results[rid] = future
        self._trace("compose_started", request=rid, dest=request.dest_peer, budget=beta)
        try:
            reply = await self.endpoint.call(
                request.dest_peer, codec.ComposeBegin(rid, request, beta, confirm)
            )
            busy = reply.get("busy") if isinstance(reply, dict) else None
            if isinstance(busy, codec.Busy):
                # admission refused the window in the begin reply itself:
                # one round trip, no probes sent, no reservation anywhere
                # — there is nothing to release and nothing to await
                self._trace(
                    "compose_rejected", request=rid,
                    reason=busy.reason, inflight=busy.inflight,
                )
                result = CompositionResult(request=request, success=False)
                result.failure_reason = (
                    f"busy: destination shed the request "
                    f"({busy.reason} limit, {busy.inflight} in flight)"
                )
                return result
            root = Probe.initial(request, beta)
            await self._expand_probe(root, Fraction(1), rid)
            wall = timeout if timeout is not None else self.collect_wall_timeout + 30.0
            msg = await asyncio.wait_for(future, wall)
        finally:
            self._pending_results.pop(rid, None)
            # the source's root expansion opened this rid's flight map;
            # the session is over for this daemon either way (the release
            # broadcast also clears it, but not when the compose failed
            # before the destination ever finalized)
            self._lookup_flight.pop(rid, None)
        return self._result_from_message(request, msg)

    @staticmethod
    def _result_from_message(request: CompositeRequest, msg: codec.ComposeResult) -> CompositionResult:
        result = CompositionResult(request=request, success=msg.success)
        result.best = msg.graph
        result.best_qos = msg.qos
        result.best_cost = msg.cost
        result.failure_reason = msg.failure_reason
        result.probes_sent = msg.probes_sent
        result.candidates_examined = msg.candidates_examined
        result.setup_time = msg.setup_time
        result.phases = dict(msg.phases)
        result.session_tokens = [tuple(t) for t in msg.session_tokens]
        return result

    # ------------------------------------------------------------------
    # steps 2.2-2.4: expansion at the probe's current peer
    # ------------------------------------------------------------------
    async def _expand_probe(self, probe: Probe, credit: Fraction, rid: int) -> None:
        cfg = self.bcp.config
        request = probe.request
        candidates = derive_next_functions(
            probe.graph, probe.current_function, probe.applied_swaps, cfg.explore_commutations
        )
        if not candidates:
            await self._return_credit(rid, request.dest_peer, credit, "no-next-hop")
            return
        # all candidate lookups run concurrently: a real implementation
        # would have all queries in flight at once, and the discovery
        # phase is priced off the *slowest* of them either way
        results = await asyncio.gather(
            *(self._lookup(fn, probe.current_peer, rid) for fn, _, _, _ in candidates)
        )
        lookups = [comps for comps, _ in results]
        max_rtt = max((rtt for _, rtt in results), default=0.0)
        if probe.branch == ():
            # the root expansion's slowest lookup is the discovery phase
            await self.endpoint.call(request.dest_peer, codec.DiscoveryReport(rid, max_rtt))
        entries = [
            (fn, cfg.quota_policy(fn, len(comps)), is_dep)
            for (fn, _, _, is_dep), comps in zip(candidates, lookups)
        ]
        budget = probe.budget
        if self.guard is not None and self.guard.degraded():
            # soft overload: expand this wave with half its budget —
            # the paper's quality/latency knob, turned by load
            budget = max(1, budget // 2)
            self.guard.budget_degrades += 1
        shares = split_budget(budget, entries)
        sends = []
        for idx, ((fn, graph, applied, _), comps) in enumerate(zip(candidates, lookups)):
            beta_k = shares.get(idx, 0)
            if beta_k < 1 or not comps:
                continue
            alpha_k = entries[idx][1]
            viable = self.bcp._filter_components(probe, comps)
            if not viable:
                continue
            i_k = min(beta_k, alpha_k, len(viable))
            chosen = self.bcp._select_components(probe, viable, i_k)
            child_budget = max(1, beta_k // max(len(chosen), 1))
            for comp in chosen:
                sends.append((fn, graph, applied, comp, child_budget))
        if not sends:
            await self._return_credit(rid, request.dest_peer, credit, "exhausted")
            return
        share = credit / len(sends)  # exact: Fractions never leak credit
        await asyncio.gather(
            *(
                self._send_probe(rid, probe, fn, graph, applied, comp, b, max_rtt, share)
                for fn, graph, applied, comp, b in sends
            )
        )

    async def _lookup(
        self, function: str, origin_peer: int, rid: Optional[int] = None
    ) -> Tuple[List[ServiceMetadata], float]:
        """Resolve a function's duplicate list: shared registry, or the
        DHT-routed directory owner in distributed mode.

        The distributed path routes ``hash(function)`` through Pastry
        first — charging the DHT ledger per hop exactly as a sync lookup
        would, and pricing the query RTT off that route — then asks the
        owning peer's directory slice over the wire.  A dead owner is
        skipped in favour of its replica-ring successors; if every
        replica is unreachable the function simply has no visible
        duplicates this wave (the probe's credit returns as exhausted).

        When ``rid`` is given, identical queries within that request's
        wave are *single-flighted*: the first one performs the wire
        exchange and every concurrent or later duplicate shares its
        result (the wire analogue of the sync engine's per-wave lookup
        cache — directory contents are fixed for the duration of a
        composition).  Only the LookupRequest *frame* is deduplicated:
        each logical lookup still routes the DHT itself, so ledger
        charges and the route-priced RTT are identical with and without
        the dedup.

        With the directory tier enabled the per-rid flights are replaced
        by a daemon-wide positive cache: a miss performs one DHT route +
        wire fetch (misses for the same function single-flight across
        requests too) and every hit — within a wave or across composes —
        returns the cached (components, rtt) pair without routing.  The
        route is deterministic over a static ring, so the cached rtt is
        exactly what re-routing would price and probe timing is
        unchanged; only the ``dht_route`` / ``net_directory`` charges
        shrink, which is the tier's entire effect on the books.
        """
        if not self.distributed:
            res = self.bcp.registry.lookup(function, origin_peer)
            return list(res.components), res.rtt
        if self.tier_enabled:
            return await self._lookup_cached(function, origin_peer)
        key = key_for(function)
        route = self.dht.route(key, origin_peer)
        rtt = 2.0 * route.latency
        if rid is None:
            return await self._fetch_components(key, function, origin_peer), rtt
        flights = self._lookup_flight.setdefault(rid, {})
        flight_key = (function, origin_peer)
        fut = flights.get(flight_key)
        if fut is not None:
            return list(await asyncio.shield(fut)), rtt
        fut = asyncio.get_running_loop().create_future()
        flights[flight_key] = fut
        try:
            comps = await self._fetch_components(key, function, origin_peer)
        except BaseException:
            flights.pop(flight_key, None)
            if not fut.done():
                fut.set_result([])  # followers degrade to "no duplicates"
            raise
        if not fut.done():
            fut.set_result(comps)
        return list(comps), rtt

    # ------------------------------------------------------------------
    # directory tier: cached lookup path
    # ------------------------------------------------------------------
    async def _lookup_cached(
        self, function: str, origin_peer: int
    ) -> Tuple[List[ServiceMetadata], float]:
        entry = self._dir_cache.get(function)
        if entry is not None and self._now() < entry[2]:
            self.cache_hits += 1
            if self.tap is not None:
                self.tap.dir_cache_hit()
            return list(entry[0]), entry[1]
        fut = self._miss_flight.get(function)
        if fut is not None:
            comps, rtt = await asyncio.shield(fut)
            # the leader's miss covers the whole flight; followers are
            # hits against its (imminent) cache entry
            self.cache_hits += 1
            if self.tap is not None:
                self.tap.dir_cache_hit()
            return list(comps), rtt
        fut = asyncio.get_running_loop().create_future()
        self._miss_flight[function] = fut
        try:
            comps, rtt = await self._lookup_miss(function, origin_peer)
        except BaseException:
            if not fut.done():
                fut.set_result(([], self._rtt_cache.get(function, 0.0)))
            raise
        finally:
            self._miss_flight.pop(function, None)
        if not fut.done():
            fut.set_result((tuple(comps), rtt))
        return list(comps), rtt

    async def _lookup_miss(
        self, function: str, origin_peer: int
    ) -> Tuple[List[ServiceMetadata], float]:
        """Resolve one positive-cache miss: negative cache, route, fetch."""
        tier = self.dir_tier
        key = key_for(function)
        if tier.negative_cache:
            owner = self.ring.owner_peer(key)
            held = self._owner_blooms.get(owner)
            if (
                held is not None
                and self._now() < held[1]
                and function not in held[0]
            ):
                # the owner's summary proves absence: no route, no wire.
                # Bloom filters have no false negatives, so a present
                # function can never be hidden — only churn staleness
                # applies, and registration invalidates summary holders.
                self.neg_hits += 1
                if self.tap is not None:
                    self.tap.dir_neg_hit()
                rtt = self._rtt_cache.get(function, 0.0)
                self._dir_cache[function] = ((), rtt, self._now() + tier.cache_ttl)
                return [], rtt
        self.cache_misses += 1
        if self.tap is not None:
            self.tap.dir_cache_miss()
        rtt = self._rtt_cache.get(function)
        if rtt is None:
            # first resolution from this daemon: route the DHT exactly as
            # the tier-off path would (charging dht_route per hop) and
            # remember the priced rtt — the route is a pure function of
            # (key, origin) over the static ring, so reuse is exact
            route = self.dht.route(key, origin_peer)
            rtt = 2.0 * route.latency
            self._rtt_cache[function] = rtt
        comps = await self._fetch_components(key, function, origin_peer)
        self._dir_cache[function] = (
            tuple(comps), rtt, self._now() + tier.cache_ttl
        )
        return comps, rtt

    async def _fetch_components(
        self, key, function: str, origin_peer: int
    ) -> List[ServiceMetadata]:
        """The wire half of a distributed lookup: ask the key's replicas."""
        replicas = self.ring.replica_peers(key)
        if self.tier_enabled:
            if self.peer_id in replicas:
                # authoritative local copy: registration populates every
                # base replica synchronously, so this equals the owner's
                # rows (the tier-off path asks the owner first regardless)
                return self.directory.lookup(key)
            held = self.directory.replica_lookup(key)
            if held is not None:
                self.replica_serves += 1
                if self.tap is not None:
                    self.tap.dir_replica_serve()
                return held
        for target in replicas:
            if target == self.peer_id:
                return self.directory.lookup(key)
            try:
                reply = await self.endpoint.call(
                    target, codec.LookupRequest(function, origin_peer), retry=self.probe_retry
                )
            except RpcError:
                continue  # owner unreachable: fall back to the next replica
            if not isinstance(reply, dict) or reply.get("error"):
                continue
            self._note_lookup_reply(target, reply)
            return [c for c in reply.get("components", ()) if isinstance(c, ServiceMetadata)]
        self._trace("lookup_failed", function=function, origin=origin_peer)
        return []

    def _note_lookup_reply(self, target: int, reply: dict) -> None:
        """Stash the serving replica's piggybacked Bloom summary."""
        if not self.tier_enabled or not self.dir_tier.negative_cache:
            return
        wire = reply.get("bloom")
        if not wire:
            return
        try:
            summary = BloomFilter.from_wire(wire)
        except (ValueError, TypeError):
            return  # malformed summary: negative caching just doesn't apply
        self._owner_blooms[target] = (summary, self._now() + self.dir_tier.cache_ttl)

    async def _send_probe(
        self,
        rid: int,
        parent: Probe,
        fn: str,
        graph,
        applied,
        comp,
        budget: int,
        lookup_rtt: float,
        credit: Fraction,
    ) -> None:
        self.counters[rid] = self.counters.get(rid, 0) + 1
        if self.tap is not None:
            self.tap.probe_sent()
        msg = codec.ProbeTransfer(
            request_id=rid,
            parent=parent,
            function=fn,
            component=comp,
            graph=graph,
            applied=tuple(sorted(tuple(sorted(p)) for p in applied)),
            budget=budget,
            lookup_rtt=lookup_rtt,
            credit=credit,
        )
        try:
            await self.endpoint.call(comp.peer, msg, retry=self.probe_retry)
        except RpcError:
            # the retry/backoff path ran dry: report the credit as lost so
            # the destination's window can still close without the fallback
            self._trace("probe_lost", request=rid, to_peer=comp.peer, function=fn)
            await self._return_credit(rid, parent.request.dest_peer, credit, "lost")

    async def _return_credit(self, rid: int, dest_peer: int, credit: Fraction, reason: str) -> None:
        if credit == 0:
            return
        try:
            await self.endpoint.call(
                dest_peer, codec.CreditReturn(rid, credit, reason), retry=self.probe_retry
            )
        except RpcError:
            pass  # destination unreachable: its wall-clock fallback closes the window

    # ------------------------------------------------------------------
    # step 2.1: admission at the receiving peer
    # ------------------------------------------------------------------
    async def _on_probe(self, src: int, msg: codec.ProbeTransfer) -> dict:
        if self.stopped:
            return {"error": "stopped"}
        if self.guard is not None and self.guard.probe_overloaded():
            # hard shed: return the probe's termination credit without
            # admitting anything, so the destination's window still
            # closes by credit instead of waiting for the wall fallback.
            # No admission ran, so there is no token to leak.
            self.guard.probes_shed += 1
            self._trace("probe_shed", request=msg.request_id, from_peer=src)
            self._spawn(
                self._return_credit(
                    msg.request_id, msg.parent.request.dest_peer, msg.credit, "shed"
                )
            )
            return {"ok": True, "shed": True}
        # ack immediately; admission + further expansion run as a task so
        # deep probe chains never stack RPC timeouts
        if self.guard is not None:
            self.guard.begin_probe()
            self._spawn(self._process_probe_guarded(msg))
        else:
            self._spawn(self._process_probe(msg))
        return {"ok": True}

    async def _process_probe_guarded(self, msg: codec.ProbeTransfer) -> None:
        try:
            await self._process_probe(msg)
        finally:
            self.guard.end_probe()

    async def _process_probe(self, msg: codec.ProbeTransfer) -> None:
        rid = msg.request_id
        parent = msg.parent
        request = parent.request
        cfg = self.bcp.config
        applied = frozenset(frozenset(p) for p in msg.applied)
        toks = self._tokens.setdefault(rid, set())
        before = set(toks)
        child = self.bcp._admit(
            parent, msg.function, msg.component, msg.graph, applied,
            msg.budget, msg.lookup_rtt, toks,
        )
        fresh = toks - before
        for token in fresh:
            self._arm_expiry(rid, token)
        if fresh and self.distributed and self.peer_id != request.dest_peer:
            # awaited before this probe's credit can move anywhere, so
            # the destination has the load deltas before the window can
            # possibly close (even for probes that die right here)
            await self._report_reservations(rid, request.dest_peer, fresh)
        if child is None:
            await self._return_credit(rid, request.dest_peer, msg.credit, "pruned")
            return
        if self._seen.seen((rid, child.dedup_key())):
            await self._return_credit(rid, request.dest_peer, msg.credit, "duplicate")
            return
        if child.elapsed > cfg.collect_timeout:
            await self._return_credit(rid, request.dest_peer, msg.credit, "late")
            return
        if child.at_sink:
            try:
                await self.endpoint.call(
                    request.dest_peer, codec.FinalProbe(rid, child, msg.credit),
                    retry=self.probe_retry,
                )
            except RpcError:
                pass  # destination gone: the whole request is dead
            return
        await self._expand_probe(child, msg.credit, rid)

    # ------------------------------------------------------------------
    # destination side: collection window
    # ------------------------------------------------------------------
    async def _on_begin(self, src: int, msg: codec.ComposeBegin) -> dict:
        rid = msg.request_id
        if rid in self._collections:
            return {"ok": True}
        if self.guard is not None and not self.guard.try_open_session(rid):
            # shed in the begin reply itself: the source learns in one
            # round trip, and no window / probe / reservation ever exists
            self._trace(
                "begin_rejected", request=rid, inflight=self.guard.sessions_inflight
            )
            return {
                "busy": codec.Busy(
                    request_id=rid,
                    reason="sessions",
                    inflight=self.guard.sessions_inflight,
                )
            }
        col = _Collection(
            request=msg.request,
            confirm=msg.confirm,
            budget=msg.budget,
            result=CompositionResult(request=msg.request, success=False),
            started=self._now(),
        )
        col.deadline_handle = asyncio.get_running_loop().call_later(
            self.collect_wall_timeout,
            lambda: self._spawn(self._finalize(rid, "wall-timeout")),
        )
        self._collections[rid] = col
        return {"ok": True}

    async def _on_discovery(self, src: int, msg: codec.DiscoveryReport) -> dict:
        col = self._collections.get(msg.request_id)
        if col is not None:
            col.discovery = msg.rtt
        return {"ok": True}

    async def _on_final(self, src: int, msg: codec.FinalProbe) -> dict:
        rid = msg.request_id
        col = self._collections.get(rid)
        if col is None or col.done:
            return {"ok": True}  # straggler after the window closed
        toks = self._tokens.setdefault(rid, set())
        before = set(toks)
        arrival = self.bcp._final_hop(msg.probe, toks, col.result)
        for token in toks - before:
            self._arm_expiry(rid, token)
        if arrival is not None and arrival.elapsed <= self.bcp.config.collect_timeout:
            key = arrival.dedup_key()
            prev = col.arrivals.get(key)
            if prev is None or arrival.elapsed < prev.elapsed:
                col.arrivals[key] = arrival
            self._trace("arrival", request=rid, branch=list(arrival.branch))
        self._credit(rid, col, msg.credit)
        return {"ok": True}

    async def _on_credit(self, src: int, msg: codec.CreditReturn) -> dict:
        col = self._collections.get(msg.request_id)
        if col is None or col.done:
            return {"ok": True}
        self._credit(msg.request_id, col, msg.credit)
        return {"ok": True}

    async def _report_reservations(self, rid: int, dest: int, tokens: Set[Tuple]) -> None:
        """Ship freshly admitted reservations' demands to the destination."""
        peers: List[Tuple[int, str, float]] = []
        links: List[Tuple[int, int, float]] = []
        for token in sorted(tokens):
            try:
                claim_peers, claim_links = self.bcp.pool.claim_usage(token)
            except KeyError:
                continue  # already expired or released
            for peer, demands in claim_peers:
                for rtype in sorted(demands):
                    peers.append((peer, rtype, demands[rtype]))
            for link, bw in claim_links:
                u, v = tuple(sorted(link))
                links.append((u, v, bw))
        if not peers and not links:
            return
        try:
            await self.endpoint.call(
                dest,
                codec.ReservationReport(rid, tuple(peers), tuple(links)),
                retry=self.probe_retry,
            )
        except RpcError:
            pass  # destination gone: the whole request is dead anyway

    async def _on_reservation(self, src: int, msg: codec.ReservationReport) -> dict:
        col = self._collections.get(msg.request_id)
        if col is None or col.done:
            return {"ok": True}  # straggler after the window closed
        for peer, rtype, amount in msg.peers:
            key = (int(peer), str(rtype))
            col.wave_peer_used[key] = col.wave_peer_used.get(key, 0.0) + float(amount)
        for u, v, bw in msg.links:
            key = (int(u), int(v))
            col.wave_link_used[key] = col.wave_link_used.get(key, 0.0) + float(bw)
        return {"ok": True}

    def _credit(self, rid: int, col: _Collection, credit: Fraction) -> None:
        col.credit += credit
        if col.credit >= 1 and not col.done:
            self._spawn(self._finalize(rid, "credit-complete"))

    # ------------------------------------------------------------------
    # steps 3 + 4 at the destination
    # ------------------------------------------------------------------
    async def _finalize(self, rid: int, why: str) -> None:
        col = self._collections.get(rid)
        if col is None or col.done:
            return
        col.done = True
        if col.deadline_handle is not None:
            col.deadline_handle.cancel()
        if self.guard is not None:
            self.guard.close_session(rid)
        cfg = self.bcp.config
        request = col.request
        result = col.result
        result.probes_sent += self.counters.pop(rid, 0)
        result.candidates_examined = len(col.arrivals)
        result.phases["discovery"] = col.discovery
        arrivals = list(col.arrivals.values())
        keep: Set[Tuple] = set()
        if not arrivals:
            result.failure_reason = "no probe reached the destination"
            if self.tap is not None:
                self.tap.failure()
        else:
            candidates = merge_probes(
                request, arrivals, self.bcp.overlay,
                max_patterns=cfg.max_patterns, max_candidates=cfg.max_candidates,
            )
            sel_pool = self.bcp.pool
            if self.distributed:
                # rank against the whole wave's load, not just the claims
                # this destination admitted itself (see _WaveLoadView)
                sel_pool = _WaveLoadView(
                    self.bcp.pool, col.wave_peer_used, col.wave_link_used
                )
            selection = select_composition(
                candidates, request.qos, sel_pool, cfg.cost_weights,
                objective=cfg.objective,
            )
            result.qualified = selection.qualified
            if selection.best is None:
                result.failure_reason = (
                    f"no qualified service graph among {len(candidates)} candidates"
                )
                if self.tap is not None:
                    self.tap.failure()
            else:
                result.best = selection.best.graph
                result.best_qos = selection.best.qos
                result.best_cost = selection.best.cost
        if result.best is not None:
            # phase accounting + per-branch ack charges, as BCP._setup_phase
            ack_time = 0.0
            for peers in result.best.branch_paths():
                t = sum(
                    self.bcp.overlay.latency(u, v) for u, v in zip(peers, peers[1:]) if u != v
                )
                t += cfg.component_init_delay * (len(peers) - 2)
                ack_time = max(ack_time, t)
                if self.tap is not None:
                    self.tap.ack_hops(len(peers) - 1)
            arrivals_done = max((c.arrival_elapsed for c in result.qualified), default=0.0)
            probing_time = min(arrivals_done, cfg.collect_timeout)
            result.phases["composition"] = max(probing_time - col.discovery, 0.0)
            result.phases["setup_ack"] = ack_time
            result.setup_time = probing_time + ack_time
            keep = self.bcp._tokens_of(result.best, rid)
        # release every losing reservation cluster-wide
        await self._broadcast_release(rid, keep)
        success = result.best is not None
        if success and col.confirm:
            if cfg.soft_allocation:
                # same-peer hops never reserved a link token, so only the
                # tokens that must exist can fail the setup ack
                required = self.bcp._required_tokens(result.best, rid)
                confirmed = await self._confirm_session(rid, keep, result.best)
                if confirmed != required:
                    result.best = None
                    result.best_qos = None
                    result.best_cost = math.inf
                    result.failure_reason = "setup ack found expired reservation or dead peer"
                    if self.tap is not None:
                        self.tap.failure()
                    await self._broadcast_release(rid, set())
                    success = False
                else:
                    result.session_tokens = sorted(confirmed)
            else:
                # no-soft-allocation ablation: firm admission happens only now
                token = (rid, "session")
                if admit_graph(result.best, self.bcp.pool, token):
                    result.session_tokens = [token]
                else:
                    result.best = None
                    result.best_qos = None
                    result.best_cost = math.inf
                    result.failure_reason = "admission failed at setup (no soft allocation)"
                    if self.tap is not None:
                        self.tap.failure()
                    success = False
        elif success and not col.confirm:
            # measurement-only run: drop the winner's reservations too
            await self._broadcast_release(rid, set())
        result.success = success
        self._collections.pop(rid, None)
        self._lookup_flight.pop(rid, None)  # destination-side flight map
        self._trace(
            "compose_finished", request=rid, success=success, why=why,
            arrivals=len(arrivals), probes=result.probes_sent,
        )
        out = codec.ComposeResult(
            request_id=rid,
            success=success,
            graph=result.best,
            qos=result.best_qos,
            cost=result.best_cost,
            failure_reason=result.failure_reason,
            probes_sent=result.probes_sent,
            candidates_examined=result.candidates_examined,
            setup_time=result.setup_time,
            phases=dict(result.phases),
            session_tokens=tuple(result.session_tokens),
        )
        try:
            await self.endpoint.call(request.source_peer, out, retry=self.control_retry)
        except RpcError:
            self._trace("result_undeliverable", request=rid)

    async def _confirm_session(self, rid: int, keep: Set[Tuple], graph: ServiceGraph):
        """Destination-driven setup ack: every path peer confirms its tokens.

        Mirrors ``AsyncBCP._confirm_setup``: if any keep token cannot be
        confirmed — expired reservation, dead peer — setup fails."""
        peers = set(graph.peers()) | {self.peer_id}
        keep_list = sorted(keep)
        confirmed: Set[Tuple] = set()
        for peer in sorted(peers):
            if peer == self.peer_id:
                confirmed |= self._apply_confirm(rid, keep)
                continue
            try:
                reply = await self.endpoint.call(
                    peer, codec.SessionConfirm(rid, tuple(keep_list)), retry=self.control_retry
                )
            except RpcError:
                return None
            if not isinstance(reply, dict) or reply.get("error"):
                return None
            confirmed |= {tuple(t) for t in reply.get("confirmed", [])}
        return confirmed

    def _apply_confirm(self, rid: int, keep: Set[Tuple]) -> Set[Tuple]:
        mine = self._tokens.get(rid, set())
        out: Set[Tuple] = set()
        for token in sorted(keep):
            if token in mine and self.bcp.pool.has_token(token):
                # disarm the expiry and drop the soft bookkeeping *before*
                # confirming: an expiry callback already queued behind this
                # frame must find nothing to cancel, not race the firm flip
                self._cancel_timer(rid, token)
                mine.discard(token)
                self.bcp.pool.confirm(token)
                out.add(token)
        if out:
            # firm tokens are tracked so a later release (failed setup
            # ack, session teardown) can free them — pool.cancel() refuses
            # firm claims, so the soft path alone would leak them
            self._confirmed.setdefault(rid, set()).update(out)
        if not mine:
            self._tokens.pop(rid, None)
        return out

    async def _broadcast_release(self, rid: int, keep: Set[Tuple]) -> None:
        msg = codec.SessionRelease(rid, tuple(sorted(keep)))
        calls = []
        for peer in self.peers:
            if peer == self.peer_id:
                self._apply_release(rid, keep)
            else:
                calls.append(self._release_one(peer, msg))
        if calls:
            await asyncio.gather(*calls)

    async def _release_one(self, peer: int, msg: codec.SessionRelease) -> None:
        try:
            await self.endpoint.call(peer, msg, retry=self.control_retry)
        except RpcError:
            pass  # a dead peer's soft state expires on its own timers

    def _apply_release(self, rid: int, keep: Set[Tuple]) -> None:
        keep = set(keep)
        # the wave is over: drop its single-flight lookup futures (the
        # destination broadcasts a release to every peer for every rid,
        # so this is the per-request cleanup point on all daemons)
        self._lookup_flight.pop(rid, None)
        firm = self._confirmed.get(rid)
        if firm:
            # a setup ack that failed after partially confirming (or a
            # torn-down session) leaves firm claims behind; cancel() puts
            # those back, so they must be released explicitly or the
            # capacity leaks for the lifetime of the pool
            for token in sorted(firm - keep):
                self.bcp.pool.release(token)
                firm.discard(token)
            if not firm:
                self._confirmed.pop(rid, None)
        mine = self._tokens.get(rid)
        if not mine:
            return
        for token in sorted(mine - keep):
            self._cancel_timer(rid, token)
            try:
                self.bcp.pool.cancel(token)
            except InsufficientResources:
                pass
            mine.discard(token)
        if not mine:
            self._tokens.pop(rid, None)

    async def _on_release(self, src: int, msg: codec.SessionRelease) -> dict:
        self._apply_release(msg.request_id, {tuple(t) for t in msg.keep})
        return {"ok": True}

    async def _on_confirm(self, src: int, msg: codec.SessionConfirm) -> dict:
        confirmed = self._apply_confirm(msg.request_id, {tuple(t) for t in msg.tokens})
        return {"confirmed": sorted(confirmed)}

    # ------------------------------------------------------------------
    # source side: result + session maintenance
    # ------------------------------------------------------------------
    async def _on_result(self, src: int, msg: codec.ComposeResult) -> dict:
        future = self._pending_results.get(msg.request_id)
        if future is not None and not future.done():
            future.set_result(msg)
        if msg.success and msg.graph is not None and msg.session_tokens:
            session = LiveSession(
                request_id=msg.request_id,
                graph=msg.graph,
                tokens=msg.session_tokens,
                established_at=self._now(),
            )
            self.sessions[msg.request_id] = session
            self._trace("session_established", request=msg.request_id)
            if self.maint_interval:
                self._spawn(self._maintain(session))
        return {"ok": True}

    async def _maintain(self, session: LiveSession) -> None:
        """Periodic liveness pings along the session's service peers."""
        peers = [p for p in session.graph.peers() if p != self.peer_id]
        seq = 0
        while not self.stopped and not session.failed:
            await asyncio.sleep(self.maint_interval)
            if self.stopped or session.failed:
                return
            seq += 1
            for peer in peers:
                try:
                    await self.endpoint.call(
                        peer, codec.MaintenancePing(session.request_id, seq),
                        retry=self.control_retry,
                    )
                    session.pings += 1
                except RpcError:
                    session.failed = True
                    self._trace(
                        "session_failure", request=session.request_id, failed_peer=peer
                    )
                    return

    async def _on_ping(self, src: int, msg: codec.MaintenancePing) -> dict:
        return {"alive": not self.stopped, "request": msg.request_id, "seq": msg.seq}

    # ------------------------------------------------------------------
    # directory slice (distributed) / registry passthrough (shared)
    # ------------------------------------------------------------------
    async def register_components(self, specs: List[ComponentSpec], now: float = 0.0) -> None:
        """Publish this peer's components over the wire (distributed boot).

        Each spec travels to the DHT owner of its function key and to
        that owner's replica-ring successors, so lookups survive the
        owner's death.  A row is visible to other peers only once the
        owner's RegisterComponent RPC completed — there is no
        read-your-own-unregistered-write through shared memory.

        With the directory tier enabled the per-(spec, replica) frames are
        coalesced into one ``RegisterBatch`` per target peer, and any
        content-*changing* registration (new function, replaced QoS) is
        followed by awaited ``ReplicaInvalidate`` fan-out to exactly the
        peers that may hold a stale copy — recent queriers, pushed
        replica holders, Bloom-summary recipients — so churn is visible
        to other peers' caches as soon as this call returns.  At boot all
        of those holder sets are empty, so booting a cluster produces
        zero invalidation traffic.
        """
        if not self.distributed:
            raise RuntimeError("register_components requires distributed mode")
        if not self.tier_enabled:
            for spec in specs:
                key = key_for(spec.function)
                msg = codec.RegisterComponent(spec, registered_at=now)
                for target in self.ring.replica_peers(key):
                    if target == self.peer_id:
                        self.directory.store(key, ServiceMetadata.from_spec(spec, registered_at=now))
                    else:
                        await self.endpoint.call(target, msg, retry=self.control_retry)
            return
        by_target: Dict[int, List[ComponentSpec]] = {}
        stale: Dict[str, Set[int]] = {}
        versions: Dict[str, int] = {}
        for spec in specs:
            key = key_for(spec.function)
            # our own positive cache may hold the pre-churn rows
            self._dir_cache.pop(spec.function, None)
            for target in self.ring.replica_peers(key):
                if target == self.peer_id:
                    changed = self.directory.store(
                        key, ServiceMetadata.from_spec(spec, registered_at=now)
                    )
                    if changed:
                        holders = self.directory.stale_holders(key)
                        if holders:
                            stale.setdefault(spec.function, set()).update(holders)
                            versions[spec.function] = self.directory.key_version(key)
                else:
                    by_target.setdefault(target, []).append(spec)
        for target in sorted(by_target):
            reply = await self.endpoint.call(
                target,
                codec.RegisterBatch(tuple(by_target[target]), registered_at=now),
                retry=self.control_retry,
            )
            if isinstance(reply, dict):
                for function, entry in (reply.get("stale") or {}).items():
                    version, holders = entry
                    stale.setdefault(function, set()).update(holders)
                    versions[function] = max(versions.get(function, 0), version)
        # churn fan-out: invalidate every peer that may cache pre-churn
        # state, awaited so the registration's completion implies
        # cluster-wide cache coherence (the churn test's contract)
        for function in sorted(stale):
            inval = codec.ReplicaInvalidate(function, versions.get(function, 0))
            for holder in sorted(stale[function]):
                if holder == self.peer_id:
                    self._apply_invalidate(inval)
                    continue
                try:
                    await self.endpoint.call(holder, inval, retry=self.control_retry)
                except RpcError:
                    pass  # holder unreachable: its TTL bounds the staleness

    async def _on_register(self, src: int, msg: codec.RegisterComponent) -> dict:
        if self.distributed:
            if self.stopped:
                return {"error": "stopped"}
            self._dir_cache.pop(msg.spec.function, None)
            fresh = self.directory.store(
                key_for(msg.spec.function),
                ServiceMetadata.from_spec(msg.spec, registered_at=msg.registered_at),
            )
            return {"ok": True, "fresh": fresh}
        self.bcp.registry.register(msg.spec)
        return {"ok": True}

    async def _on_register_batch(self, src: int, msg: codec.RegisterBatch) -> dict:
        if not self.distributed:
            for spec in msg.specs:
                self.bcp.registry.register(spec)
            return {"ok": True}
        if self.stopped:
            return {"error": "stopped"}
        stale: Dict[str, List] = {}
        for spec in msg.specs:
            key = key_for(spec.function)
            self._dir_cache.pop(spec.function, None)
            changed = self.directory.store(
                key, ServiceMetadata.from_spec(spec, registered_at=msg.registered_at)
            )
            if changed:
                holders = self.directory.stale_holders(key)
                if holders:
                    stale[spec.function] = [
                        self.directory.key_version(key),
                        sorted(holders),
                    ]
        reply: dict = {"ok": True}
        if stale:
            reply["stale"] = stale
        return reply

    async def _on_lookup(self, src: int, msg: codec.LookupRequest) -> dict:
        if self.distributed:
            if self.stopped:
                return {"error": "stopped"}
            key = key_for(msg.function)
            rows = self.directory.lookup(key)
            reply: dict = {"components": rows, "rtt": 0.0}
            if self.tier_enabled:
                tier = self.dir_tier
                self.directory.note_querier(key, msg.origin_peer)
                reply["version"] = self.directory.key_version(key)
                if tier.negative_cache:
                    reply["bloom"] = self.directory.bloom_wire()
                    self.directory.note_bloom_recipient(msg.origin_peer)
                if tier.hot_threshold > 0:
                    rate = self.directory.note_serve_rate(
                        key, self._now(), tier.popularity_halflife
                    )
                    if (
                        rows
                        and rate >= tier.hot_threshold
                        and self.directory.mark_pushed(key)
                    ):
                        # fan-out must not run inline: the transport's
                        # receive loop awaits this handler, so an
                        # outbound call here would deadlock (same
                        # pattern as _on_probe's forwarding)
                        self._spawn(self._push_replicas(key, msg.function))
            return reply
        res = self.bcp.registry.lookup(msg.function, msg.origin_peer)
        return {"components": list(res.components), "rtt": res.rtt}

    async def _push_replicas(self, key: int, function: str) -> None:
        """Push a hot key's rows to the ring peers past the base replicas."""
        rows = self.directory.rows(key)
        if not rows:
            return
        version = self.directory.key_version(key)
        base = set(self.ring.replica_peers(key))
        targets = [
            p
            for p in self.ring.extended_replica_peers(key, self.dir_tier.replica_span)
            if p not in base and p != self.peer_id
        ]
        if not targets:
            return
        self.directory.note_pushed(key, targets)
        if self.tap is not None:
            self.tap.dir_replica_push(len(targets))
        push = codec.ReplicatePush(function, tuple(rows), version)
        for target in targets:
            try:
                await self.endpoint.call(target, push, retry=self.control_retry)
            except RpcError:
                pass  # best-effort: the target keeps resolving via the owner

    async def _on_replica_push(self, src: int, msg: codec.ReplicatePush) -> dict:
        if not self.distributed or self.stopped:
            return {"error": "stopped"}
        key = key_for(msg.function)
        if self.peer_id not in self.ring.replica_peers(key):
            self.directory.store_replica(key, msg.rows, msg.version)
        return {"ok": True}

    def _apply_invalidate(self, msg: codec.ReplicaInvalidate) -> None:
        key = key_for(msg.function)
        self._dir_cache.pop(msg.function, None)
        self.directory.drop_replica(key)
        if self.dir_tier is not None and self.dir_tier.negative_cache:
            # the key's holders rebuilt their Bloom summaries; drop our
            # cached copies so absence is re-proved against fresh state
            for holder in self.ring.replica_peers(key):
                self._owner_blooms.pop(holder, None)

    async def _on_replica_invalidate(self, src: int, msg: codec.ReplicaInvalidate) -> dict:
        if not self.distributed or self.stopped:
            return {"error": "stopped"}
        self._apply_invalidate(msg)
        return {"ok": True}
