"""Runtime proof that distributed peers never touch shared ground truth.

The live cluster keeps the *environment* objects of the simulated
testbed around (shared registry, shared resource pool, DHT storage) —
in distributed mode these must be dead weight: every daemon owns its own
pool and directory slice, and all coordination crosses the transport.

:class:`SharedStateGuard` enforces that claim mechanically.  While
sealed, every read or write of the shared registry / pool / DHT storage
layer both *records* a violation and *raises*, so an accidental
shared-object shortcut fails tests loudly instead of silently keeping
the runtime a "simulation with sockets".  The DHT *routing* fabric
(:meth:`PastryNetwork.route`) stays callable: it models the overlay
message path a query physically takes and charges ``dht_route`` to the
ledger — it is the network, not the state.
"""

from __future__ import annotations

from typing import Any, List, Tuple

__all__ = ["SharedStateGuard", "SharedStateViolation"]

# every public read/write of the shared ServiceRegistry goes through its
# access hook; these are the pool/DHT surfaces sealed by monkey-patching
POOL_METHODS = (
    "available",
    "available_amount",
    "path_available_bandwidth",
    "path_available_bandwidth_batch",
    "link_available",
    "can_host",
    "can_carry",
    "soft_allocate_peer",
    "soft_allocate_path",
    "confirm",
    "cancel",
    "release",
    "transfer",
    "has_token",
    "utilisation",
)
DHT_STORAGE_METHODS = ("put", "get", "remove_values")


class SharedStateViolation(RuntimeError):
    """A distributed-mode peer read or wrote shared in-process state."""


class SharedStateGuard:
    """Seals shared registry/pool/DHT-storage objects for a cluster's lifetime."""

    def __init__(self) -> None:
        self.violations: List[str] = []
        self._patched: List[Tuple[Any, str, Any]] = []
        self._registry = None

    def trip(self, what: str) -> None:
        self.violations.append(what)
        raise SharedStateViolation(
            f"distributed peer touched shared state: {what} "
            "(must go over the wire)"
        )

    # ------------------------------------------------------------------
    def seal(self, registry, pool, dht) -> None:
        """Arm the guard over a scenario's shared environment objects."""
        self._registry = registry
        registry.set_access_hook(lambda name: self.trip(f"registry.{name}"))
        for name in POOL_METHODS:
            self._patch(pool, "pool", name)
        for name in DHT_STORAGE_METHODS:
            self._patch(dht, "dht", name)

    def unseal(self) -> None:
        """Restore every sealed object (cluster teardown)."""
        if self._registry is not None:
            self._registry.set_access_hook(None)
            self._registry = None
        for obj, name, original in reversed(self._patched):
            setattr(obj, name, original)
        self._patched.clear()

    def _patch(self, obj: Any, label: str, name: str) -> None:
        original = getattr(obj, name)

        def tripwire(*args: Any, _what: str = f"{label}.{name}", **kwargs: Any):
            self.trip(_what)

        setattr(obj, name, tripwire)
        self._patched.append((obj, name, original))
