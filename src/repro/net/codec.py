"""Versioned wire codec for the live runtime.

Frames are ``MAGIC (2) | version (1) | payload length (4, big-endian) |
payload`` where the payload is a compact JSON document.  Typed protocol
objects — probes, QoS vectors, requests, service graphs, session/ack/
maintenance messages — are embedded as ``{"__w": <tag>, "p": {...}}``
nodes so :func:`from_wire` reconstructs the exact dataclasses the
protocol code operates on: ``from_wire(to_wire(x)) == x`` for every
registered type (the codec round-trip tests assert this property).

Unknown versions, unknown type tags, truncated frames and oversized
frames all raise :class:`CodecError` — a peer never processes a frame it
cannot fully and unambiguously decode.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from ..core.function_graph import FunctionGraph
from ..core.probe import Probe
from ..core.qos import QoSRequirement, QoSVector
from ..core.request import CompositeRequest
from ..core.resources import ResourceVector
from ..core.service_graph import ServiceGraph
from ..discovery.metadata import ServiceMetadata
from ..services.component import ComponentSpec, QualitySpec

__all__ = [
    "CodecError",
    "WIRE_VERSION",
    "MAX_FRAME",
    "to_wire",
    "from_wire",
    "encode_frame",
    "decode_frame",
    "FrameReader",
    # wire messages
    "ComposeBegin",
    "DiscoveryReport",
    "ProbeTransfer",
    "FinalProbe",
    "CreditReturn",
    "ReservationReport",
    "SessionConfirm",
    "SessionRelease",
    "ComposeResult",
    "MaintenancePing",
    "RegisterComponent",
    "LookupRequest",
]

MAGIC = b"SN"
WIRE_VERSION = 1
MAX_FRAME = 4 * 1024 * 1024  # one protocol message, not a data plane
_HEADER = struct.Struct(">2sBI")


class CodecError(ValueError):
    """Raised for malformed, truncated, oversized or unknown-version frames."""


# ----------------------------------------------------------------------
# typed-object registry
# ----------------------------------------------------------------------
_ENCODERS: Dict[Type, Tuple[str, Callable[[Any], dict]]] = {}
_DECODERS: Dict[str, Callable[[dict], Any]] = {}


def _register(tag: str, cls: Type, enc: Callable[[Any], dict], dec: Callable[[dict], Any]) -> None:
    if tag in _DECODERS:
        raise ValueError(f"duplicate codec tag {tag!r}")
    _ENCODERS[cls] = (tag, enc)
    _DECODERS[tag] = dec


def to_wire(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-safe structures."""
    if obj is None or isinstance(obj, (str, bool, int, float)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [to_wire(v) for v in obj]
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if not isinstance(k, str):
                raise CodecError(f"non-string mapping key on the wire: {k!r}")
            if k == "__w":
                raise CodecError('"__w" is a reserved wire key')
            out[k] = to_wire(v)
        return out
    entry = _ENCODERS.get(type(obj))
    if entry is None:
        raise CodecError(f"type {type(obj).__name__} is not wire-encodable")
    tag, enc = entry
    return {"__w": tag, "p": to_wire(enc(obj))}


def from_wire(obj: Any) -> Any:
    """Inverse of :func:`to_wire`; reconstructs registered dataclasses."""
    if isinstance(obj, list):
        return [from_wire(v) for v in obj]
    if isinstance(obj, dict):
        if "__w" in obj:
            tag = obj["__w"]
            dec = _DECODERS.get(tag)
            if dec is None:
                raise CodecError(f"unknown wire type tag {tag!r}")
            try:
                return dec(from_wire(obj.get("p", {})))
            except CodecError:
                raise
            except Exception as exc:  # malformed payload for a known tag
                raise CodecError(f"bad payload for wire type {tag!r}: {exc}") from exc
        return {k: from_wire(v) for k, v in obj.items()}
    return obj


# ----------------------------------------------------------------------
# frame layer
# ----------------------------------------------------------------------
def encode_frame(obj: Any) -> bytes:
    """Serialize one message (envelope dict or typed object) to a frame."""
    payload = json.dumps(to_wire(obj), separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise CodecError(f"frame payload of {len(payload)} bytes exceeds {MAX_FRAME}")
    return _HEADER.pack(MAGIC, WIRE_VERSION, len(payload)) + payload


def decode_frame(data: bytes) -> Any:
    """Decode exactly one complete frame (rejects trailing garbage)."""
    obj, used = _decode_prefix(data)
    if used != len(data):
        raise CodecError(f"{len(data) - used} trailing bytes after frame")
    return obj


def _decode_prefix(data: bytes) -> Tuple[Any, int]:
    if len(data) < _HEADER.size:
        raise CodecError(f"truncated frame header: {len(data)} bytes")
    magic, version, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CodecError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise CodecError(f"unsupported wire version {version} (speak {WIRE_VERSION})")
    if length > MAX_FRAME:
        raise CodecError(f"declared payload of {length} bytes exceeds {MAX_FRAME}")
    end = _HEADER.size + length
    if len(data) < end:
        raise CodecError(f"truncated frame payload: {len(data) - _HEADER.size}/{length} bytes")
    try:
        doc = json.loads(data[_HEADER.size:end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"undecodable frame payload: {exc}") from exc
    return from_wire(doc), end


class FrameReader:
    """Incremental frame parser for a byte stream.

    ``feed()`` buffers arbitrary chunks and returns every message whose
    frame completed; a header error (bad magic/version/length) poisons
    the stream permanently, since resynchronisation is impossible.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[Any]:
        self._buf.extend(data)
        out: List[Any] = []
        while len(self._buf) >= _HEADER.size:
            magic, version, length = _HEADER.unpack_from(self._buf)
            if magic != MAGIC:
                raise CodecError(f"bad frame magic {bytes(magic)!r}")
            if version != WIRE_VERSION:
                raise CodecError(f"unsupported wire version {version}")
            if length > MAX_FRAME:
                raise CodecError(f"declared payload of {length} bytes exceeds {MAX_FRAME}")
            end = _HEADER.size + length
            if len(self._buf) < end:
                break
            out.append(decode_frame(bytes(self._buf[:end])))
            del self._buf[:end]
        return out

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)


# ----------------------------------------------------------------------
# core protocol objects
# ----------------------------------------------------------------------
_register(
    "qos",
    QoSVector,
    lambda x: {"values": dict(x.values)},
    lambda p: QoSVector(p["values"]),
)
_register(
    "qosreq",
    QoSRequirement,
    lambda x: {"bounds": dict(x.bounds)},
    lambda p: QoSRequirement(p["bounds"]),
)
_register(
    "res",
    ResourceVector,
    lambda x: {"values": dict(x.values)},
    lambda p: ResourceVector(p["values"]),
)
_register(
    "quality",
    QualitySpec,
    lambda x: {"formats": sorted(x.formats)},
    lambda p: QualitySpec(frozenset(p["formats"])),
)
_register(
    "frac",
    Fraction,
    lambda x: {"n": x.numerator, "d": x.denominator},
    lambda p: Fraction(p["n"], p["d"]),
)
_register(
    "svcmeta",
    ServiceMetadata,
    lambda x: {
        "component_id": x.component_id,
        "function": x.function,
        "peer": x.peer,
        "qp": x.qp,
        "resources": x.resources,
        "input_quality": x.input_quality,
        "output_quality": x.output_quality,
        "bandwidth_factor": x.bandwidth_factor,
        "registered_at": x.registered_at,
    },
    lambda p: ServiceMetadata(**p),
)
_register(
    "cspec",
    ComponentSpec,
    lambda x: {
        "component_id": x.component_id,
        "function": x.function,
        "peer": x.peer,
        "qp": x.qp,
        "resources": x.resources,
        "input_quality": x.input_quality,
        "output_quality": x.output_quality,
        "n_inputs": x.n_inputs,
        "bandwidth_factor": x.bandwidth_factor,
    },
    lambda p: ComponentSpec(**p),
)
_register(
    "fgraph",
    FunctionGraph,
    lambda x: {
        "functions": list(x.functions),
        "edges": sorted([a, b] for a, b in x.edges),
        "commutations": sorted(sorted(pair) for pair in x.commutations),
    },
    lambda p: FunctionGraph.from_edges(
        p["functions"],
        [(a, b) for a, b in p["edges"]],
        [(a, b) for a, b in p["commutations"]],
    ),
)
_register(
    "request",
    CompositeRequest,
    lambda x: {
        "request_id": x.request_id,
        "function_graph": x.function_graph,
        "qos": x.qos,
        "source_peer": x.source_peer,
        "dest_peer": x.dest_peer,
        "bandwidth": x.bandwidth,
        "failure_req": x.failure_req,
        "duration": x.duration,
        "priority": x.priority,
    },
    lambda p: CompositeRequest(**p),
)
_register(
    "sgraph",
    ServiceGraph,
    lambda x: {
        "pattern": x.pattern,
        "assignment": dict(x.assignment),
        "source_peer": x.source_peer,
        "dest_peer": x.dest_peer,
        "base_bandwidth": x.base_bandwidth,
    },
    lambda p: ServiceGraph(**p),
)
_register(
    "probe",
    Probe,
    lambda x: {
        "probe_id": x.probe_id,
        "request": x.request,
        "graph": x.graph,
        "applied_swaps": sorted(sorted(pair) for pair in x.applied_swaps),
        "assignment": dict(x.assignment),
        "branch": list(x.branch),
        "current_peer": x.current_peer,
        "qos": x.qos,
        "budget": x.budget,
        "out_bandwidth": x.out_bandwidth,
        "elapsed": x.elapsed,
        "hops": x.hops,
    },
    lambda p: Probe(
        probe_id=p["probe_id"],
        request=p["request"],
        graph=p["graph"],
        applied_swaps=frozenset(frozenset(pair) for pair in p["applied_swaps"]),
        assignment=p["assignment"],
        branch=tuple(p["branch"]),
        current_peer=p["current_peer"],
        qos=p["qos"],
        budget=p["budget"],
        out_bandwidth=p["out_bandwidth"],
        elapsed=p["elapsed"],
        hops=p["hops"],
    ),
)


# ----------------------------------------------------------------------
# wire messages (session setup / ack / maintenance)
# ----------------------------------------------------------------------
def _tokens_tuple(tokens) -> Tuple[Tuple, ...]:
    return tuple(tuple(t) for t in tokens)


def _message(cls: Type) -> Type:
    """Register a message dataclass with shallow field-wise encoding."""
    names = [f.name for f in dataclasses.fields(cls)]
    _register(
        "msg." + cls.__name__,
        cls,
        lambda m, names=names: {n: getattr(m, n) for n in names},
        lambda p, cls=cls: cls(**p),
    )
    return cls


@_message
@dataclass(frozen=True)
class ComposeBegin:
    """Source → destination: open a probe collection window for a request."""

    request_id: int
    request: CompositeRequest
    budget: int
    confirm: bool


@_message
@dataclass(frozen=True)
class DiscoveryReport:
    """Source → destination: the root expansion's discovery RTT (phase split)."""

    request_id: int
    rtt: float


@_message
@dataclass(frozen=True)
class ProbeTransfer:
    """Peer → peer: one child probe dispatch (Step 2.4 → Step 2.1).

    Carries the parent probe plus the chosen ``(function, component)``
    and the effective pattern so the *receiving* peer performs admission
    (QoS check + soft allocation) exactly as ``BCP._admit`` does.
    ``credit`` is this probe's share of the request's termination credit
    (splits on fan-out, returns to the destination on arrival/prune/loss).
    """

    request_id: int
    parent: Probe
    function: str
    component: ServiceMetadata
    graph: FunctionGraph
    applied: Tuple[Tuple[str, str], ...]
    budget: int
    lookup_rtt: float
    credit: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "applied", tuple(tuple(p) for p in self.applied))


@_message
@dataclass(frozen=True)
class FinalProbe:
    """Last-hop peer → destination: a branch-complete probe arrives."""

    request_id: int
    probe: Probe
    credit: Fraction


@_message
@dataclass(frozen=True)
class CreditReturn:
    """Any peer → destination: credit whose probe will not arrive."""

    request_id: int
    credit: Fraction
    reason: str


@_message
@dataclass(frozen=True)
class ReservationReport:
    """Admitting peer → destination: fresh soft reservations' demands.

    Distributed mode only.  ``peers`` is ``((peer, rtype, amount), ...)``
    and ``links`` is ``((u, v, bandwidth), ...)``; the destination
    accumulates them per request so ψλ selection sees the whole wave's
    load exactly as the shared-pool engines do.  The sender awaits the
    ack *before* forwarding the probe's credit anywhere, so the
    collection window cannot close with a report still in flight.
    """

    request_id: int
    peers: Tuple[Tuple[int, str, float], ...]
    links: Tuple[Tuple[int, int, float], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "peers", _tokens_tuple(self.peers))
        object.__setattr__(self, "links", _tokens_tuple(self.links))


@_message
@dataclass(frozen=True)
class SessionConfirm:
    """Destination → path peers: setup ack confirming soft reservations."""

    request_id: int
    tokens: Tuple[Tuple, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "tokens", _tokens_tuple(self.tokens))


@_message
@dataclass(frozen=True)
class SessionRelease:
    """Destination → all peers: drop this request's soft state (minus keep)."""

    request_id: int
    keep: Tuple[Tuple, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "keep", _tokens_tuple(self.keep))


@_message
@dataclass(frozen=True)
class ComposeResult:
    """Destination → source: the composition outcome."""

    request_id: int
    success: bool
    graph: Optional[ServiceGraph]
    qos: Optional[QoSVector]
    cost: float
    failure_reason: Optional[str]
    probes_sent: int
    candidates_examined: int
    setup_time: float
    phases: Dict[str, float] = field(default_factory=dict)
    session_tokens: Tuple[Tuple, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "session_tokens", _tokens_tuple(self.session_tokens))


@_message
@dataclass(frozen=True)
class MaintenancePing:
    """Source → session peers: periodic liveness probe for an active session."""

    request_id: int
    seq: int


@_message
@dataclass(frozen=True)
class RegisterComponent:
    """Hosting peer → directory owner: store a component's meta-data.

    In distributed mode the receiver holds the row in its own
    :class:`~repro.net.directory.DirectorySlice`; ``registered_at`` is
    the registrant's clock so replicas stamp identical meta-data."""

    spec: ComponentSpec
    registered_at: float = 0.0


@_message
@dataclass(frozen=True)
class LookupRequest:
    """Querying peer → directory owner: a function's duplicate list.

    The reply carries the owner slice's ``ServiceMetadata`` rows; the
    querier computes the lookup RTT itself from the DHT route it took
    to find the owner."""

    function: str
    origin_peer: int
