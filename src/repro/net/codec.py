"""Versioned wire codec for the live runtime.

Frames are ``MAGIC (2) | version (1) | payload length (4, big-endian) |
payload``.  Two payload encodings coexist on the same stream:

* **v1 (JSON)** — the payload is a compact JSON document in which typed
  protocol objects are embedded as ``{"__w": <tag>, "p": {...}}`` nodes.
  This is the interoperability fallback and the reference encoding.
* **v2 (binary)** — the hot-path encoding: a single-pass tag-prefixed
  binary term format (struct-packed fixed-width scalars, length-prefixed
  strings and repeated sections) with per-frame *back-reference tables*
  for strings and typed objects, so a value that appears repeatedly in
  one frame (the request inside every probe, a function name inside
  every edge) is encoded once and referenced thereafter.  Decoding uses
  trusted constructors — a peer only ever decodes frames produced by
  this encoder from already-validated objects, so re-running dataclass
  validation (``FunctionGraph.validate``, ``__post_init__`` range
  checks) on every hop is pure overhead.

Both encodings reconstruct the exact dataclasses the protocol code
operates on: ``decode(encode(x)) == x`` for every registered type and
both versions (the codec round-trip tests assert this property).  Every
frame is self-describing via its header version byte, so
:class:`FrameReader` accepts v1 and v2 frames interleaved on one
stream; which version a *sender* uses is decided per connection by the
transport's negotiation handshake (see :mod:`.transport` and
``docs/PROTOCOL.md``).

Unknown versions, unknown type tags, truncated frames and oversized
frames all raise :class:`CodecError` — a peer never processes a frame it
cannot fully and unambiguously decode.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from ..core.function_graph import FunctionGraph
from ..core.probe import Probe
from ..core.qos import QoSRequirement, QoSVector
from ..core.request import CompositeRequest
from ..core.resources import ResourceVector
from ..core.service_graph import ServiceGraph
from ..discovery.metadata import ServiceMetadata
from ..services.component import ComponentSpec, QualitySpec

__all__ = [
    "CodecError",
    "WIRE_VERSION",
    "WIRE_VERSION_BINARY",
    "SUPPORTED_WIRE_VERSIONS",
    "MAX_FRAME",
    "to_wire",
    "from_wire",
    "encode_frame",
    "decode_frame",
    "FrameReader",
    # wire messages
    "ComposeBegin",
    "DiscoveryReport",
    "ProbeTransfer",
    "FinalProbe",
    "CreditReturn",
    "ReservationReport",
    "SessionConfirm",
    "SessionRelease",
    "ComposeResult",
    "Busy",
    "MaintenancePing",
    "RegisterComponent",
    "RegisterBatch",
    "LookupRequest",
    "ReplicatePush",
    "ReplicaInvalidate",
    "PathProbe",
    "ProbeAck",
]

MAGIC = b"SN"
WIRE_VERSION = 1  # JSON payloads: the negotiation fallback
WIRE_VERSION_BINARY = 2  # binary payloads: the live fast path
SUPPORTED_WIRE_VERSIONS = (WIRE_VERSION, WIRE_VERSION_BINARY)
MAX_FRAME = 4 * 1024 * 1024  # one protocol message, not a data plane
_HEADER = struct.Struct(">2sBI")
_HEADER_SIZE = _HEADER.size


class CodecError(ValueError):
    """Raised for malformed, truncated, oversized or unknown-version frames."""


# ----------------------------------------------------------------------
# typed-object registry
# ----------------------------------------------------------------------
# v1: tag string <-> (enc -> plain dict, dec <- plain dict)
_ENCODERS: Dict[Type, Tuple[str, Callable[[Any], dict]]] = {}
_DECODERS: Dict[str, Callable[[dict], Any]] = {}
# v2: numeric type id <-> (pack(packer, obj), unpack(unpacker) -> obj)
_BIN_IDS: Dict[Type, int] = {}
_BIN_PACKERS: List[Callable] = []
_BIN_UNPACKERS: List[Callable] = []
_BIN_BLOB: List[bool] = []  # per type id: encode as content-addressed blob?


def _register(
    tag: str,
    cls: Type,
    enc: Callable[[Any], dict],
    dec: Callable[[dict], Any],
    pack: Optional[Callable] = None,
    unpack: Optional[Callable] = None,
) -> None:
    if tag in _DECODERS:
        raise ValueError(f"duplicate codec tag {tag!r}")
    if len(_BIN_PACKERS) > 0xFF:
        raise ValueError("binary type-id space exhausted")
    _ENCODERS[cls] = (tag, enc)
    _DECODERS[tag] = dec
    if pack is None:
        # generic fallback: pack the v1 encoder's dict, decode through
        # the v1 decoder — slower, but automatically correct for any
        # type that has no dedicated binary layout
        def pack(p, obj, _enc=enc):  # noqa: ANN001
            p.pack_value(_enc(obj))

        def unpack(u, _dec=dec):  # noqa: ANN001
            return _dec(u.read_value())

    _BIN_IDS[cls] = len(_BIN_PACKERS)
    _BIN_PACKERS.append(pack)
    _BIN_UNPACKERS.append(unpack)
    _BIN_BLOB.append(False)


def to_wire(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-safe structures (v1)."""
    if obj is None or isinstance(obj, (str, bool, int, float)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [to_wire(v) for v in obj]
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if not isinstance(k, str):
                raise CodecError(f"non-string mapping key on the wire: {k!r}")
            if k == "__w":
                raise CodecError('"__w" is a reserved wire key')
            out[k] = to_wire(v)
        return out
    entry = _ENCODERS.get(type(obj))
    if entry is None:
        raise CodecError(f"type {type(obj).__name__} is not wire-encodable")
    tag, enc = entry
    return {"__w": tag, "p": to_wire(enc(obj))}


def from_wire(obj: Any) -> Any:
    """Inverse of :func:`to_wire`; reconstructs registered dataclasses."""
    if isinstance(obj, list):
        return [from_wire(v) for v in obj]
    if isinstance(obj, dict):
        if "__w" in obj:
            tag = obj["__w"]
            dec = _DECODERS.get(tag)
            if dec is None:
                raise CodecError(f"unknown wire type tag {tag!r}")
            try:
                return dec(from_wire(obj.get("p", {})))
            except CodecError:
                raise
            except Exception as exc:  # malformed payload for a known tag
                raise CodecError(f"bad payload for wire type {tag!r}: {exc}") from exc
        return {k: from_wire(v) for k, v in obj.items()}
    return obj


# ----------------------------------------------------------------------
# v2 binary term format
# ----------------------------------------------------------------------
# one tag byte per value; fixed-width scalars via struct, length-prefixed
# strings/containers, >H back-references into per-frame tables
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT8 = 0x03
_T_INT32 = 0x04
_T_INT64 = 0x05
_T_INTBIG = 0x06
_T_FLOAT = 0x07
_T_STR8 = 0x08
_T_STR32 = 0x09
_T_STRREF = 0x0A
_T_LIST8 = 0x0B
_T_LIST32 = 0x0C
_T_DICT8 = 0x0D
_T_DICT32 = 0x0E
_T_OBJ = 0x0F
_T_OBJREF = 0x10
# dedicated layouts for the RPC envelope wrappers: every frame is one of
# these two dicts, so spelling their keys per frame is pure overhead
_T_REQ_ENV = 0x11  # {"kind":"req","id","src","inc","body"}
_T_RES_ENV = 0x12  # {"kind":"res","id","src","body"} (+ optional "inc")
# content-addressed sub-message: tag | type_id(1B) | length(>I) | payload,
# where the payload is the object encoded against *fresh* (static-only)
# back-reference tables.  Making the bytes context-free lets both ends
# memoize across frames — see the cache note above ``pack_object``.
_T_BLOB = 0x13

_S_INT8 = struct.Struct(">Bb")
_S_INT32 = struct.Struct(">Bi")
_S_INT64 = struct.Struct(">Bq")
_S_FLOAT = struct.Struct(">Bd")
_S_REF = struct.Struct(">BH")
_S_LEN8 = struct.Struct(">BB")
_S_LEN32 = struct.Struct(">BI")
_S_OBJ = struct.Struct(">BB")
_S_BLOB = struct.Struct(">BBI")
_S_b = struct.Struct(">b")
_S_i = struct.Struct(">i")
_S_q = struct.Struct(">q")
_S_d = struct.Struct(">d")
_S_I = struct.Struct(">I")

_TABLE_LIMIT = 0xFFFF  # >H back-reference index space per frame

# protocol-static string table (the HPACK idea): strings every session
# sends constantly are pre-seeded at fixed indices on both ends, so even
# their *first* occurrence in a frame is a 3-byte reference.  Order is
# part of the v2 wire format — append only.
_STATIC_STRINGS = (
    "ok", "error", "confirmed", "components", "rtt", "fresh",
    "alive", "request", "seq", "comp", "link", "delay", "loss",
    "cpu", "memory", "discovery", "composition", "setup_ack",
    # directory tier reply keys (appended in a later revision; order is
    # wire format, so new entries only ever go at the end)
    "version", "bloom", "stale",
)
_STATIC_MAP = {s: i for i, s in enumerate(_STATIC_STRINGS)}


# cross-frame memo for content-addressed blobs.  A compose session ships
# the same immutable objects — the request, its function graph, the
# directory's ServiceMetadata entries — inside every probe and report
# frame.  Blob-typed objects are encoded against fresh tables, so their
# bytes depend on nothing outside the object: the sender caches the
# encoding per live object (the strong reference keeps ``id()`` unique),
# and the receiver caches the decode per unique byte string, returning
# one shared immutable instance thereafter.  Blobs carry no cross-frame
# protocol state, so frame loss or reordering cannot desynchronize them.
_BLOB_CACHE_LIMIT = 4096
_ENC_BLOBS: Dict[int, Tuple[Any, bytes]] = {}  # id(obj) -> (obj, blob)
_DEC_BLOBS: Dict[Tuple[int, bytes], Any] = {}  # (type_id, blob) -> obj


class _Packer:
    """Single-pass binary encoder with per-frame back-reference tables."""

    __slots__ = ("out", "_strs", "_objs", "_keep")

    def __init__(self) -> None:
        self.out = bytearray()
        self._strs: Dict[str, int] = dict(_STATIC_MAP)
        self._objs: Dict[int, int] = {}  # id(obj) -> table index
        self._keep: List[Any] = []  # keeps ids valid for the pass

    def pack_str(self, s: str) -> None:
        out = self.out
        idx = self._strs.get(s)
        if idx is not None:
            out += _S_REF.pack(_T_STRREF, idx)
            return
        raw = s.encode("utf-8")
        n = len(raw)
        if n < 256:
            out += _S_LEN8.pack(_T_STR8, n)
        else:
            out += _S_LEN32.pack(_T_STR32, n)
        out += raw
        if len(self._strs) < _TABLE_LIMIT:
            self._strs[s] = len(self._strs)

    def pack_int(self, v: int) -> None:
        if -128 <= v <= 127:
            self.out += _S_INT8.pack(_T_INT8, v)
        elif -(1 << 31) <= v < (1 << 31):
            self.out += _S_INT32.pack(_T_INT32, v)
        elif -(1 << 63) <= v < (1 << 63):
            self.out += _S_INT64.pack(_T_INT64, v)
        else:  # arbitrary precision (deep credit-split denominators)
            raw = v.to_bytes((v.bit_length() + 8) // 8, "big", signed=True)
            self.out += _S_LEN32.pack(_T_INTBIG, len(raw))
            self.out += raw

    def pack_float(self, v: float) -> None:
        self.out += _S_FLOAT.pack(_T_FLOAT, v)

    def pack_count(self, tag8: int, tag32: int, n: int) -> None:
        if n < 256:
            self.out += _S_LEN8.pack(tag8, n)
        else:
            self.out += _S_LEN32.pack(tag32, n)

    def pack_value(self, v: Any) -> None:
        t = type(v)
        if t is str:
            self.pack_str(v)
        elif t is int:
            self.pack_int(v)
        elif t is float:
            self.pack_float(v)
        elif t is bool:
            self.out.append(_T_TRUE if v else _T_FALSE)
        elif v is None:
            self.out.append(_T_NONE)
        elif t is list or t is tuple:
            self.pack_count(_T_LIST8, _T_LIST32, len(v))
            for item in v:
                self.pack_value(item)
        elif t is dict:
            if not self._pack_envelope(v):
                self.pack_count(_T_DICT8, _T_DICT32, len(v))
                for k, item in v.items():
                    if type(k) is not str:
                        raise CodecError(f"non-string mapping key on the wire: {k!r}")
                    self.pack_str(k)
                    self.pack_value(item)
        else:
            self.pack_object(v)

    def _pack_envelope(self, v: dict) -> bool:
        """Emit an RPC envelope dict in its dedicated layout, if it is one."""
        n = len(v)
        kind = v.get("kind")
        if kind == "req" and n == 5:
            try:
                msg_id, src, inc, body = v["id"], v["src"], v["inc"], v["body"]
            except KeyError:
                return False
            self.out.append(_T_REQ_ENV)
        elif kind == "res" and (n == 4 or (n == 5 and "inc" in v)):
            try:
                msg_id, src, body = v["id"], v["src"], v["body"]
            except KeyError:
                return False
            inc = v.get("inc")
            self.out.append(_T_RES_ENV)
        else:
            return False
        self.pack_value(msg_id)
        self.pack_value(src)
        self.pack_value(inc)
        self.pack_value(body)
        return True

    def pack_object(self, v: Any) -> None:
        idx = self._objs.get(id(v))
        if idx is not None:
            self.out += _S_REF.pack(_T_OBJREF, idx)
            return
        tid = _BIN_IDS.get(type(v))
        if tid is None:
            raise CodecError(f"type {type(v).__name__} is not wire-encodable")
        if _BIN_BLOB[tid]:
            entry = _ENC_BLOBS.get(id(v))
            if entry is None:
                sub = _Packer()
                _BIN_PACKERS[tid](sub, v)
                blob = bytes(sub.out)
                if len(_ENC_BLOBS) >= _BLOB_CACHE_LIMIT:
                    _ENC_BLOBS.pop(next(iter(_ENC_BLOBS)))
                _ENC_BLOBS[id(v)] = (v, blob)
            else:
                blob = entry[1]
            self.out += _S_BLOB.pack(_T_BLOB, tid, len(blob))
            self.out += blob
        else:
            self.out += _S_OBJ.pack(_T_OBJ, tid)
            _BIN_PACKERS[tid](self, v)
        # post-order registration: children are in the table before their
        # parents, matching the decoder's construction order exactly (a
        # blob registers only itself — its children live in its own tables)
        if len(self._objs) < _TABLE_LIMIT:
            self._objs[id(v)] = len(self._objs)
            self._keep.append(v)


class _Unpacker:
    """Mirror of :class:`_Packer`; raises :class:`CodecError` on any damage.

    Fixed-width scalars are read with ``unpack_from`` against a running
    offset — no intermediate slices — because this loop runs once per
    value of every frame a peer receives.
    """

    __slots__ = ("buf", "pos", "_strs", "_objs")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0
        self._strs: List[str] = list(_STATIC_STRINGS)
        self._objs: List[Any] = []

    def read_value(self) -> Any:
        buf = self.buf
        pos = self.pos
        try:
            tag = buf[pos]
            pos += 1
            # ordered roughly by observed frequency on the live path
            if tag == _T_STRREF:
                idx = (buf[pos] << 8) | buf[pos + 1]
                self.pos = pos + 2
                strs = self._strs
                if idx >= len(strs):
                    raise CodecError(f"dangling string back-reference {idx}")
                return strs[idx]
            if tag == _T_STR8:
                n = buf[pos]
                pos += 1
                end = pos + n
                if end > len(buf):
                    raise CodecError(
                        f"truncated binary payload: string runs past the end"
                    )
                self.pos = end
                s = buf[pos:end].decode("utf-8")
                self._strs.append(s)
                return s
            if tag == _T_INT8:
                self.pos = pos + 1
                return _S_b.unpack_from(buf, pos)[0]
            if tag == _T_FLOAT:
                self.pos = pos + 8
                return _S_d.unpack_from(buf, pos)[0]
            if tag == _T_INT32:
                self.pos = pos + 4
                return _S_i.unpack_from(buf, pos)[0]
            if tag == _T_OBJ:
                tid = buf[pos]
                self.pos = pos + 1
                if tid >= len(_BIN_UNPACKERS):
                    raise CodecError(f"unknown binary type id {tid}")
                obj = _BIN_UNPACKERS[tid](self)
                self._objs.append(obj)
                return obj
            if tag == _T_OBJREF:
                idx = (buf[pos] << 8) | buf[pos + 1]
                self.pos = pos + 2
                objs = self._objs
                if idx >= len(objs):
                    raise CodecError(f"dangling object back-reference {idx}")
                return objs[idx]
            if tag == _T_BLOB:
                tid = buf[pos]
                n = _S_I.unpack_from(buf, pos + 1)[0]
                start = pos + 5
                end = start + n
                if end > len(buf):
                    raise CodecError("truncated binary payload: blob runs past the end")
                if tid >= len(_BIN_UNPACKERS):
                    raise CodecError(f"unknown binary type id {tid}")
                self.pos = end
                key = (tid, bytes(buf[start:end]))
                obj = _DEC_BLOBS.get(key)
                if obj is None:
                    sub = _Unpacker(key[1])
                    obj = _BIN_UNPACKERS[tid](sub)
                    if sub.pos != n:
                        raise CodecError("trailing bytes inside binary payload")
                    if len(_DEC_BLOBS) >= _BLOB_CACHE_LIMIT:
                        _DEC_BLOBS.pop(next(iter(_DEC_BLOBS)))
                    _DEC_BLOBS[key] = obj
                self._objs.append(obj)
                return obj
            if tag == _T_LIST8 or tag == _T_LIST32:
                if tag == _T_LIST8:
                    n = buf[pos]
                    self.pos = pos + 1
                else:
                    n = _S_I.unpack_from(buf, pos)[0]
                    self.pos = pos + 4
                read = self.read_value
                return [read() for _ in range(n)]
            if tag == _T_DICT8 or tag == _T_DICT32:
                if tag == _T_DICT8:
                    n = buf[pos]
                    self.pos = pos + 1
                else:
                    n = _S_I.unpack_from(buf, pos)[0]
                    self.pos = pos + 4
                read = self.read_value
                out = {}
                for _ in range(n):
                    k = read()
                    if type(k) is not str:
                        raise CodecError(f"non-string mapping key on the wire: {k!r}")
                    out[k] = read()
                return out
            if tag == _T_REQ_ENV or tag == _T_RES_ENV:
                self.pos = pos
                read = self.read_value
                msg_id = read()
                src = read()
                inc = read()
                body = read()
                if tag == _T_REQ_ENV:
                    return {"kind": "req", "id": msg_id, "src": src,
                            "inc": inc, "body": body}
                env = {"kind": "res", "id": msg_id, "src": src, "body": body}
                if inc is not None:
                    env["inc"] = inc
                return env
            if tag == _T_NONE:
                self.pos = pos
                return None
            if tag == _T_TRUE:
                self.pos = pos
                return True
            if tag == _T_FALSE:
                self.pos = pos
                return False
            if tag == _T_INT64:
                self.pos = pos + 8
                return _S_q.unpack_from(buf, pos)[0]
            if tag == _T_STR32:
                n = _S_I.unpack_from(buf, pos)[0]
                pos += 4
                end = pos + n
                if end > len(buf):
                    raise CodecError(
                        f"truncated binary payload: string runs past the end"
                    )
                self.pos = end
                s = buf[pos:end].decode("utf-8")
                self._strs.append(s)
                return s
            if tag == _T_INTBIG:
                n = _S_I.unpack_from(buf, pos)[0]
                pos += 4
                end = pos + n
                if end > len(buf):
                    raise CodecError(
                        f"truncated binary payload: bigint runs past the end"
                    )
                self.pos = end
                return int.from_bytes(buf[pos:end], "big", signed=True)
        except CodecError:
            raise
        except (IndexError, struct.error) as exc:
            raise CodecError(f"truncated binary payload: {exc}") from exc
        except UnicodeDecodeError as exc:
            raise CodecError(f"undecodable binary payload: {exc}") from exc
        raise CodecError(f"unknown binary value tag 0x{tag:02x}")


# ----------------------------------------------------------------------
# frame layer
# ----------------------------------------------------------------------
def encode_frame(obj: Any, version: int = WIRE_VERSION) -> bytes:
    """Serialize one message (envelope dict or typed object) to a frame."""
    if version == WIRE_VERSION:
        payload = json.dumps(to_wire(obj), separators=(",", ":")).encode("utf-8")
    elif version == WIRE_VERSION_BINARY:
        packer = _Packer()
        packer.pack_value(obj)
        payload = bytes(packer.out)
    else:
        raise CodecError(f"cannot encode wire version {version}")
    if len(payload) > MAX_FRAME:
        raise CodecError(f"frame payload of {len(payload)} bytes exceeds {MAX_FRAME}")
    return _HEADER.pack(MAGIC, version, len(payload)) + payload


def _decode_payload(payload: bytes, version: int) -> Any:
    if version == WIRE_VERSION:
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"undecodable frame payload: {exc}") from exc
        return from_wire(doc)
    unpacker = _Unpacker(payload)
    value = unpacker.read_value()
    if unpacker.pos != len(payload):
        raise CodecError(
            f"{len(payload) - unpacker.pos} trailing bytes inside binary payload"
        )
    return value


def _check_header(magic: bytes, version: int, length: int) -> None:
    if magic != MAGIC:
        raise CodecError(f"bad frame magic {bytes(magic)!r}")
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise CodecError(
            f"unsupported wire version {version} (speak {SUPPORTED_WIRE_VERSIONS})"
        )
    if length > MAX_FRAME:
        raise CodecError(f"declared payload of {length} bytes exceeds {MAX_FRAME}")


def decode_frame(data: bytes) -> Any:
    """Decode exactly one complete frame (rejects trailing garbage)."""
    if len(data) < _HEADER_SIZE:
        raise CodecError(f"truncated frame header: {len(data)} bytes")
    magic, version, length = _HEADER.unpack_from(data)
    _check_header(magic, version, length)
    end = _HEADER_SIZE + length
    if len(data) < end:
        raise CodecError(
            f"truncated frame payload: {len(data) - _HEADER_SIZE}/{length} bytes"
        )
    if len(data) > end:
        raise CodecError(f"{len(data) - end} trailing bytes after frame")
    return _decode_payload(data[_HEADER_SIZE:end], version)


class FrameReader:
    """Incremental frame parser for a byte stream.

    ``feed()`` buffers arbitrary chunks and returns every message whose
    frame completed.  v1 and v2 frames may be interleaved — each frame's
    header version byte selects its payload decoder.  A header error
    (bad magic/version/length) poisons the stream permanently, since
    resynchronisation is impossible.

    The buffer is consumed through an offset cursor rather than
    re-trimming the front per frame (which made bursts O(n²) in the
    number of buffered bytes); the consumed prefix is compacted away
    only once it dominates the buffer.
    """

    # compact when the consumed prefix exceeds this AND most of the
    # buffer is dead — amortizes the memmove over many frames
    _COMPACT_MIN = 1 << 16

    def __init__(self) -> None:
        self._buf = bytearray()
        self._pos = 0

    def feed(self, data: bytes) -> List[Any]:
        buf = self._buf
        buf += data
        out: List[Any] = []
        pos = self._pos
        try:
            while len(buf) - pos >= _HEADER_SIZE:
                magic, version, length = _HEADER.unpack_from(buf, pos)
                _check_header(bytes(magic), version, length)
                end = pos + _HEADER_SIZE + length
                if len(buf) < end:
                    break
                out.append(
                    _decode_payload(bytes(buf[pos + _HEADER_SIZE : end]), version)
                )
                pos = end
        finally:
            self._pos = pos
            if pos >= self._COMPACT_MIN and pos * 2 >= len(buf):
                del buf[:pos]
                self._pos = 0
        return out

    @property
    def pending_bytes(self) -> int:
        return len(self._buf) - self._pos


# ----------------------------------------------------------------------
# trusted construction helpers (v2 decode)
# ----------------------------------------------------------------------
# The binary decoder only ever sees frames this module encoded from
# already-validated objects, so reconstruction skips defensive copies
# and __post_init__ re-validation.  Anything structurally damaged still
# fails loudly in the term decoder above.
_OSET = object.__setattr__

try:  # CPython's Fraction stores coprime ints in two slots; reuse them
    _probe_frac = Fraction.__new__(Fraction)
    _probe_frac._numerator = 1
    _probe_frac._denominator = 1
    _FAST_FRACTION = True
except (AttributeError, TypeError):  # pragma: no cover - exotic runtimes
    _FAST_FRACTION = False


def _make_fraction(n: int, d: int) -> Fraction:
    if _FAST_FRACTION:
        f = Fraction.__new__(Fraction)
        f._numerator = n
        f._denominator = d
        return f
    return Fraction(n, d)  # pragma: no cover - exotic runtimes


def _new_with_dict(cls: Type, fields: dict) -> Any:
    """Build a frozen (non-slots) dataclass without running __init__."""
    obj = object.__new__(cls)
    obj.__dict__.update(fields)
    return obj


# ----------------------------------------------------------------------
# core protocol objects
# ----------------------------------------------------------------------
def _pack_str_float_map(p: _Packer, values: Dict[str, float]) -> None:
    p.pack_count(_T_DICT8, _T_DICT32, len(values))
    for k, v in values.items():
        p.pack_str(k)
        p.pack_float(v)


def _unpack_str_float_map(u: _Unpacker) -> Dict[str, float]:
    value = u.read_value()
    if type(value) is not dict:
        raise CodecError("expected a metric map")
    return value


_register(
    "qos",
    QoSVector,
    lambda x: {"values": dict(x.values)},
    lambda p: QoSVector(p["values"]),
    pack=lambda p, x: _pack_str_float_map(p, x.values),
    unpack=lambda u: QoSVector._from_trusted(_unpack_str_float_map(u)),
)
_register(
    "qosreq",
    QoSRequirement,
    lambda x: {"bounds": dict(x.bounds)},
    lambda p: QoSRequirement(p["bounds"]),
    pack=lambda p, x: _pack_str_float_map(p, x.bounds),
    unpack=lambda u: _new_with_dict(
        QoSRequirement, {"bounds": _unpack_str_float_map(u)}
    ),
)
_register(
    "res",
    ResourceVector,
    lambda x: {"values": dict(x.values)},
    lambda p: ResourceVector(p["values"]),
    pack=lambda p, x: _pack_str_float_map(p, x.values),
    unpack=lambda u: ResourceVector._from_trusted(_unpack_str_float_map(u)),
)


def _pack_quality(p: _Packer, x: QualitySpec) -> None:
    p.pack_value(sorted(x.formats))


def _unpack_quality(u: _Unpacker) -> QualitySpec:
    return QualitySpec(frozenset(u.read_value()))


_register(
    "quality",
    QualitySpec,
    lambda x: {"formats": sorted(x.formats)},
    lambda p: QualitySpec(frozenset(p["formats"])),
    pack=_pack_quality,
    unpack=_unpack_quality,
)


def _pack_fraction(p: _Packer, x: Fraction) -> None:
    p.pack_int(x.numerator)
    p.pack_int(x.denominator)


def _unpack_fraction(u: _Unpacker) -> Fraction:
    n = u.read_value()
    d = u.read_value()
    if type(n) is not int or type(d) is not int or d == 0:
        raise CodecError(f"bad fraction {n!r}/{d!r}")
    return _make_fraction(n, d)


_register(
    "frac",
    Fraction,
    lambda x: {"n": x.numerator, "d": x.denominator},
    lambda p: Fraction(p["n"], p["d"]),
    pack=_pack_fraction,
    unpack=_unpack_fraction,
)


def _pack_svcmeta(p: _Packer, x: ServiceMetadata) -> None:
    p.pack_int(x.component_id)
    p.pack_str(x.function)
    p.pack_int(x.peer)
    p.pack_object(x.qp)
    p.pack_object(x.resources)
    p.pack_object(x.input_quality)
    p.pack_object(x.output_quality)
    p.pack_float(x.bandwidth_factor)
    p.pack_float(x.registered_at)


def _unpack_svcmeta(u: _Unpacker) -> ServiceMetadata:
    read = u.read_value
    return ServiceMetadata(
        read(), read(), read(), read(), read(), read(), read(), read(), read()
    )


_register(
    "svcmeta",
    ServiceMetadata,
    lambda x: {
        "component_id": x.component_id,
        "function": x.function,
        "peer": x.peer,
        "qp": x.qp,
        "resources": x.resources,
        "input_quality": x.input_quality,
        "output_quality": x.output_quality,
        "bandwidth_factor": x.bandwidth_factor,
        "registered_at": x.registered_at,
    },
    lambda p: ServiceMetadata(**p),
    pack=_pack_svcmeta,
    unpack=_unpack_svcmeta,
)


def _pack_cspec(p: _Packer, x: ComponentSpec) -> None:
    p.pack_int(x.component_id)
    p.pack_str(x.function)
    p.pack_int(x.peer)
    p.pack_object(x.qp)
    p.pack_object(x.resources)
    p.pack_object(x.input_quality)
    p.pack_object(x.output_quality)
    p.pack_int(x.n_inputs)
    p.pack_float(x.bandwidth_factor)


def _unpack_cspec(u: _Unpacker) -> ComponentSpec:
    read = u.read_value
    return ComponentSpec(
        read(), read(), read(), read(), read(), read(), read(), read(), read()
    )


_register(
    "cspec",
    ComponentSpec,
    lambda x: {
        "component_id": x.component_id,
        "function": x.function,
        "peer": x.peer,
        "qp": x.qp,
        "resources": x.resources,
        "input_quality": x.input_quality,
        "output_quality": x.output_quality,
        "n_inputs": x.n_inputs,
        "bandwidth_factor": x.bandwidth_factor,
    },
    lambda p: ComponentSpec(**p),
    pack=_pack_cspec,
    unpack=_unpack_cspec,
)


def _pack_fgraph(p: _Packer, x: FunctionGraph) -> None:
    p.pack_value(list(x.functions))
    p.pack_value(sorted([a, b] for a, b in x.edges))
    p.pack_value(sorted(sorted(pair) for pair in x.commutations))


def _unpack_fgraph(u: _Unpacker) -> FunctionGraph:
    functions = tuple(u.read_value())
    edges = frozenset((a, b) for a, b in u.read_value())
    commutations = frozenset(frozenset(pair) for pair in u.read_value())
    # trusted: the plain constructor skips from_edges' validate() pass —
    # only graphs that already passed it are ever encoded
    return FunctionGraph(functions=functions, edges=edges, commutations=commutations)


_register(
    "fgraph",
    FunctionGraph,
    lambda x: {
        "functions": list(x.functions),
        "edges": sorted([a, b] for a, b in x.edges),
        "commutations": sorted(sorted(pair) for pair in x.commutations),
    },
    lambda p: FunctionGraph.from_edges(
        p["functions"],
        [(a, b) for a, b in p["edges"]],
        [(a, b) for a, b in p["commutations"]],
    ),
    pack=_pack_fgraph,
    unpack=_unpack_fgraph,
)


def _pack_request(p: _Packer, x: CompositeRequest) -> None:
    p.pack_int(x.request_id)
    p.pack_object(x.function_graph)
    p.pack_object(x.qos)
    p.pack_int(x.source_peer)
    p.pack_int(x.dest_peer)
    p.pack_float(x.bandwidth)
    p.pack_float(x.failure_req)
    p.pack_float(x.duration)
    p.pack_float(x.priority)


def _unpack_request(u: _Unpacker) -> CompositeRequest:
    read = u.read_value
    return _new_with_dict(
        CompositeRequest,
        {
            "request_id": read(),
            "function_graph": read(),
            "qos": read(),
            "source_peer": read(),
            "dest_peer": read(),
            "bandwidth": read(),
            "failure_req": read(),
            "duration": read(),
            "priority": read(),
        },
    )


_register(
    "request",
    CompositeRequest,
    lambda x: {
        "request_id": x.request_id,
        "function_graph": x.function_graph,
        "qos": x.qos,
        "source_peer": x.source_peer,
        "dest_peer": x.dest_peer,
        "bandwidth": x.bandwidth,
        "failure_req": x.failure_req,
        "duration": x.duration,
        "priority": x.priority,
    },
    lambda p: CompositeRequest(**p),
    pack=_pack_request,
    unpack=_unpack_request,
)


def _pack_sgraph(p: _Packer, x: ServiceGraph) -> None:
    p.pack_object(x.pattern)
    p.pack_value(x.assignment)
    p.pack_int(x.source_peer)
    p.pack_int(x.dest_peer)
    p.pack_float(x.base_bandwidth)


def _unpack_sgraph(u: _Unpacker) -> ServiceGraph:
    read = u.read_value
    return _new_with_dict(
        ServiceGraph,
        {
            "pattern": read(),
            "assignment": read(),
            "source_peer": read(),
            "dest_peer": read(),
            "base_bandwidth": read(),
        },
    )


_register(
    "sgraph",
    ServiceGraph,
    lambda x: {
        "pattern": x.pattern,
        "assignment": dict(x.assignment),
        "source_peer": x.source_peer,
        "dest_peer": x.dest_peer,
        "base_bandwidth": x.base_bandwidth,
    },
    lambda p: ServiceGraph(**p),
    pack=_pack_sgraph,
    unpack=_unpack_sgraph,
)


def _pack_probe(p: _Packer, x: Probe) -> None:
    p.pack_int(x.probe_id)
    p.pack_object(x.request)
    p.pack_object(x.graph)
    p.pack_value(sorted(sorted(pair) for pair in x.applied_swaps))
    p.pack_value(x.assignment)
    p.pack_value(x.branch)
    p.pack_int(x.current_peer)
    p.pack_object(x.qos)
    p.pack_int(x.budget)
    p.pack_float(x.out_bandwidth)
    p.pack_float(x.elapsed)
    p.pack_int(x.hops)


def _unpack_probe(u: _Unpacker) -> Probe:
    read = u.read_value
    probe = object.__new__(Probe)
    _OSET(probe, "probe_id", read())
    _OSET(probe, "request", read())
    _OSET(probe, "graph", read())
    _OSET(probe, "applied_swaps", frozenset(frozenset(pair) for pair in read()))
    _OSET(probe, "assignment", read())
    _OSET(probe, "branch", tuple(read()))
    _OSET(probe, "current_peer", read())
    _OSET(probe, "qos", read())
    _OSET(probe, "budget", read())
    _OSET(probe, "out_bandwidth", read())
    _OSET(probe, "elapsed", read())
    _OSET(probe, "hops", read())
    _OSET(probe, "_dedup", None)
    return probe


_register(
    "probe",
    Probe,
    lambda x: {
        "probe_id": x.probe_id,
        "request": x.request,
        "graph": x.graph,
        "applied_swaps": sorted(sorted(pair) for pair in x.applied_swaps),
        "assignment": dict(x.assignment),
        "branch": list(x.branch),
        "current_peer": x.current_peer,
        "qos": x.qos,
        "budget": x.budget,
        "out_bandwidth": x.out_bandwidth,
        "elapsed": x.elapsed,
        "hops": x.hops,
    },
    lambda p: Probe(
        probe_id=p["probe_id"],
        request=p["request"],
        graph=p["graph"],
        applied_swaps=frozenset(frozenset(pair) for pair in p["applied_swaps"]),
        assignment=p["assignment"],
        branch=tuple(p["branch"]),
        current_peer=p["current_peer"],
        qos=p["qos"],
        budget=p["budget"],
        out_bandwidth=p["out_bandwidth"],
        elapsed=p["elapsed"],
        hops=p["hops"],
    ),
    pack=_pack_probe,
    unpack=_unpack_probe,
)


# ----------------------------------------------------------------------
# wire messages (session setup / ack / maintenance)
# ----------------------------------------------------------------------
def _tokens_tuple(tokens) -> Tuple[Tuple, ...]:
    return tuple(tuple(t) for t in tokens)


def _message(cls: Type) -> Type:
    """Register a message dataclass with shallow field-wise encoding.

    The v2 layout packs the field *values* in declared order — both ends
    share the schema, so field names never cross the wire; decode rebuilds
    through the dataclass constructor (cheap: message ``__post_init__``
    only normalizes container types).
    """
    names = [f.name for f in dataclasses.fields(cls)]

    def pack(p: _Packer, m, _names=names) -> None:
        for n in _names:
            p.pack_value(getattr(m, n))

    def unpack(u: _Unpacker, _cls=cls, _names=names):
        return _cls(**{n: u.read_value() for n in _names})

    _register(
        "msg." + cls.__name__,
        cls,
        lambda m, names=names: {n: getattr(m, n) for n in names},
        lambda p, cls=cls: cls(**p),
        pack=pack,
        unpack=unpack,
    )
    return cls


@_message
@dataclass(frozen=True)
class ComposeBegin:
    """Source → destination: open a probe collection window for a request."""

    request_id: int
    request: CompositeRequest
    budget: int
    confirm: bool


@_message
@dataclass(frozen=True)
class DiscoveryReport:
    """Source → destination: the root expansion's discovery RTT (phase split)."""

    request_id: int
    rtt: float


@_message
@dataclass(frozen=True)
class ProbeTransfer:
    """Peer → peer: one child probe dispatch (Step 2.4 → Step 2.1).

    Carries the parent probe plus the chosen ``(function, component)``
    and the effective pattern so the *receiving* peer performs admission
    (QoS check + soft allocation) exactly as ``BCP._admit`` does.
    ``credit`` is this probe's share of the request's termination credit
    (splits on fan-out, returns to the destination on arrival/prune/loss).
    """

    request_id: int
    parent: Probe
    function: str
    component: ServiceMetadata
    graph: FunctionGraph
    applied: Tuple[Tuple[str, str], ...]
    budget: int
    lookup_rtt: float
    credit: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "applied", tuple(tuple(p) for p in self.applied))


@_message
@dataclass(frozen=True)
class FinalProbe:
    """Last-hop peer → destination: a branch-complete probe arrives."""

    request_id: int
    probe: Probe
    credit: Fraction


@_message
@dataclass(frozen=True)
class CreditReturn:
    """Any peer → destination: credit whose probe will not arrive."""

    request_id: int
    credit: Fraction
    reason: str


@_message
@dataclass(frozen=True)
class ReservationReport:
    """Admitting peer → destination: fresh soft reservations' demands.

    Distributed mode only.  ``peers`` is ``((peer, rtype, amount), ...)``
    and ``links`` is ``((u, v, bandwidth), ...)``; the destination
    accumulates them per request so ψλ selection sees the whole wave's
    load exactly as the shared-pool engines do.  The sender awaits the
    ack *before* forwarding the probe's credit anywhere, so the
    collection window cannot close with a report still in flight.
    """

    request_id: int
    peers: Tuple[Tuple[int, str, float], ...]
    links: Tuple[Tuple[int, int, float], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "peers", _tokens_tuple(self.peers))
        object.__setattr__(self, "links", _tokens_tuple(self.links))


@_message
@dataclass(frozen=True)
class SessionConfirm:
    """Destination → path peers: setup ack confirming soft reservations."""

    request_id: int
    tokens: Tuple[Tuple, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "tokens", _tokens_tuple(self.tokens))


@_message
@dataclass(frozen=True)
class SessionRelease:
    """Destination → all peers: drop this request's soft state (minus keep)."""

    request_id: int
    keep: Tuple[Tuple, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "keep", _tokens_tuple(self.keep))


@_message
@dataclass(frozen=True)
class ComposeResult:
    """Destination → source: the composition outcome."""

    request_id: int
    success: bool
    graph: Optional[ServiceGraph]
    qos: Optional[QoSVector]
    cost: float
    failure_reason: Optional[str]
    probes_sent: int
    candidates_examined: int
    setup_time: float
    phases: Dict[str, float] = field(default_factory=dict)
    session_tokens: Tuple[Tuple, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "session_tokens", _tokens_tuple(self.session_tokens))


@_message
@dataclass(frozen=True)
class Busy:
    """Destination → source, inside the :class:`ComposeBegin` reply:
    the request was refused by admission control.

    Never a request frame of its own — it rides the begin RPC's response
    envelope (booked as ``net_ack``), so a shed request learns its fate
    in exactly one round trip and holds no state anywhere.  ``reason``
    names the exhausted limit (``"sessions"``), ``inflight`` the
    refusing peer's concurrent load at rejection time."""

    request_id: int
    reason: str
    inflight: int


@_message
@dataclass(frozen=True)
class MaintenancePing:
    """Source → session peers: periodic liveness probe for an active session."""

    request_id: int
    seq: int


@_message
@dataclass(frozen=True)
class RegisterComponent:
    """Hosting peer → directory owner: store a component's meta-data.

    In distributed mode the receiver holds the row in its own
    :class:`~repro.net.directory.DirectorySlice`; ``registered_at`` is
    the registrant's clock so replicas stamp identical meta-data."""

    spec: ComponentSpec
    registered_at: float = 0.0


@_message
@dataclass(frozen=True)
class RegisterBatch:
    """Hosting peer → directory replica: store many rows in one frame.

    Boot-time registration ships every component a registrant owes one
    target as a single frame instead of one ``RegisterComponent`` per
    spec.  The reply's ``stale`` map reports content-*changing* rows
    back to the registrant — ``{function: [version, [holder peers]]}``
    — so the registrant can invalidate exactly the peers that may cache
    the old rows (see :class:`ReplicaInvalidate`)."""

    specs: Tuple[ComponentSpec, ...]
    registered_at: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))


@_message
@dataclass(frozen=True)
class LookupRequest:
    """Querying peer → directory owner: a function's duplicate list.

    The reply carries the owner slice's ``ServiceMetadata`` rows; the
    querier computes the lookup RTT itself from the DHT route it took
    to find the owner.  With the directory tier enabled the reply also
    stamps the key's content ``version`` and piggybacks the slice's
    Bloom summary (``bloom``) for the querier's negative cache."""

    function: str
    origin_peer: int


@_message
@dataclass(frozen=True)
class ReplicatePush:
    """Hot key's holder → extended ring successors: replicate the rows.

    Sent when a key's decayed remote-serve rate crosses the configured
    hotness threshold: the peers just past the base replica set store
    the rows as a *replica tier* (newest ``version`` wins) and serve
    their own lookups locally thereafter."""

    function: str
    rows: Tuple[ServiceMetadata, ...]
    version: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", tuple(self.rows))


@_message
@dataclass(frozen=True)
class ReplicaInvalidate:
    """Registrant → stale holders: a function's rows changed.

    Fan-out sent (and awaited) by ``register_components`` after a
    content-changing re-registration, to every peer the directory
    replicas report as a possible stale holder: recipients drop their
    cached entry and replica rows for ``function`` and the Bloom
    summaries covering its key, so the next lookup re-resolves.
    ``version`` is the key's new content version."""

    function: str
    version: int


@_message
@dataclass(frozen=True)
class PathProbe:
    """Measurement plane, prober → overlay neighbour: active RTT probe.

    ``sent_at`` is the prober's monotonic clock at transmission, echoed
    back in the :class:`ProbeAck` so the prober prices the round-trip
    without keeping a pending-probe table; ``seq`` distinguishes probes
    from one origin (and keeps retransmission dedup well-defined even
    though probes never retry).  Charged to ``net_measure``."""

    origin: int
    seq: int
    sent_at: float


@_message
@dataclass(frozen=True)
class ProbeAck:
    """Measurement plane, neighbour → prober: :class:`PathProbe` echo.

    Travels inside the RPC response envelope (booked as ``net_ack``,
    like every reply frame).  ``echo`` returns the probe's ``sent_at``
    verbatim."""

    seq: int
    echo: float


# ----------------------------------------------------------------------
# hot-message specializations
# ----------------------------------------------------------------------
def _specialize(cls: Type, pack: Callable, unpack: Callable) -> None:
    """Swap a registered type's generic v2 layout for a dedicated one."""
    tid = _BIN_IDS[cls]
    _BIN_PACKERS[tid] = pack
    _BIN_UNPACKERS[tid] = unpack


def _pack_probe_transfer(p: _Packer, m: ProbeTransfer) -> None:
    p.pack_int(m.request_id)
    p.pack_object(m.parent)
    p.pack_str(m.function)
    p.pack_object(m.component)
    p.pack_object(m.graph)
    p.pack_value(m.applied)
    p.pack_int(m.budget)
    p.pack_float(m.lookup_rtt)
    p.pack_object(m.credit)


def _unpack_probe_transfer(u: _Unpacker) -> ProbeTransfer:
    read = u.read_value
    # trusted decode skips __post_init__: the tuple normalization it
    # exists for is done right here
    return _new_with_dict(
        ProbeTransfer,
        {
            "request_id": read(),
            "parent": read(),
            "function": read(),
            "component": read(),
            "graph": read(),
            "applied": tuple(tuple(pair) for pair in read()),
            "budget": read(),
            "lookup_rtt": read(),
            "credit": read(),
        },
    )


# ProbeTransfer is by far the most frequent frame on the wire (one per
# probe hop), so it alone earns a hand-rolled layout
_specialize(ProbeTransfer, _pack_probe_transfer, _unpack_probe_transfer)


def _blob_cached(cls: Type) -> None:
    """Encode ``cls`` as a content-addressed blob (see ``pack_object``)."""
    _BIN_BLOB[_BIN_IDS[cls]] = True


# session-constant immutable objects that recur in every probe and
# discovery frame: worth the 6-byte blob header to encode and decode
# each of them once per process instead of once per frame
_blob_cached(CompositeRequest)
_blob_cached(FunctionGraph)
_blob_cached(ServiceMetadata)
