"""Request/response messaging with retries, backoff and idempotent dedup.

Every protocol exchange in the live runtime is an acked RPC: the sender
retries on timeout with exponential backoff + seeded jitter, and the
receiver deduplicates by ``(src, incarnation, msg_id)`` — a retried
request re-sends the cached reply instead of re-invoking the handler, so
handlers observe each logical message exactly once.  (Application-level
dedup — probes keyed on :meth:`Probe.dedup_key` — sits one layer up in
:class:`~repro.net.peer.PeerDaemon`, backed by :class:`DedupCache`.)

The *incarnation* is a per-process nonce carried in every request
envelope (``"inc"``) and echoed in its response.  Message ids restart
from 1 when an endpoint restarts, so without the nonce a reborn peer
reusing ``msg_id`` values would be served stale cached replies recorded
for its previous life; responses bearing a foreign incarnation are
likewise dropped instead of resolving the wrong in-flight call.  Cached
replies additionally age out after ``reply_ttl`` seconds, so the cache
cannot serve arbitrarily old state even within one incarnation.
"""

from __future__ import annotations

import asyncio
import itertools
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Dict, Hashable, Optional, Tuple, Type

from ..sim.rng import as_generator
from .transport import TransportError

__all__ = [
    "RpcError",
    "RpcTimeout",
    "RpcFailure",
    "RetryPolicy",
    "RpcEndpoint",
    "DedupCache",
]


class RpcError(RuntimeError):
    """A call failed for a non-timeout reason (e.g. remote handler error)."""


class RpcTimeout(RpcError):
    """All attempts of a call timed out or found the peer unreachable."""


@dataclass(frozen=True)
class RpcFailure:
    """Structured record of a call that exhausted its retries.

    Emitted through :attr:`RpcEndpoint.on_failure` just before the
    :class:`RpcTimeout` raises, so failure scenarios (dead peers, lossy
    links) are inspectable as data — per destination peer, message type
    and attempt count — rather than only as stringified exceptions."""

    peer: int  # destination peer id
    method: str  # message class name
    attempts: int
    error: str


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries: ``retries`` re-sends after the first attempt, each
    preceded by ``backoff * factor**(attempt-1)`` seconds of sleep, scaled
    by up to ``1 + jitter`` (uniform, from the endpoint's seeded RNG)."""

    timeout: float = 2.0
    retries: int = 3
    backoff: float = 0.05
    factor: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.timeout <= 0 or self.retries < 0:
            raise ValueError("timeout must be > 0 and retries >= 0")
        if self.backoff < 0 or self.factor < 1.0 or self.jitter < 0:
            raise ValueError("need backoff >= 0, factor >= 1, jitter >= 0")


class DedupCache:
    """A bounded seen-set with FIFO eviction (insertion order)."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._seen: "OrderedDict[Hashable, None]" = OrderedDict()

    def seen(self, key: Hashable) -> bool:
        """Record ``key``; True iff it was already present."""
        if key in self._seen:
            return True
        self._seen[key] = None
        if len(self._seen) > self.capacity:
            self._seen.popitem(last=False)
        return False

    def __contains__(self, key: Hashable) -> bool:
        return key in self._seen

    def __len__(self) -> int:
        return len(self._seen)


_INFLIGHT = object()  # reply-cache sentinel: handler still running


class RpcEndpoint:
    """One peer's message port: typed handlers + outbound calls.

    Handlers are registered per message *class* (``endpoint.on(ProbeTransfer,
    fn)``) and return the reply payload (a JSON-able dict, possibly with
    typed values) or ``None`` for a bare ack.
    """

    def __init__(
        self,
        transport,
        peer_id: int,
        retry: Optional[RetryPolicy] = None,
        seed: int = 0,
        reply_cache: int = 8192,
        reply_ttl: float = 120.0,
        clock: Optional[Callable[[], float]] = None,
        incarnation: Optional[str] = None,
        inflight_limit: int = 0,
    ) -> None:
        self.transport = transport
        self.peer_id = peer_id
        self.retry = retry or RetryPolicy()
        if reply_ttl <= 0:
            raise ValueError("reply_ttl must be positive")
        # the per-process nonce: a restarted endpoint gets a fresh one,
        # so its msg_id counter restarting from 1 cannot collide with
        # reply-cache entries recorded for the previous incarnation
        self.incarnation = incarnation if incarnation is not None else uuid.uuid4().hex[:16]
        self.reply_ttl = reply_ttl
        self._clock = clock if clock is not None else time.monotonic
        self._rng = as_generator(seed)
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._handlers: Dict[Type, Callable[[int, Any], Awaitable[Optional[dict]]]] = {}
        # (src, incarnation, msg_id) -> (expires_at | None, reply)
        self._replies: "OrderedDict[tuple, Tuple[Optional[float], Any]]" = OrderedDict()
        self._reply_cache = reply_cache
        self.calls_sent = 0
        self.retries_performed = 0
        # measurement hooks (assigned by the daemon, never required):
        # on_rtt(dst, rtt_seconds, method_name) fires for first-attempt
        # successes only — Karn's algorithm: a retransmitted exchange's
        # RTT is ambiguous, so retried calls are never sampled.
        # on_failure(RpcFailure) fires once per call that exhausts its
        # retries, just before RpcTimeout raises.
        self.on_rtt: Optional[Callable[[int, float, str], None]] = None
        self.on_failure: Optional[Callable[[RpcFailure], None]] = None
        # fail-fast hook (assigned by the daemon, never required):
        # peer_down(dst) -> True aborts a call's remaining attempts
        # immediately instead of burning the full retry/timeout budget
        # against a peer already known to be dead.  The call still fails
        # with the same structured RpcFailure/RpcTimeout pair; only the
        # wasted wait disappears.  Callers that *measure* liveness pass
        # ignore_down=True (recovery probes must reach a marked-down
        # peer, or the path could never be marked back up).
        self.peer_down: Optional[Callable[[int], bool]] = None
        # outbound throttle: with inflight_limit > 0 at most that many
        # calls from this endpoint are in flight at once (admission
        # control's RPC-level pressure-relief; 0 = unlimited)
        if inflight_limit < 0:
            raise ValueError("inflight_limit must be >= 0")
        self._inflight_limit = inflight_limit
        self._gate: Optional[asyncio.Semaphore] = (
            asyncio.Semaphore(inflight_limit) if inflight_limit else None
        )
        transport.register(peer_id, self._on_envelope)

    def on(self, msg_type: Type, handler: Callable[[int, Any], Awaitable[Optional[dict]]]) -> None:
        self._handlers[msg_type] = handler

    # ------------------------------------------------------------------
    # outbound
    # ------------------------------------------------------------------
    async def call(
        self,
        dst: int,
        message: Any,
        retry: Optional[RetryPolicy] = None,
        ignore_down: bool = False,
    ) -> dict:
        """Send ``message`` to ``dst`` and await its reply payload.

        ``ignore_down=True`` bypasses the :attr:`peer_down` fail-fast
        check — for callers whose whole job is to discover that a
        marked-down peer came back (the measurement plane's recovery
        probes)."""
        if self._gate is None:
            return await self._call(dst, message, retry, ignore_down)
        async with self._gate:
            return await self._call(dst, message, retry, ignore_down)

    async def _call(
        self,
        dst: int,
        message: Any,
        retry: Optional[RetryPolicy],
        ignore_down: bool,
    ) -> dict:
        policy = retry or self.retry
        msg_id = next(self._ids)
        # note there is no "dst" field: the transport connection already
        # identifies the receiver, so carrying it would be dead bytes on
        # every frame (receivers never read it)
        envelope = {
            "kind": "req",
            "id": msg_id,
            "src": self.peer_id,
            "inc": self.incarnation,
            "body": message,
        }
        self.calls_sent += 1
        loop = asyncio.get_running_loop()
        last_error = "timeout"
        attempts = 0
        for attempt in range(policy.retries + 1):
            if (
                not ignore_down
                and self.peer_down is not None
                and self.peer_down(dst)
            ):
                # the peer is already known dead: abort the remaining
                # attempts instead of waiting out their timeouts — the
                # caller gets the same structured failure, minus the burn
                last_error = f"peer {dst} marked down"
                break
            if attempt:
                self.retries_performed += 1
                delay = policy.backoff * policy.factor ** (attempt - 1)
                delay *= 1.0 + policy.jitter * float(self._rng.random())
                await asyncio.sleep(delay)
            attempts += 1
            future: asyncio.Future = loop.create_future()
            self._pending[msg_id] = future
            sent_at = loop.time()
            try:
                await self.transport.send(self.peer_id, dst, envelope)
            except TransportError as exc:
                self._pending.pop(msg_id, None)
                last_error = str(exc)
                continue
            try:
                reply = await asyncio.wait_for(future, policy.timeout)
            except asyncio.TimeoutError:
                last_error = f"no reply within {policy.timeout}s"
            else:
                if attempt == 0 and self.on_rtt is not None:
                    # the sample window opens before send(): queueing and
                    # coalescing delays are genuine sojourn time the next
                    # caller will also pay
                    self.on_rtt(
                        dst, loop.time() - sent_at, type(message).__name__
                    )
                return reply
            finally:
                self._pending.pop(msg_id, None)
        if self.on_failure is not None:
            self.on_failure(
                RpcFailure(
                    peer=dst,
                    method=type(message).__name__,
                    attempts=attempts,
                    error=last_error,
                )
            )
        raise RpcTimeout(
            f"{type(message).__name__} {self.peer_id}->{dst} failed after "
            f"{attempts} attempts: {last_error}"
        )

    # ------------------------------------------------------------------
    # inbound
    # ------------------------------------------------------------------
    async def _on_envelope(self, envelope: dict) -> None:
        kind = envelope.get("kind")
        if kind == "res":
            res_inc = envelope.get("inc")
            if res_inc is not None and res_inc != self.incarnation:
                return  # a reply addressed to a previous life of this peer
            future = self._pending.get(envelope["id"])
            if future is not None and not future.done():
                future.set_result(envelope.get("body"))
            return
        if kind != "req":
            return  # unknown envelope kinds are dropped, not fatal
        src, msg_id = envelope["src"], envelope["id"]
        req_inc = envelope.get("inc")
        key = (src, req_inc, msg_id)
        cached = self._cached_reply(key)
        if cached is _INFLIGHT:
            return  # duplicate while the first delivery is still processing
        if cached is not None:
            await self._respond(src, msg_id, cached, req_inc)
            return
        self._cache_reply(key, _INFLIGHT)
        body = envelope.get("body")
        handler = self._handlers.get(type(body))
        if handler is None:
            reply: dict = {"error": f"no handler for {type(body).__name__}"}
        else:
            try:
                reply = await handler(src, body) or {"ok": True}
            except Exception as exc:  # a handler bug must not kill the daemon
                reply = {"error": f"{type(exc).__name__}: {exc}"}
        self._cache_reply(key, reply)
        await self._respond(src, msg_id, reply, req_inc)

    def _cached_reply(self, key: tuple) -> Any:
        entry = self._replies.get(key)
        if entry is None:
            return None
        expires, value = entry
        if expires is not None and expires <= self._clock():
            del self._replies[key]
            return None
        return value

    def _cache_reply(self, key: tuple, value: Any) -> None:
        # in-flight markers never expire on their own: the handler's
        # completion always overwrites them with the real (TTL'd) reply
        expires = None if value is _INFLIGHT else self._clock() + self.reply_ttl
        self._replies[key] = (expires, value)
        self._replies.move_to_end(key)
        now = self._clock()
        while self._replies:  # TTL eviction from the stale end
            _, (head_exp, _head_val) = next(iter(self._replies.items()))
            if head_exp is None or head_exp > now:
                break
            self._replies.popitem(last=False)
        while len(self._replies) > self._reply_cache:
            self._replies.popitem(last=False)

    async def _respond(
        self, dst: int, msg_id: int, body: Any, req_inc: Optional[str] = None
    ) -> None:
        envelope = {"kind": "res", "id": msg_id, "src": self.peer_id, "body": body}
        if req_inc is not None:
            envelope["inc"] = req_inc  # echo the requester's incarnation
        try:
            await self.transport.send(self.peer_id, dst, envelope)
        except TransportError:
            pass  # the caller's retry will re-request the cached reply
