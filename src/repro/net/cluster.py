"""Boot a live SpiderNet cluster on localhost.

:class:`LiveCluster` builds the same environment as the simulated
testbed (overlay, resource pool, DHT-backed registry, components), then
hosts every overlay peer as a :class:`~repro.net.peer.PeerDaemon` on a
shared transport — loopback queues or real TCP sockets — and runs
compositions end-to-end over the wire:

.. code-block:: python

    async with LiveCluster(ClusterConfig(n_peers=10)) as cluster:
        request = cluster.scenario.requests.next_request()
        result = await cluster.compose(request)

Two state models are supported.  **Distributed mode** (the default)
gives every daemon its own resource pool and its own
:class:`~repro.net.directory.DirectorySlice`: component meta-data lives
with the peer owning ``hash(function)`` in the DHT id space, discovery
and registration travel as DHT-routed RPCs, and soft-state reservations
are owned by the hosting peer — there is no shared ground truth, and a
:class:`~repro.net.guard.SharedStateGuard` seals the shared registry,
pool and DHT storage while the cluster runs to *prove* it.  **Shared
mode** (``distributed=False``) keeps the original arrangement — one
shared overlay, pool and registry, with daemons as separate actors over
shared ground truth — and remains the apples-to-apples baseline for the
sim-parity harness.  In both modes every protocol step crosses the
transport as encoded frames, and the shared
:class:`~repro.net.accounting.LedgerTap` wraps the SpiderNet ledger, so
sim-category books (``bcp_probe`` …) and live wire books (``net_*``)
land in one place.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from ..core.bcp import BCP, BCPConfig, CompositionResult
from ..core.request import CompositeRequest
from ..workload.generator import RequestConfig
from ..workload.scenarios import Scenario, simulation_testbed
from .accounting import LedgerTap
from .admission import AdmissionConfig, LoadGuard
from .directory import DirectorySlice, DirectoryTierConfig
from .guard import SharedStateGuard
from .measurement import MeasuredOverlayView, MeasurementConfig, MeasurementPlane
from .peer import PeerDaemon
from .codec import WIRE_VERSION_BINARY
from .rpc import RetryPolicy, RpcEndpoint, RpcFailure
from .transport import LoopbackTransport, TcpTransport

__all__ = ["ClusterConfig", "LiveCluster"]


@dataclass
class ClusterConfig:
    """Knobs for a localhost cluster (defaults are smoke-test sized)."""

    n_peers: int = 5
    n_functions: int = 6
    n_ip: int = 0  # 0 -> derived from n_peers
    transport: str = "loopback"  # "loopback" | "tcp"
    latency: Union[float, Callable[[int, int], float]] = 0.0  # emulated one-way delay
    loss: float = 0.0  # loopback frame-loss probability
    port_base: Optional[int] = None  # tcp: fixed ports; None -> OS-assigned
    seed: int = 0
    overlay_kind: str = "mesh"
    overlay_degree: int = 4
    components_per_peer: Tuple[int, int] = (1, 3)
    bcp_config: Optional[BCPConfig] = None
    request_config: Optional[RequestConfig] = None
    capacity_scale: float = 1.0
    soft_timeout: float = 30.0  # reservation expiry (paper's soft state)
    collect_wall_timeout: float = 10.0  # dest fallback when credit is lost
    probe_retry: Optional[RetryPolicy] = None
    control_retry: Optional[RetryPolicy] = None
    maint_interval: Optional[float] = None  # source-side session pings; None = off
    # True: DHT-routed discovery + per-peer pools, shared state sealed.
    # False: the original shared-ground-truth arrangement (sim parity).
    distributed: bool = True
    # composition strategy by registry name (repro.core.strategies).
    # "bcp" (the default) keeps the wire-probing path bit-for-bit
    # untouched; any other name composes at the source daemon over the
    # cluster's global view, which requires shared-state mode
    # (distributed=False) — distributed mode seals exactly the state a
    # global-view strategy must read.
    composer: str = "bcp"
    # directory acceleration tier (distributed mode only): None -> the
    # tier's defaults (enabled); DirectoryTierConfig(enabled=False)
    # reproduces the pre-tier per-lookup routing exactly
    directory_tier: Optional[DirectoryTierConfig] = None
    # topology measurement plane: None -> the plane's defaults (enabled:
    # active probing + passive RTT + dead-path detection, with adaptive
    # routing in distributed mode); MeasurementConfig(enabled=False)
    # reproduces the pre-measurement behaviour exactly
    measurement: Optional[MeasurementConfig] = None
    # wire fast path: preferred codec version (TCP negotiates down to
    # what the remote end speaks; 1 forces the JSON fallback everywhere)
    wire_version: int = WIRE_VERSION_BINARY
    # batch frames per connection, one drain() per flush window
    coalesce_writes: bool = True
    flush_interval: float = 0.0  # tcp: extra dally per flush window (s)
    # per-peer overload survival (admission + shedding + RPC throttle):
    # None -> no guard at all; AdmissionConfig(enabled=False) -> guard
    # present but observing only.  Either way the protocol behaviour is
    # identical to the pre-admission build until a limit is exceeded.
    admission: Optional[AdmissionConfig] = None
    # scale-out sharding: the subset of overlay peers hosted by THIS
    # process (None = host all of them, the single-process default).
    # A proper subset requires distributed mode plus tcp + port_base,
    # so remote peers sit at computable (host, port_base + peer)
    # addresses in sibling processes.
    hosted: Optional[Tuple[int, ...]] = None


class LiveCluster:
    """N live peers on one transport, sharing a built scenario."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        scenario: Optional[Scenario] = None,
        trace=None,
    ) -> None:
        self.config = config or ClusterConfig()
        cfg = self.config
        if scenario is None:
            scenario = simulation_testbed(
                n_ip=cfg.n_ip or max(4 * cfg.n_peers, 64),
                n_peers=cfg.n_peers,
                n_functions=cfg.n_functions,
                overlay_kind=cfg.overlay_kind,
                overlay_degree=cfg.overlay_degree,
                components_per_peer=cfg.components_per_peer,
                request_config=cfg.request_config,
                bcp_config=cfg.bcp_config,
                capacity_scale=cfg.capacity_scale,
                seed=cfg.seed,
            )
        self.scenario = scenario
        self.net = scenario.net
        self.trace = trace
        # one tap over the SpiderNet ledger: BCP._final_hop / registry
        # charges and the live wire books share a single MessageLedger
        self.tap = LedgerTap(self.net.ledger)
        self._counters: Dict[int, int] = {}  # rid -> probes sent, all daemons
        self._t0 = 0.0
        if cfg.transport == "loopback":
            self.transport = LoopbackTransport(
                latency=cfg.latency, loss=cfg.loss, seed=cfg.seed, tap=self.tap.on_frame,
                wire_version=cfg.wire_version, coalesce=cfg.coalesce_writes,
            )
        elif cfg.transport == "tcp":
            self.transport = TcpTransport(
                port_base=cfg.port_base, tap=self.tap.on_frame,
                max_wire_version=cfg.wire_version, coalesce=cfg.coalesce_writes,
                flush_interval=cfg.flush_interval, latency=cfg.latency,
            )
        else:
            raise ValueError(f"unknown transport {cfg.transport!r} (loopback|tcp)")
        self.distributed = cfg.distributed
        self.dir_tier = (
            (cfg.directory_tier or DirectoryTierConfig()) if self.distributed else None
        )
        self.measure_cfg = cfg.measurement or MeasurementConfig()
        # distributed mode seals the shared registry/pool/DHT storage for
        # the cluster's lifetime: any read through them is a bug, and the
        # guard records it (then raises) instead of letting it pass
        self.shared_guard = SharedStateGuard() if self.distributed else None
        self._ring = self.net.dht.ring_snapshot() if self.distributed else None
        self.composer_strategy = None
        if cfg.composer != "bcp":
            from ..core.strategies import StrategyContext, get_strategy

            strategy_cls = get_strategy(cfg.composer)  # raises on unknown name
            if strategy_cls.requires_global_view and self.distributed:
                raise ValueError(
                    f"composer {cfg.composer!r} needs a global registry/pool "
                    f"view and cannot run in distributed mode (shared state is "
                    f"sealed); use ClusterConfig(distributed=False)"
                )
            self.composer_strategy = strategy_cls.from_context(
                StrategyContext.from_spidernet(self.net)
            )
        all_peers = sorted(scenario.overlay.peers())
        if cfg.hosted is None:
            hosted = all_peers
        else:
            hosted = sorted({int(p) for p in cfg.hosted})
            unknown = [p for p in hosted if p not in set(all_peers)]
            if unknown:
                raise ValueError(f"hosted peers not in the overlay: {unknown}")
            if set(hosted) != set(all_peers):
                if not cfg.distributed:
                    raise ValueError("hosted shards require distributed mode")
                if cfg.transport != "tcp" or cfg.port_base is None:
                    raise ValueError(
                        "hosted shards require transport='tcp' with port_base "
                        "set, so sibling processes' peers have computable "
                        "addresses"
                    )
        self.hosted: Tuple[int, ...] = tuple(hosted)
        self.daemons: Dict[int, PeerDaemon] = {}
        for peer in hosted:
            self.daemons[peer] = self._build_daemon(peer)
        if set(hosted) != set(all_peers):
            # every non-hosted peer lives in a sibling process at a
            # deterministic address; dialers read this table directly
            assert isinstance(self.transport, TcpTransport)
            for peer in all_peers:
                if peer not in self.daemons:
                    self.transport.addresses.setdefault(
                        peer, (self.transport.host, cfg.port_base + peer)
                    )
        self._compose_tasks: Set[asyncio.Task] = set()
        self._started = False

    def _build_daemon(self, peer: int) -> PeerDaemon:
        """Wire one peer's endpoint, engine, and measurement plane."""
        cfg = self.config
        shared = self.net.bcp
        endpoint = RpcEndpoint(
            self.transport,
            peer,
            retry=cfg.control_retry,
            seed=cfg.seed + peer,
            inflight_limit=self._rpc_inflight_limit(),
        )
        measuring = self.measure_cfg.enabled
        view: Optional[MeasuredOverlayView] = None
        if self.distributed:
            # each daemon owns its soft state: a private (empty) pool
            # clone plus a private directory slice.  The registry
            # reference stays wired for API symmetry but is sealed.
            # With measurement on, the daemon's whole engine sits over
            # its MeasuredOverlayView: until the plane installs a
            # material delta the view delegates verbatim to the shared
            # static overlay, so selections are unchanged by default.
            overlay = shared.overlay
            if measuring and self.measure_cfg.adapt_routing:
                view = MeasuredOverlayView(shared.overlay)
                overlay = view
            bcp = BCP(
                overlay,
                shared.pool.clone_empty(overlay=overlay),
                shared.registry,
                config=shared.config,
                ledger=shared.ledger,
                peer_failure=shared.peer_failure,
                alive=shared.alive,
                rng=shared.rng,
                trust=shared.trust,
            )
            directory: Optional[DirectorySlice] = DirectorySlice()
        else:
            bcp, directory = shared, None
        plane: Optional[MeasurementPlane] = None
        if measuring:
            plane = MeasurementPlane(
                peer,
                shared.overlay,
                endpoint,
                self.measure_cfg,
                view=view,
                tap=self.tap,
                trace=self.trace,
                clock=self._clock,
            )
            if self.distributed:
                # candidates on downed paths are filtered at Step 2.3a
                # (shared mode keeps one global BCP, which must not be
                # narrowed by any single peer's connectivity)
                base_alive = bcp.alive
                bcp.alive = (
                    lambda p, _alive=base_alive, _plane=plane: _alive(p)
                    and not _plane.is_down(p)
                )
        return PeerDaemon(
            peer_id=peer,
            bcp=bcp,
            endpoint=endpoint,
            peers=sorted(self.scenario.overlay.peers()),
            counters=self._counters,
            tap=self.tap,
            trace=self.trace,
            clock=self._clock,
            soft_timeout=cfg.soft_timeout,
            collect_wall_timeout=cfg.collect_wall_timeout,
            probe_retry=cfg.probe_retry,
            control_retry=cfg.control_retry,
            maint_interval=cfg.maint_interval,
            directory=directory,
            ring=self._ring,
            dht=self.net.dht,
            dir_tier=self.dir_tier,
            measurement=plane,
            guard=self._make_guard(),
            composer=self.composer_strategy,
        )

    def _make_guard(self) -> Optional[LoadGuard]:
        """A fresh per-daemon guard (admission state is process-local)."""
        if self.config.admission is None:
            return None
        return LoadGuard(self.config.admission)

    def _rpc_inflight_limit(self) -> int:
        adm = self.config.admission
        return adm.rpc_max_inflight if adm is not None and adm.enabled else 0

    # ------------------------------------------------------------------
    def _clock(self) -> float:
        return time.monotonic() - self._t0

    @property
    def ledger(self):
        return self.net.ledger

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "LiveCluster":
        await self.start_transport()
        return await self.activate()

    async def start_transport(self) -> "LiveCluster":
        """Boot phase 1: bind the transport (TCP listeners come up, no
        frame is sent).  Split out so a multi-process launch can bring
        every shard's listeners up before any shard starts registering —
        boot registration is DHT-routed and may land on any process."""
        self._t0 = time.monotonic()
        await self.transport.start()
        return self

    async def activate(self) -> "LiveCluster":
        """Boot phase 2: seal shared state, register components, probe."""
        if self.shared_guard is not None:
            # seal *before* populating the directory: registration must
            # itself be wire-only for the no-shared-reads proof to hold
            self.shared_guard.seal(self.net.registry, self.net.pool, self.net.dht)
            await self._populate_directory()
        # active probing starts after the boot registration pass, so the
        # first measured cycles see steady-state traffic
        for daemon in self.daemons.values():
            if daemon.measurement is not None:
                daemon.measurement.start()
        self._started = True
        if self.trace is not None:
            self.trace.record(
                "cluster_started", time=0.0,
                peers=len(self.daemons), transport=self.config.transport,
            )
        return self

    async def _populate_directory(self) -> None:
        """Boot-time registration pass: every hosting daemon pushes its
        components to their DHT owners — one RegisterBatch per (registrant,
        owner) pair with the tier on, per-spec RegisterComponent frames
        with it off.  Registrants run concurrently: each row still only
        becomes visible through its owner's RPC reply, and at boot no
        peer holds cached state, so ordering between registrants is
        immaterial."""
        by_peer: Dict[int, list] = {}
        for spec in self.scenario.population:
            if spec.peer in self.daemons:  # hosted shard registers its own
                by_peer.setdefault(spec.peer, []).append(spec)
        await asyncio.gather(
            *(
                self.daemons[peer].register_components(by_peer[peer], now=0.0)
                for peer in sorted(by_peer)
            )
        )

    async def stop(self, grace: float = 0.1) -> None:
        """Tear the cluster down in dependency order.

        1. Measurement planes stop first — a probe fired after its
           daemon stopped would book a spurious failure.
        2. Pending compose sessions are aborted (their futures resolve
           to structured failures) and in-flight :meth:`compose` tasks
           get ``grace`` seconds to observe that before being cancelled.
        3. Daemons stop: wall/expiry timers cancelled, spawned protocol
           tasks drained.
        4. The transport closes last, so every step above may still use
           the wire.  Idempotent: a second ``stop()`` is a no-op.
        """
        if not self._started:
            return
        self._started = False  # reject new composes while tearing down
        for daemon in self.daemons.values():
            if daemon.measurement is not None:
                daemon.measurement.stop()
        for daemon in self.daemons.values():
            daemon.abort_pending("cluster stopping")
        tasks = [t for t in self._compose_tasks if not t.done()]
        if tasks:
            _, pending = await asyncio.wait(tasks, timeout=grace)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        for daemon in self.daemons.values():
            daemon.stop()
        for daemon in self.daemons.values():
            await daemon.drain()
        await self.transport.close()
        if self.shared_guard is not None:
            self.shared_guard.unseal()
        if self.trace is not None:
            self.trace.record("cluster_stopped", time=self._clock())

    async def __aenter__(self) -> "LiveCluster":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def compose(
        self,
        request: CompositeRequest,
        budget: Optional[int] = None,
        confirm: bool = True,
        timeout: Optional[float] = None,
    ) -> CompositionResult:
        """Run one composition from the request's source daemon."""
        if not self._started:
            raise RuntimeError("cluster not started")
        daemon = self.daemons.get(request.source_peer)
        if daemon is None:
            raise ValueError(f"no daemon hosts source peer {request.source_peer}")
        task = asyncio.ensure_future(
            daemon.start_compose(request, budget=budget, confirm=confirm, timeout=timeout)
        )
        self._compose_tasks.add(task)
        task.add_done_callback(self._compose_tasks.discard)
        try:
            return await asyncio.shield(task)
        except asyncio.CancelledError:
            if task.cancelled():
                # stop() tore the session down mid-flight: hand the
                # caller a structured failure, not a CancelledError
                result = CompositionResult(request=request, success=False)
                result.failure_reason = "cluster stopped"
                return result
            task.cancel()  # the *caller* was cancelled: propagate inward
            raise

    async def compose_many(
        self,
        requests,
        budget: Optional[int] = None,
        confirm: bool = True,
        timeout: Optional[float] = None,
    ) -> List[CompositionResult]:
        """Compose a batch sequentially (each sees the previous sessions' load)."""
        return [
            await self.compose(r, budget=budget, confirm=confirm, timeout=timeout)
            for r in requests
        ]

    async def compose_concurrent(
        self,
        requests,
        concurrency: int = 8,
        budget: Optional[int] = None,
        confirm: bool = True,
        timeout: Optional[float] = None,
    ) -> List[CompositionResult]:
        """Pipeline a batch: up to ``concurrency`` sessions overlap.

        Every piece of per-session daemon state — soft tokens, firm
        tokens, collection windows, credit, probe counters, pending
        results — is keyed by request id, so overlapping sessions stay
        isolated; overlap changes wall-clock time and resource
        contention (later admissions see earlier sessions' soft
        reservations, as concurrent arrivals would in a real overlay),
        never a session's accounting.  Results are returned in request
        order.  A failed compose surfaces as its raised exception after
        the whole batch settles, not as a torn gather.
        """
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        gate = asyncio.Semaphore(concurrency)

        async def one(request: CompositeRequest) -> CompositionResult:
            async with gate:
                return await self.compose(
                    request, budget=budget, confirm=confirm, timeout=timeout
                )

        results = await asyncio.gather(
            *(one(r) for r in requests), return_exceptions=True
        )
        for res in results:
            if isinstance(res, BaseException):
                raise res
        return list(results)

    def kill_peer(self, peer_id: int) -> None:
        """Crash a peer: its daemon stops and its transport goes dark.

        The registry is deliberately *not* told — stale entries keep
        routing probes at the dead peer, which is what exercises the
        RPC retry/backoff and credit-loss paths."""
        if peer_id not in self.daemons:
            raise ValueError(f"no such peer {peer_id}")
        self.daemons[peer_id].stop()
        # sessions the dead peer itself was sourcing can never finish;
        # resolve them now so their callers fail fast instead of timing out
        self.daemons[peer_id].abort_pending("peer killed")
        self.transport.kill(peer_id)
        if self.trace is not None:
            self.trace.record("peer_killed", time=self._clock(), peer=peer_id)

    async def revive_peer(self, peer_id: int) -> None:
        """Restart a killed peer: fresh endpoint incarnation, same engine.

        The replacement daemon keeps the old one's engine state (pool,
        directory slice, sessions are gone but capacity and stored rows
        survive the crash-restart, like a process coming back on the same
        host) while its RPC incarnation changes, so stale cached replies
        from its previous life cannot be replayed at it.  The measurement
        plane is rebound and wiped — a restarted process has no memory —
        and neighbours' recovery probes mark the path back up."""
        old = self.daemons.get(peer_id)
        if old is None:
            raise ValueError(f"no such peer {peer_id}")
        if not self.transport.is_killed(peer_id):
            raise RuntimeError(f"peer {peer_id} is not down")
        self.transport.unregister(peer_id)
        endpoint = RpcEndpoint(
            self.transport,
            peer_id,
            retry=self.config.control_retry,
            seed=self.config.seed + peer_id,
            inflight_limit=self._rpc_inflight_limit(),
        )
        await self.transport.revive(peer_id)
        plane = old.measurement
        if plane is not None:
            plane.rebind(endpoint)
        daemon = PeerDaemon(
            peer_id=peer_id,
            bcp=old.bcp,
            endpoint=endpoint,
            peers=old.peers,
            counters=self._counters,
            tap=self.tap,
            trace=self.trace,
            clock=self._clock,
            soft_timeout=self.config.soft_timeout,
            collect_wall_timeout=self.config.collect_wall_timeout,
            probe_retry=self.config.probe_retry,
            control_retry=self.config.control_retry,
            maint_interval=self.config.maint_interval,
            directory=old.directory,
            ring=self._ring,
            dht=self.net.dht,
            dir_tier=self.dir_tier,
            measurement=plane,
            guard=self._make_guard(),  # fresh: a restarted process forgets
        )
        self.daemons[peer_id] = daemon
        if plane is not None and self._started:
            plane.start()
        if self.trace is not None:
            self.trace.record("peer_revived", time=self._clock(), peer=peer_id)

    # ------------------------------------------------------------------
    # introspection (tests / CLI)
    # ------------------------------------------------------------------
    def soft_tokens(self) -> Dict[int, set]:
        """Outstanding soft reservations per live daemon (rid -> tokens)."""
        out: Dict[int, set] = {}
        for daemon in self.daemons.values():
            for rid, tokens in daemon._tokens.items():
                if tokens:
                    out.setdefault(rid, set()).update(tokens)
        return out

    def pool_tokens(self) -> Dict[int, List]:
        """Active allocation tokens per daemon pool (soft *and* firm).

        In shared mode every daemon reports the same shared pool; in
        distributed mode each entry is that peer's private pool — the
        union is the cluster-wide allocation state."""
        out: Dict[int, List] = {}
        for peer, daemon in sorted(self.daemons.items()):
            out[peer] = sorted(daemon.bcp.pool.active_tokens(), key=repr)
        return out

    def errors(self, include_rpc: bool = False) -> List[str]:
        """Daemon task failures — should be empty after a clean run.

        ``include_rpc=True`` appends the structured RPC retry-exhaustion
        records (peer id, method, attempts) as formatted entries.  They
        are opt-in because exhaustion against a dead peer is *expected*
        failure-path behaviour, not a daemon bug; the raw records are
        available from :meth:`rpc_failures`."""
        out = [e for d in self.daemons.values() for e in d.errors]
        if include_rpc:
            out.extend(
                f"rpc_exhausted peer={f.peer} method={f.method} "
                f"attempts={f.attempts}: {f.error}"
                for f in self.rpc_failures()
            )
        return out

    def rpc_failures(self) -> List[RpcFailure]:
        """Every RPC that exhausted its retries, across all daemons."""
        return [f for d in self.daemons.values() for f in d.rpc_failures]

    def measurement_stats(self) -> Dict[str, object]:
        """Aggregate measurement-plane health across daemons."""
        planes = [
            d.measurement for d in self.daemons.values() if d.measurement is not None
        ]
        out: Dict[str, object] = {
            "enabled": self.measure_cfg.enabled,
            "probes_sent": sum(p.probes_sent for p in planes),
            "probe_failures": sum(p.probe_failures for p in planes),
            "samples_active": sum(p.samples_active for p in planes),
            "samples_passive": sum(p.samples_passive for p in planes),
            "down_events": sum(p.down_events for p in planes),
            "up_events": sum(p.up_events for p in planes),
            "reprices": sum(p.reprices for p in planes),
            "router_rebuilds": sum(
                p.view.rebuilds for p in planes if p.view is not None
            ),
            "paths_down": {
                p.peer_id: p.down_paths for p in planes if p.down_paths
            },
        }
        return out

    def directory_stats(self) -> Dict[str, object]:
        """Aggregate directory-tier health across daemons (distributed).

        ``hit_rate`` is positive-cache hits over (hits + misses); Bloom
        negative hits are counted separately — they short-circuit absent
        functions, not repeats."""
        hits = sum(d.cache_hits for d in self.daemons.values())
        misses = sum(d.cache_misses for d in self.daemons.values())
        out: Dict[str, object] = {
            "cache_hits": hits,
            "cache_misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "neg_hits": sum(d.neg_hits for d in self.daemons.values()),
            "replica_serves": sum(d.replica_serves for d in self.daemons.values()),
            "slices": {},
        }
        slices: Dict[int, Dict[str, int]] = {}
        for peer, daemon in sorted(self.daemons.items()):
            if daemon.directory is not None:
                slices[peer] = daemon.directory.stats()
        out["slices"] = slices
        out["directory_serves"] = sum(s["serves"] for s in slices.values())
        out["directory_rows"] = sum(s["rows"] for s in slices.values())
        return out

    def admission_stats(self) -> Dict[str, object]:
        """Aggregate load-guard books across this process's daemons."""
        guards = [d.guard for d in self.daemons.values() if d.guard is not None]
        return {
            "enabled": any(g.config.enabled for g in guards),
            "sessions_admitted": sum(g.sessions_admitted for g in guards),
            "sessions_rejected": sum(g.sessions_rejected for g in guards),
            "sessions_inflight": sum(g.sessions_inflight for g in guards),
            "sessions_peak": max((g.sessions_peak for g in guards), default=0),
            "probes_shed": sum(g.probes_shed for g in guards),
            "budget_degrades": sum(g.budget_degrades for g in guards),
            "probes_peak": max((g.probes_peak for g in guards), default=0),
        }

    def rpc_stats(self) -> Dict[str, int]:
        calls = sum(d.endpoint.calls_sent for d in self.daemons.values())
        retries = sum(d.endpoint.retries_performed for d in self.daemons.values())
        return {
            "calls_sent": calls,
            "retries_performed": retries,
            "frames_sent": self.transport.frames_sent,
            "bytes_sent": self.transport.bytes_sent,
            "frames_dropped": self.transport.frames_dropped,
        }
