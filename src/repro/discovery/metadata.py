"""Service meta-data records stored in the DHT (paper §3).

Registration stores a component's *static* meta-data — location (host
peer), input/output quality, resource requirement, performance quality —
under ``key = hash(function name)``, so all functionally duplicated
components land on the same DHT-responsible peer and one lookup returns
the whole duplicate list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.qos import QoSVector
from ..core.resources import ResourceVector
from ..services.component import ComponentSpec, QualitySpec

__all__ = ["ServiceMetadata"]


@dataclass(frozen=True, slots=True)
class ServiceMetadata:
    """One duplicated component's entry in the function's meta-data list.

    This is deliberately *static* information (the paper stores static
    meta-data at registration time): dynamic QoS/resource states are
    collected on demand by composition probes, never from the DHT.
    """

    component_id: int
    function: str
    peer: int
    qp: QoSVector
    resources: ResourceVector
    input_quality: QualitySpec
    output_quality: QualitySpec
    bandwidth_factor: float = 1.0
    registered_at: float = 0.0

    @classmethod
    def from_spec(cls, spec: ComponentSpec, registered_at: float = 0.0) -> "ServiceMetadata":
        return cls(
            component_id=spec.component_id,
            function=spec.function,
            peer=spec.peer,
            qp=spec.qp,
            resources=spec.resources,
            input_quality=spec.input_quality,
            output_quality=spec.output_quality,
            bandwidth_factor=spec.bandwidth_factor,
            registered_at=registered_at,
        )

    def describe(self) -> Dict[str, object]:
        """A plain-dict view (used by examples and logs)."""
        return {
            "component_id": self.component_id,
            "function": self.function,
            "peer": self.peer,
            "qp": self.qp.as_dict(),
            "resources": self.resources.as_dict(),
            "bandwidth_factor": self.bandwidth_factor,
        }
