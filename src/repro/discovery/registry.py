"""Keyword-based decentralized service discovery on top of the DHT (§3).

* **Registration** — a peer sharing a component hashes the function name
  into a DHT key and stores the component's static meta-data there; all
  duplicates of a function share the key, hence the same responsible
  peer, hence one lookup returns the full duplicate list.
* **Discovery** — a peer hashes the same function name, routes a query,
  and receives the meta-data list.

The registry also reacts to churn: a departed peer's registrations are
filtered out of query results while it is down (its components are
unreachable), matching what liveness-checked discovery would return.
Lookup results can be cached per peer with a TTL — BCP per-hop
processing performs a discovery per next-hop function, and the paper's
prototype amortises these lookups within a session-setup wave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..dht.id_space import key_for
from ..dht.pastry import PastryNetwork, RouteResult
from ..services.component import ComponentSpec
from .metadata import ServiceMetadata

__all__ = ["ServiceRegistry", "LookupResult", "WaveLookupCache"]


@dataclass
class LookupResult:
    """Outcome of a discovery query."""

    function: str
    components: List[ServiceMetadata]
    route: Optional[RouteResult] = None
    from_cache: bool = False

    @property
    def latency(self) -> float:
        """One-way query latency (response adds the same on the way back)."""
        return self.route.latency if self.route is not None else 0.0

    @property
    def rtt(self) -> float:
        return 2.0 * self.latency


class ServiceRegistry:
    """The meta-data layer over :class:`~repro.dht.pastry.PastryNetwork`."""

    def __init__(self, dht: PastryNetwork, cache_ttl: Optional[float] = None) -> None:
        self.dht = dht
        self.cache_ttl = cache_ttl
        # (peer, function) -> (expiry_time, components); only used when a
        # time source is passed to lookup()
        self._cache: Dict[Tuple[int, str], Tuple[float, List[ServiceMetadata]]] = {}
        self._down_peers: Set[int] = set()
        self._registered: Dict[int, List[ServiceMetadata]] = {}  # by hosting peer
        self._access_hook: Optional[Callable[[str], None]] = None

    def set_access_hook(self, hook: Optional[Callable[[str], None]]) -> None:
        """Install (or clear) a callable invoked with the method name
        before every registry read/write.  Live clusters in distributed
        mode use this to *prove* peers never consult the shared
        registry — the hook records a violation and raises."""
        self._access_hook = hook

    def _accessed(self, name: str) -> None:
        if self._access_hook is not None:
            self._access_hook(name)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self, spec: ComponentSpec, origin_peer: Optional[int] = None, now: float = 0.0
    ) -> RouteResult:
        """Store a component's meta-data under hash(function name)."""
        self._accessed("register")
        meta = ServiceMetadata.from_spec(spec, registered_at=now)
        origin = spec.peer if origin_peer is None else origin_peer
        result = self.dht.put(key_for(spec.function), meta, origin)
        self._registered.setdefault(spec.peer, []).append(meta)
        return result

    def deregister_peer(self, peer: int) -> int:
        """Permanently remove a peer's registrations from the DHT."""
        self._accessed("deregister_peer")
        removed = 0
        for meta in self._registered.pop(peer, []):
            removed += self.dht.remove_values(
                key_for(meta.function), lambda v, cid=meta.component_id: getattr(v, "component_id", None) == cid
            )
        return removed

    # ------------------------------------------------------------------
    # churn visibility
    # ------------------------------------------------------------------
    def peer_departed(self, peer: int, _time: float = 0.0) -> None:
        self._down_peers.add(peer)

    def peer_arrived(self, peer: int, _time: float = 0.0) -> None:
        self._down_peers.discard(peer)

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    def lookup(
        self,
        function: str,
        origin_peer: int,
        now: Optional[float] = None,
        include_down: bool = False,
    ) -> LookupResult:
        """Return the duplicate list for ``function`` as seen from a peer."""
        self._accessed("lookup")
        cache_key = (origin_peer, function)
        if self.cache_ttl is not None and now is not None:
            hit = self._cache.get(cache_key)
            if hit is not None and hit[0] > now:
                comps = [c for c in hit[1] if include_down or c.peer not in self._down_peers]
                return LookupResult(function, comps, route=None, from_cache=True)
        values, route = self.dht.get(key_for(function), origin_peer)
        components = [v for v in values if isinstance(v, ServiceMetadata)]
        if self.cache_ttl is not None and now is not None:
            self._cache[cache_key] = (now + self.cache_ttl, components)
        if not include_down:
            components = [c for c in components if c.peer not in self._down_peers]
        return LookupResult(function, components, route=route)

    def duplicates(self, function: str, include_down: bool = False) -> List[ServiceMetadata]:
        """Global-knowledge view of a function's duplicates (for baselines
        and the centralized comparison algorithm — *not* used by BCP)."""
        self._accessed("duplicates")
        seen: Dict[int, ServiceMetadata] = {}
        for metas in self._registered.values():
            for m in metas:
                if m.function == function:
                    seen[m.component_id] = m
        comps = list(seen.values())
        if not include_down:
            comps = [c for c in comps if c.peer not in self._down_peers]
        return sorted(comps, key=lambda m: m.component_id)

    def functions(self) -> List[str]:
        """All function names with at least one registration."""
        self._accessed("functions")
        names = {m.function for metas in self._registered.values() for m in metas}
        return sorted(names)

    def registered_on(self, peer: int) -> List[ServiceMetadata]:
        self._accessed("registered_on")
        return list(self._registered.get(peer, []))

    def wave_cache(self, ledger=None) -> "WaveLookupCache":
        """A fresh per-wave lookup memo (one per ``BCP.compose()`` call)."""
        self._accessed("wave_cache")
        return WaveLookupCache(self, ledger=ledger)


class WaveLookupCache:
    """Memoizes :meth:`ServiceRegistry.lookup` within one composition wave.

    During one session-setup wave, N probes crossing the same peer each
    discover the same next-hop functions, re-routing identical DHT
    queries (the paper's prototype amortises these).  The wave cache runs
    the first query for a ``(peer, function)`` pair and serves repeats
    from memory — but *replays* the original query's ledger charges and
    RTT, so message-overhead figures and probe timing still count every
    logical lookup.  Behaviour-preserving by construction: DHT contents,
    liveness and routing are fixed while a wave runs, so the real repeat
    query would return exactly the memoized answer.
    """

    def __init__(self, registry: ServiceRegistry, ledger=None) -> None:
        self.registry = registry
        # lookups charge the DHT's ledger, not the caller's
        self.ledger = ledger if ledger is not None else registry.dht.ledger
        self._memo: Dict[Tuple[int, str, bool], Tuple[LookupResult, Dict]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(
        self,
        function: str,
        origin_peer: int,
        now: Optional[float] = None,
        include_down: bool = False,
    ) -> LookupResult:
        key = (origin_peer, function, include_down)
        hit = self._memo.get(key)
        if hit is not None:
            result, deltas = hit
            self.ledger.replay(deltas)
            self.hits += 1
            return result
        snap = self.ledger.snapshot()
        result = self.registry.lookup(
            function, origin_peer, now=now, include_down=include_down
        )
        self._memo[key] = (result, self.ledger.delta_since(snap))
        self.misses += 1
        return result
