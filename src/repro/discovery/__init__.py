"""Decentralized keyword-based service discovery over the Pastry DHT."""

from .metadata import ServiceMetadata
from .registry import LookupResult, ServiceRegistry, WaveLookupCache

__all__ = ["LookupResult", "ServiceMetadata", "ServiceRegistry", "WaveLookupCache"]
