"""The Pastry DHT network: construction, routing, storage, churn repair.

One DHT node runs on every overlay peer.  The network object wires node
states (:class:`~repro.dht.node.PastryNodeState`) to the overlay: hop
latencies are overlay message latencies, every routing hop is charged to
the message ledger (category ``"dht_route"``), and peer churn drives
node death/rebirth plus replica repair.

Two construction paths are provided:

* :meth:`build` — offline construction from global knowledge (standard
  simulator shortcut: the steady-state tables Pastry converges to);
* :meth:`join` — the actual Pastry join protocol (route to the closest
  node, copy leaf set and per-row routing state from the path, announce),
  used by tests and by churn arrivals.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from ..sim.metrics import MessageLedger
from ..sim.rng import as_generator
from ..topology.overlay import Overlay
from .id_space import DEFAULT_B, circular_distance, random_id
from .node import PastryNodeState
from .ring import RingSnapshot

__all__ = ["RouteResult", "PastryNetwork", "RoutingFailure"]


class RoutingFailure(RuntimeError):
    """Raised when a lookup cannot make progress (partitioned/empty ring)."""


@dataclass
class RouteResult:
    """Outcome of routing a key: where it landed and what it cost."""

    key: int
    responsible_node: int
    responsible_peer: int
    hops: List[int] = field(default_factory=list)  # node ids visited (excl. origin)
    latency: float = 0.0  # summed one-way overlay latency along hops
    messages: int = 0

    @property
    def hop_count(self) -> int:
        return len(self.hops)


class PastryNetwork:
    """All Pastry node states plus the glue to overlay, ledger and churn."""

    MAX_HOPS = 64  # routing in a healthy Pastry ring takes O(log_16 N) hops

    def __init__(
        self,
        overlay: Overlay,
        rng=None,
        b: int = DEFAULT_B,
        leaf_half: int = 8,
        replicas: int = 3,
        ledger: Optional[MessageLedger] = None,
    ) -> None:
        self.overlay = overlay
        self.rng = as_generator(rng)
        self.b = b
        self.leaf_half = leaf_half
        self.replicas = replicas
        self.ledger = ledger if ledger is not None else MessageLedger()
        self.nodes: Dict[int, PastryNodeState] = {}
        self.node_of_peer: Dict[int, int] = {}
        self._alive: Set[int] = set()
        self._ring: List[int] = []  # sorted alive node ids
        for peer in overlay.peers():
            nid = random_id(self.rng)
            while nid in self.nodes:  # vanishing probability, but be exact
                nid = random_id(self.rng)
            self.nodes[nid] = PastryNodeState(nid, peer, b=b, leaf_half=leaf_half)
            self.node_of_peer[peer] = nid
            self._alive.add(nid)
        self._ring = sorted(self._alive)

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def is_alive(self, node_id: int) -> bool:
        return node_id in self._alive

    def alive_count(self) -> int:
        return len(self._alive)

    def peer_of(self, node_id: int) -> int:
        return self.nodes[node_id].peer

    def node_departed(self, peer: int, _time: float = 0.0) -> None:
        """Churn hook: the peer's DHT node dies; repair its replicas."""
        nid = self.node_of_peer.get(peer)
        if nid is None or nid not in self._alive:
            return
        self._alive.discard(nid)
        i = bisect.bisect_left(self._ring, nid)
        if i < len(self._ring) and self._ring[i] == nid:
            del self._ring[i]
        # Neighbours eventually detect the failure and drop the entry;
        # we model the end state and charge heartbeat traffic.
        for state in self.nodes.values():
            state.forget(nid)
        self.ledger.record("dht_repair", 64, min(len(self._alive), 2 * self.leaf_half))
        self._repair_replicas_of(nid)

    def node_arrived(self, peer: int, _time: float = 0.0) -> None:
        """Churn hook: the peer rejoins with its old id via the join protocol."""
        nid = self.node_of_peer.get(peer)
        if nid is None or nid in self._alive:
            return
        # stale state is discarded on rejoin (soft-state assumption)
        self.nodes[nid] = PastryNodeState(nid, peer, b=self.b, leaf_half=self.leaf_half)
        self._alive.add(nid)
        bisect.insort(self._ring, nid)
        if len(self._alive) > 1:
            self._join_existing(nid)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _latency_fn(self, from_node: int) -> Callable[[int], float]:
        src_peer = self.nodes[from_node].peer

        def latency(nid: int) -> float:
            return self.overlay.latency(src_peer, self.nodes[nid].peer)

        return latency

    def build(self) -> None:
        """Offline steady-state construction from global knowledge."""
        ids = self._ring
        n = len(ids)
        for idx, nid in enumerate(ids):
            state = self.nodes[nid]
            lat = self._latency_fn(nid)
            # leaf set: ring neighbours on both sides
            for off in range(1, self.leaf_half + 1):
                state.leaf_set.add(ids[(idx + off) % n])
                state.leaf_set.add(ids[(idx - off) % n])
            # routing table: consider every other node (proximity-aware)
            for other in ids:
                if other != nid:
                    state.routing_table.consider(other, lat)

    def join(self, peer: int, bootstrap_peer: Optional[int] = None) -> RouteResult:
        """Run the Pastry join protocol for ``peer`` (must not be alive)."""
        nid = self.node_of_peer[peer]
        if nid in self._alive:
            raise RoutingFailure(f"peer {peer} already joined")
        self.nodes[nid] = PastryNodeState(nid, peer, b=self.b, leaf_half=self.leaf_half)
        self._alive.add(nid)
        bisect.insort(self._ring, nid)
        return self._join_existing(nid, bootstrap_peer)

    def _join_existing(self, nid: int, bootstrap_peer: Optional[int] = None) -> RouteResult:
        state = self.nodes[nid]
        others = [x for x in self._ring if x != nid]
        if not others:
            return RouteResult(nid, nid, state.peer)
        if bootstrap_peer is None:
            boot = others[int(self.rng.integers(0, len(others)))]
        else:
            boot = self.node_of_peer[bootstrap_peer]
            if boot not in self._alive or boot == nid:
                boot = others[int(self.rng.integers(0, len(others)))]
        # route a join message for our own id starting at the bootstrap
        result = self._route_from_node(nid, boot, record_origin_hop=True)
        lat = self._latency_fn(nid)
        # copy leaf set from the numerically closest node Z
        z_state = self.nodes[result.responsible_node]
        state.learn(result.responsible_node, lat)
        for m in z_state.leaf_set.members():
            if m in self._alive:
                state.learn(m, lat)
        # copy routing rows from nodes along the path (row i from i-th hop)
        for row_idx, hop in enumerate(result.hops):
            hop_state = self.nodes[hop]
            if row_idx < len(hop_state.routing_table.rows):
                for entry in hop_state.routing_table.row_entries(row_idx):
                    if entry in self._alive:
                        state.learn(entry, lat)
        # announce: every node in our new state learns us
        for other in state.known_nodes():
            if other in self._alive:
                self.nodes[other].learn(nid, self._latency_fn(other))
                self.ledger.record("dht_join", 128)
        # take over keys we are now responsible for
        self._pull_keys_for(nid)
        return result

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def responsible_node(self, key: int) -> int:
        """Ground truth: alive node circularly closest to ``key``.

        Uses the global sorted ring; O(log n).  Routing converges here in
        a healthy overlay — tests assert exactly that.
        """
        if not self._ring:
            raise RoutingFailure("empty ring")
        i = bisect.bisect_left(self._ring, key) % len(self._ring)
        # candidates: neighbours around the insertion point
        cands = {self._ring[i], self._ring[i - 1]}
        return min(cands, key=lambda c: (circular_distance(key, c), c))

    def ring_snapshot(self) -> RingSnapshot:
        """A frozen key → owner view of the current ring.

        Live peers carry this away from bootstrap to resolve directory
        owners without reading shared DHT storage; see
        :class:`~repro.dht.ring.RingSnapshot` for the staleness model.
        """
        return RingSnapshot(
            self._ring,
            {nid: self.nodes[nid].peer for nid in self._ring},
            replicas=self.replicas,
        )

    def route(self, key: int, origin_peer: int) -> RouteResult:
        """Route ``key`` from ``origin_peer`` to the responsible node."""
        origin = self.node_of_peer[origin_peer]
        if origin not in self._alive:
            raise RoutingFailure(f"origin peer {origin_peer} is not alive")
        return self._route_from_node(key, origin)

    def _route_from_node(
        self, key: int, start_node: int, record_origin_hop: bool = False
    ) -> RouteResult:
        current = start_node
        hops: List[int] = [start_node] if record_origin_hop else []
        latency = 0.0
        messages = 1 if record_origin_hop else 0
        dead_seen: Set[int] = set()
        for _ in range(self.MAX_HOPS):
            state = self.nodes[current]
            nxt = state.next_hop(key, exclude=dead_seen)
            while nxt is not None and nxt not in self._alive:
                # failed forward: sender times out, repairs, retries
                dead_seen.add(nxt)
                state.forget(nxt)
                self.ledger.record("dht_route", 96)
                messages += 1
                nxt = state.next_hop(key, exclude=dead_seen)
            if nxt is None:
                return RouteResult(key, current, state.peer, hops, latency, messages)
            latency += self.overlay.latency(state.peer, self.nodes[nxt].peer)
            self.ledger.record("dht_route", 96)
            messages += 1
            hops.append(nxt)
            current = nxt
        raise RoutingFailure(f"routing for key {key:#x} exceeded {self.MAX_HOPS} hops")

    # ------------------------------------------------------------------
    # storage (the PAST-style key -> list-of-values layer)
    # ------------------------------------------------------------------
    def _replica_nodes(self, key: int) -> List[int]:
        """The responsible node plus its ``replicas`` alive ring successors."""
        if not self._ring:
            return []
        root = self.responsible_node(key)
        i = self._ring.index(root)
        out = []
        for off in range(min(self.replicas + 1, len(self._ring))):
            out.append(self._ring[(i + off) % len(self._ring)])
        return out

    def put(self, key: int, value: Any, origin_peer: int) -> RouteResult:
        """Store ``value`` under ``key`` (append semantics, replicated)."""
        result = self.route(key, origin_peer)
        for nid in self._replica_nodes(key):
            self.nodes[nid].store.setdefault(key, []).append(value)
            if nid != result.responsible_node:
                self.ledger.record("dht_replicate", 160)
                result.messages += 1
        return result

    def get(self, key: int, origin_peer: int) -> tuple[List[Any], RouteResult]:
        """Fetch the value list for ``key`` (empty list if unknown)."""
        result = self.route(key, origin_peer)
        values = list(self.nodes[result.responsible_node].store.get(key, []))
        if not values:
            # placement may have shifted under churn; ask ring successors
            for nid in self._replica_nodes(key):
                vals = self.nodes[nid].store.get(key)
                if vals:
                    values = list(vals)
                    self.ledger.record("dht_route", 96)
                    result.messages += 1
                    break
        return values, result

    def remove_values(self, key: int, predicate: Callable[[Any], bool]) -> int:
        """Delete matching values from all replicas (e.g. on deregistration)."""
        removed = 0
        for state in self.nodes.values():
            vals = state.store.get(key)
            if not vals:
                continue
            kept = [v for v in vals if not predicate(v)]
            removed += len(vals) - len(kept)
            if kept:
                state.store[key] = kept
            else:
                del state.store[key]
        return removed

    # ------------------------------------------------------------------
    # churn repair helpers
    # ------------------------------------------------------------------
    def _repair_replicas_of(self, dead_node: int) -> None:
        """Re-replicate keys the dead node held from surviving replicas."""
        dead_store = self.nodes[dead_node].store
        for key, values in list(dead_store.items()):
            targets = self._replica_nodes(key)
            holders = [t for t in targets if key in self.nodes[t].store]
            if not holders:
                # all replicas gone: data lost until re-registration,
                # exactly what a real DHT experiences
                continue
            src_vals = self.nodes[holders[0]].store[key]
            for t in targets:
                if key not in self.nodes[t].store:
                    self.nodes[t].store[key] = list(src_vals)
                    self.ledger.record("dht_replicate", 160)

    def _pull_keys_for(self, nid: int) -> None:
        """A (re)joined node fetches keys it is now a replica for."""
        idx = self._ring.index(nid)
        n = len(self._ring)
        # keys rooted at us or at our nearby predecessors may replicate to us
        neighbours = {self._ring[(idx + off) % n] for off in range(-self.replicas, 1)}
        for other in neighbours:
            if other == nid:
                continue
            for key, values in self.nodes[other].store.items():
                if nid in self._replica_nodes(key) and key not in self.nodes[nid].store:
                    self.nodes[nid].store[key] = list(values)
                    self.ledger.record("dht_replicate", 160)
