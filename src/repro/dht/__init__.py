"""Pastry distributed hash table (id space, node state, network, storage)."""

from .id_space import (
    DEFAULT_B,
    ID_BITS,
    ID_SPACE,
    circular_distance,
    clockwise_distance,
    closest_id,
    digit,
    format_id,
    key_for,
    num_digits,
    random_id,
    shared_prefix_len,
)
from .node import LeafSet, PastryNodeState, RoutingTable
from .pastry import PastryNetwork, RouteResult, RoutingFailure
from .ring import RingSnapshot

__all__ = [
    "DEFAULT_B",
    "ID_BITS",
    "ID_SPACE",
    "LeafSet",
    "PastryNetwork",
    "PastryNodeState",
    "RingSnapshot",
    "RouteResult",
    "RoutingFailure",
    "RoutingTable",
    "circular_distance",
    "clockwise_distance",
    "closest_id",
    "digit",
    "format_id",
    "key_for",
    "num_digits",
    "random_id",
    "shared_prefix_len",
]
