"""Static views of the DHT id space for over-the-wire key resolution.

A live distributed peer must decide *which peer to ask* for a directory
key without reading the shared :class:`~repro.dht.pastry.PastryNetwork`
storage.  :class:`RingSnapshot` is the minimal bootstrap knowledge a
peer carries away from the join protocol: the sorted ring of node ids
and each node's host peer.  It answers ownership questions with exactly
the same arithmetic as :meth:`PastryNetwork.responsible_node` /
``_replica_nodes``, so a snapshot taken at build time and the routed
ground truth agree on every key while membership is stable.

Snapshots are deliberately *not* kept in sync with churn: a peer that
asks a dead owner gets an RPC timeout and retries the key's ring
successors — the replica set — which is the soft-state behaviour a real
Pastry deployment exhibits between failure and leaf-set repair.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Mapping

from .id_space import circular_distance

__all__ = ["RingSnapshot"]


class RingSnapshot:
    """A frozen key → owner mapping over the Pastry ring.

    ``ring`` is the sorted list of alive node ids, ``peer_of`` maps each
    node id to its host peer, and ``replicas`` is the replication degree
    (ring successors of the root also store every key).
    """

    __slots__ = ("_ring", "_peer_of", "replicas")

    def __init__(
        self, ring: Iterable[int], peer_of: Mapping[int, int], replicas: int = 3
    ) -> None:
        self._ring: List[int] = sorted(ring)
        self._peer_of: Dict[int, int] = dict(peer_of)
        if not self._ring:
            raise ValueError("a ring snapshot needs at least one node")
        missing = [n for n in self._ring if n not in self._peer_of]
        if missing:
            raise ValueError(f"no host peer for nodes: {missing[:5]}")
        self.replicas = replicas

    def __len__(self) -> int:
        return len(self._ring)

    def responsible_node(self, key: int) -> int:
        """The node circularly closest to ``key`` — same tie-break as
        :meth:`PastryNetwork.responsible_node` (smaller id wins)."""
        i = bisect.bisect_left(self._ring, key) % len(self._ring)
        cands = {self._ring[i], self._ring[i - 1]}
        return min(cands, key=lambda c: (circular_distance(key, c), c))

    def owner_peer(self, key: int) -> int:
        """The peer hosting the key's responsible node."""
        return self._peer_of[self.responsible_node(key)]

    def replica_nodes(self, key: int) -> List[int]:
        """Root node plus its ``replicas`` ring successors, root first."""
        root = self.responsible_node(key)
        i = self._ring.index(root)
        n = len(self._ring)
        return [self._ring[(i + off) % n] for off in range(min(self.replicas + 1, n))]

    def replica_peers(self, key: int) -> List[int]:
        """Peers to ask for a key, in preference order (owner first)."""
        return [self._peer_of[nid] for nid in self.replica_nodes(key)]

    def extended_replica_peers(self, key: int, extra: int = 0) -> List[int]:
        """The replica peers plus the next ``extra`` ring successors.

        The extension is where popularity-driven replica fan-out lands:
        a hot key's owner pushes its rows to the peers just past the
        base replica set, so the *routing neighbourhood* of the key can
        serve lookups without touching the owner (``ReplicatePush`` in
        :mod:`repro.net.peer`).  Order matches :meth:`replica_peers`
        with the extra successors appended."""
        root = self.responsible_node(key)
        i = self._ring.index(root)
        n = len(self._ring)
        count = min(self.replicas + 1 + max(extra, 0), n)
        return [self._peer_of[self._ring[(i + off) % n]] for off in range(count)]
