"""Pastry node state: routing table and leaf set.

Each node keeps

* a **routing table** with ``num_digits`` rows and ``2^b`` columns: row
  ``l`` holds, for each digit value ``d``, some node whose id shares a
  length-``l`` digit prefix with this node and has ``d`` as its next
  digit (proximity-aware: among equally valid candidates the lowest-
  latency one is preferred);
* a **leaf set** of the ``L/2`` numerically closest smaller and larger
  ids on the ring — the consistency anchor that makes routing terminate
  at the numerically closest live node.

The node is pure state + next-hop logic; message transport and repairs
live in :class:`~repro.dht.pastry.PastryNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from .id_space import (
    DEFAULT_B,
    circular_distance,
    clockwise_distance,
    digit,
    num_digits,
    shared_prefix_len,
)

__all__ = ["LeafSet", "RoutingTable", "PastryNodeState"]


class LeafSet:
    """The L numerically closest neighbours, half on each side of the ring."""

    def __init__(self, owner_id: int, half_size: int = 8) -> None:
        if half_size < 1:
            raise ValueError("leaf set half size must be >= 1")
        self.owner_id = owner_id
        self.half_size = half_size
        self.smaller: List[int] = []  # sorted by increasing ccw distance
        self.larger: List[int] = []  # sorted by increasing cw distance

    def members(self) -> List[int]:
        return self.smaller + self.larger

    def add(self, node_id: int) -> None:
        if node_id == self.owner_id or node_id in self.smaller or node_id in self.larger:
            return
        cw = clockwise_distance(self.owner_id, node_id)
        ccw = clockwise_distance(node_id, self.owner_id)
        if cw <= ccw:  # node lies clockwise (larger side)
            self.larger.append(node_id)
            self.larger.sort(key=lambda x: clockwise_distance(self.owner_id, x))
            del self.larger[self.half_size :]
        else:
            self.smaller.append(node_id)
            self.smaller.sort(key=lambda x: clockwise_distance(x, self.owner_id))
            del self.smaller[self.half_size :]

    def remove(self, node_id: int) -> None:
        if node_id in self.smaller:
            self.smaller.remove(node_id)
        if node_id in self.larger:
            self.larger.remove(node_id)

    def covers(self, key: int) -> bool:
        """Whether ``key`` falls within the leaf set's ring segment.

        Pastry's routing rule: if the key is between the extreme leaves,
        deliver to the numerically closest leaf (or the owner).
        """
        lo = self.smaller[-1] if self.smaller else self.owner_id
        hi = self.larger[-1] if self.larger else self.owner_id
        span = clockwise_distance(lo, hi)
        return clockwise_distance(lo, key) <= span

    def closest(self, key: int) -> int:
        """Numerically closest node (including owner) among leaves."""
        best = self.owner_id
        best_d = circular_distance(key, best)
        for m in self.members():
            d = circular_distance(key, m)
            if d < best_d or (d == best_d and m < best):
                best, best_d = m, d
        return best


class RoutingTable:
    """Prefix routing table: rows[l][d] = node id or None."""

    def __init__(self, owner_id: int, b: int = DEFAULT_B) -> None:
        self.owner_id = owner_id
        self.b = b
        self.rows: List[List[Optional[int]]] = [
            [None] * (1 << b) for _ in range(num_digits(b))
        ]

    def slot_for(self, node_id: int) -> Optional[tuple[int, int]]:
        """(row, col) where ``node_id`` belongs, or None for the owner itself."""
        if node_id == self.owner_id:
            return None
        row = shared_prefix_len(self.owner_id, node_id, self.b)
        col = digit(node_id, row, self.b)
        return row, col

    def get(self, row: int, col: int) -> Optional[int]:
        return self.rows[row][col]

    def consider(
        self,
        node_id: int,
        latency: Optional[Callable[[int], float]] = None,
    ) -> bool:
        """Offer a node for inclusion; keep the lower-latency incumbent.

        Returns True if the table changed.  ``latency(node_id)`` supplies
        proximity; without it, first-come-first-kept (Pastry without the
        proximity heuristic, still correct).
        """
        slot = self.slot_for(node_id)
        if slot is None:
            return False
        row, col = slot
        incumbent = self.rows[row][col]
        if incumbent is None:
            self.rows[row][col] = node_id
            return True
        if incumbent == node_id:
            return False
        if latency is not None and latency(node_id) < latency(incumbent):
            self.rows[row][col] = node_id
            return True
        return False

    def remove(self, node_id: int) -> None:
        slot = self.slot_for(node_id)
        if slot is None:
            return
        row, col = slot
        if self.rows[row][col] == node_id:
            self.rows[row][col] = None

    def entries(self) -> List[int]:
        return [e for row in self.rows for e in row if e is not None]

    def row_entries(self, row: int) -> List[int]:
        return [e for e in self.rows[row] if e is not None]


@dataclass
class PastryNodeState:
    """Complete per-node Pastry state plus the node's local key/value store."""

    node_id: int
    peer: int  # overlay peer index hosting this DHT node
    b: int = DEFAULT_B
    leaf_half: int = 8
    leaf_set: LeafSet = field(init=False)
    routing_table: RoutingTable = field(init=False)
    store: Dict[int, list] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.leaf_set = LeafSet(self.node_id, self.leaf_half)
        self.routing_table = RoutingTable(self.node_id, self.b)

    # ------------------------------------------------------------------
    def learn(self, node_id: int, latency: Optional[Callable[[int], float]] = None) -> None:
        """Incorporate knowledge of another node into both structures."""
        if node_id == self.node_id:
            return
        self.leaf_set.add(node_id)
        self.routing_table.consider(node_id, latency)

    def forget(self, node_id: int) -> None:
        self.leaf_set.remove(node_id)
        self.routing_table.remove(node_id)

    def known_nodes(self) -> Set[int]:
        return set(self.leaf_set.members()) | set(self.routing_table.entries())

    # ------------------------------------------------------------------
    def next_hop(self, key: int, exclude: Optional[Set[int]] = None) -> Optional[int]:
        """Pastry's next-hop rule; None means *this node is responsible*.

        ``exclude`` lists nodes known dead (skipped during repair routing).
        """
        exclude = exclude or set()
        if key == self.node_id:
            return None
        # Rule 1: key within leaf set range -> numerically closest leaf
        if self.leaf_set.covers(key):
            candidates = [
                m for m in self.leaf_set.members() if m not in exclude
            ] + [self.node_id]
            best = min(
                candidates, key=lambda m: (circular_distance(key, m), m)
            )
            return None if best == self.node_id else best
        # Rule 2: routing table entry with a longer shared prefix
        row = shared_prefix_len(self.node_id, key, self.b)
        col = digit(key, row, self.b)
        entry = self.routing_table.get(row, col)
        if entry is not None and entry not in exclude:
            return entry
        # Rule 3 (rare case): any known node strictly closer to the key
        # with shared prefix >= row
        my_d = circular_distance(key, self.node_id)
        best = None
        best_d = my_d
        for cand in self.known_nodes():
            if cand in exclude:
                continue
            if shared_prefix_len(cand, key, self.b) >= row:
                d = circular_distance(key, cand)
                if d < best_d or (d == best_d and best is not None and cand < best):
                    best, best_d = cand, d
        return best
