"""Pastry identifier space: 128-bit circular ids with base-2^b digits.

Pastry (Rowstron & Druschel 2001) assigns each node and each key a
128-bit id interpreted as a sequence of digits with base ``2^b``
(``b = 4`` → hexadecimal digits).  Routing matches progressively longer
digit prefixes; leaf sets use circular numerical closeness.  This module
is pure id arithmetic — no networking — so it can be property-tested in
isolation.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from ..sim.rng import as_generator

__all__ = [
    "ID_BITS",
    "ID_SPACE",
    "DEFAULT_B",
    "num_digits",
    "digit",
    "shared_prefix_len",
    "circular_distance",
    "clockwise_distance",
    "key_for",
    "random_id",
    "format_id",
    "closest_id",
]

ID_BITS = 128
ID_SPACE = 1 << ID_BITS
DEFAULT_B = 4  # bits per digit => hexadecimal digits


def num_digits(b: int = DEFAULT_B) -> int:
    """Number of base-2^b digits in a 128-bit id."""
    if b <= 0 or ID_BITS % b != 0:
        raise ValueError(f"b must divide {ID_BITS}, got {b}")
    return ID_BITS // b


def digit(node_id: int, index: int, b: int = DEFAULT_B) -> int:
    """The ``index``-th most-significant base-2^b digit of ``node_id``."""
    n = num_digits(b)
    if not 0 <= index < n:
        raise IndexError(f"digit index {index} out of range for {n} digits")
    shift = (n - 1 - index) * b
    return (node_id >> shift) & ((1 << b) - 1)


def shared_prefix_len(a: int, c: int, b: int = DEFAULT_B) -> int:
    """Length (in digits) of the common most-significant-digit prefix."""
    if a == c:
        return num_digits(b)
    xor = a ^ c
    # position of highest set bit, counted from MSB of the 128-bit word
    leading = ID_BITS - xor.bit_length()
    return leading // b


def circular_distance(a: int, c: int) -> int:
    """Shorter-way distance on the 2^128 ring."""
    d = (a - c) % ID_SPACE
    return min(d, ID_SPACE - d)


def clockwise_distance(a: int, c: int) -> int:
    """Distance from ``a`` to ``c`` moving clockwise (increasing ids)."""
    return (c - a) % ID_SPACE


def key_for(name: str) -> int:
    """Hash an arbitrary string (e.g. a service function name) into the ring.

    Pastry applies a secure hash to object names; we use SHA-1 truncated
    to 128 bits, which is both stable across processes and uniform.
    """
    h = hashlib.sha1(name.encode("utf-8")).digest()
    return int.from_bytes(h[:16], "big")


def random_id(rng=None) -> int:
    """A uniformly random 128-bit id (for node id assignment)."""
    rng = as_generator(rng)
    hi = int(rng.integers(0, 1 << 64, dtype="uint64"))
    lo = int(rng.integers(0, 1 << 64, dtype="uint64"))
    return (hi << 64) | lo


def format_id(node_id: int, b: int = DEFAULT_B, prefix_digits: int = 8) -> str:
    """Short human-readable form of an id (first few digits)."""
    n = num_digits(b)
    digits = [digit(node_id, i, b) for i in range(min(prefix_digits, n))]
    alphabet = "0123456789abcdefghijklmnopqrstuv"
    return "".join(alphabet[d] for d in digits) + ("…" if prefix_digits < n else "")


def closest_id(key: int, candidates: Iterable[int]) -> int:
    """The candidate id circularly closest to ``key``.

    Ties (exactly antipodal or equidistant pairs) break toward the
    numerically smaller id so that responsibility is deterministic
    across all peers — required for DHT consistency.
    """
    best = None
    best_d = None
    for c in candidates:
        d = circular_distance(key, c)
        if best_d is None or d < best_d or (d == best_d and c < best):
            best, best_d = c, d
    if best is None:
        raise ValueError("no candidates")
    return best
