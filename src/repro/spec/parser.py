"""JSON and XML front-ends for request specifications.

QoSTalk (the specification environment the paper points users at) was
XML-based; modern users expect JSON.  Both formats map 1:1 onto the
dictionary schema of :mod:`repro.spec.schema`:

JSON — the schema dictionary verbatim.

XML —

.. code-block:: xml

    <composite-request name="mobile-news-stream">
      <function name="downscale"/>
      <function name="stock_ticker"/>
      <function name="requantify"/>
      <edge from="downscale" to="stock_ticker"/>
      <edge from="stock_ticker" to="requantify"/>
      <commutation a="stock_ticker" b="requantify"/>
      <qos delay-ms="800" loss-rate="0.05"/>
      <stream bandwidth-mbps="1.2" source="0" dest="42"
              duration-s="1800" failure-req="0.05"/>
      <conditional fork="downscale">
        <branch to="stock_ticker" probability="0.7"/>
      </conditional>
    </composite-request>
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Union
from xml.etree import ElementTree

from .schema import RequestSpec, SpecError, compile_spec

__all__ = ["parse_json", "parse_xml", "load_spec"]


def parse_json(text: str) -> RequestSpec:
    """Parse a JSON request specification."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"invalid JSON: {exc}") from exc
    return compile_spec(data)


def parse_xml(text: str) -> RequestSpec:
    """Parse an XML (QoSTalk-style) request specification."""
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise SpecError(f"invalid XML: {exc}") from exc
    if root.tag != "composite-request":
        raise SpecError(f"root element must be <composite-request>, got <{root.tag}>")
    spec: Dict[str, Any] = {"name": root.get("name", "request")}
    functions = [el.get("name") for el in root.findall("function")]
    if any(f is None for f in functions):
        raise SpecError("<function> elements need a 'name' attribute")
    spec["functions"] = functions
    edges = []
    for el in root.findall("edge"):
        a, b = el.get("from"), el.get("to")
        if a is None or b is None:
            raise SpecError("<edge> elements need 'from' and 'to' attributes")
        edges.append([a, b])
    if edges:
        spec["edges"] = edges
    commutations = []
    for el in root.findall("commutation"):
        a, b = el.get("a"), el.get("b")
        if a is None or b is None:
            raise SpecError("<commutation> elements need 'a' and 'b' attributes")
        commutations.append([a, b])
    if commutations:
        spec["commutations"] = commutations
    qos_el = root.find("qos")
    if qos_el is not None:
        qos: Dict[str, float] = {}
        if qos_el.get("delay-ms") is not None:
            qos["delay_ms"] = float(qos_el.get("delay-ms"))
        if qos_el.get("loss-rate") is not None:
            qos["loss_rate"] = float(qos_el.get("loss-rate"))
        spec["qos"] = qos
    stream_el = root.find("stream")
    if stream_el is None:
        raise SpecError("a <stream> element with source/dest is required")
    try:
        spec["source"] = int(stream_el.get("source"))
        spec["dest"] = int(stream_el.get("dest"))
    except (TypeError, ValueError) as exc:
        raise SpecError("<stream> needs integer 'source' and 'dest'") from exc
    for attr, key in (
        ("bandwidth-mbps", "bandwidth_mbps"),
        ("duration-s", "duration_s"),
        ("failure-req", "failure_req"),
        ("priority", "priority"),
    ):
        if stream_el.get(attr) is not None:
            spec[key] = float(stream_el.get(attr))
    conditional: Dict[str, Dict[str, float]] = {}
    for el in root.findall("conditional"):
        fork = el.get("fork")
        if fork is None:
            raise SpecError("<conditional> needs a 'fork' attribute")
        probs: Dict[str, float] = {}
        for br in el.findall("branch"):
            to, p = br.get("to"), br.get("probability")
            if to is None or p is None:
                raise SpecError("<branch> needs 'to' and 'probability'")
            probs[to] = float(p)
        # allow specifying all-but-one branch: the remainder is implied
        declared = sum(probs.values())
        if declared < 1.0 - 1e-9:
            fg_successors = {b for a, b in (tuple(e) for e in edges) if a == fork}
            missing = fg_successors - set(probs)
            if len(missing) == 1:
                probs[missing.pop()] = 1.0 - declared
        conditional[fork] = probs
    if conditional:
        spec["conditional"] = conditional
    return compile_spec(spec)


def load_spec(path: Union[str, pathlib.Path]) -> RequestSpec:
    """Load a specification file; format chosen by extension (.json/.xml)."""
    p = pathlib.Path(path)
    text = p.read_text()
    if p.suffix.lower() == ".json":
        return parse_json(text)
    if p.suffix.lower() == ".xml":
        return parse_xml(text)
    raise SpecError(f"unsupported spec format {p.suffix!r} (use .json or .xml)")
