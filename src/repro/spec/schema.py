"""Declarative composite-request specifications (the QoSTalk layer).

§2.1: "The user can specify the function graph using the visual
specification environment such as QoSTalk", the authors' XML-based QoS
language.  This module is that layer's programmatic equivalent: a
composite service request written as a plain dictionary (or JSON/XML
document, see :mod:`repro.spec.parser`) with human units — milliseconds,
loss rates, Mbps — validated and compiled into the internal
:class:`~repro.core.request.CompositeRequest` (additive QoS domain,
seconds).

Example::

    {
      "name": "mobile-news-stream",
      "functions": ["downscale", "stock_ticker", "requantify"],
      "edges": [["downscale", "stock_ticker"], ["stock_ticker", "requantify"]],
      "commutations": [["stock_ticker", "requantify"]],
      "qos": {"delay_ms": 800, "loss_rate": 0.05},
      "bandwidth_mbps": 1.2,
      "source": 0,
      "dest": 42,
      "duration_s": 1800,
      "failure_req": 0.05
    }
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.conditional import ConditionalAnnotation
from ..core.function_graph import FunctionGraph
from ..core.qos import QoSRequirement, loss_to_additive
from ..core.request import CompositeRequest

__all__ = ["SpecError", "RequestSpec", "compile_spec", "spec_from_request"]


class SpecError(ValueError):
    """Raised for malformed request specifications."""


_KNOWN_KEYS = {
    "name",
    "functions",
    "edges",
    "commutations",
    "qos",
    "bandwidth_mbps",
    "source",
    "dest",
    "duration_s",
    "failure_req",
    "priority",
    "conditional",
}

_KNOWN_QOS_KEYS = {"delay_ms", "loss_rate"}


@dataclass(frozen=True)
class RequestSpec:
    """A validated specification, ready to compile."""

    name: str
    function_graph: FunctionGraph
    qos: QoSRequirement
    source: int
    dest: int
    bandwidth_mbps: float
    duration_s: float
    failure_req: float
    priority: float
    conditional: Optional[ConditionalAnnotation]

    def compile(self) -> CompositeRequest:
        return CompositeRequest.create(
            function_graph=self.function_graph,
            qos=self.qos,
            source_peer=self.source,
            dest_peer=self.dest,
            bandwidth=self.bandwidth_mbps,
            failure_req=self.failure_req,
            duration=self.duration_s,
            priority=self.priority,
        )


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise SpecError(message)


def compile_spec(spec: Mapping[str, Any]) -> RequestSpec:
    """Validate a spec mapping and build the internal representation.

    Unknown keys are rejected (a typo'd key silently ignored would make
    the request laxer than the user wrote), units are converted, and the
    function graph + conditional annotation are cross-validated.
    """
    _require(isinstance(spec, Mapping), f"spec must be a mapping, got {type(spec).__name__}")
    unknown = set(spec) - _KNOWN_KEYS
    _require(not unknown, f"unknown spec keys: {sorted(unknown)}")

    functions = spec.get("functions")
    _require(
        isinstance(functions, Sequence) and not isinstance(functions, (str, bytes)),
        "'functions' must be a list of function names",
    )
    functions = [str(f) for f in functions]
    _require(len(functions) >= 1, "at least one function is required")

    raw_edges = spec.get("edges")
    if raw_edges is None:
        graph_edges: List[Tuple[str, str]] = list(zip(functions, functions[1:]))
    else:
        _require(isinstance(raw_edges, Sequence), "'edges' must be a list of pairs")
        graph_edges = []
        for e in raw_edges:
            _require(
                isinstance(e, Sequence) and len(e) == 2,
                f"edge must be a [from, to] pair, got {e!r}",
            )
            graph_edges.append((str(e[0]), str(e[1])))

    commutations = []
    for pair in spec.get("commutations", []):
        _require(
            isinstance(pair, Sequence) and len(pair) == 2,
            f"commutation must be a pair, got {pair!r}",
        )
        commutations.append((str(pair[0]), str(pair[1])))

    try:
        fg = FunctionGraph.from_edges(functions, graph_edges, commutations)
    except Exception as exc:
        raise SpecError(f"invalid function graph: {exc}") from exc

    qos_spec = spec.get("qos", {})
    _require(isinstance(qos_spec, Mapping), "'qos' must be a mapping")
    unknown_qos = set(qos_spec) - _KNOWN_QOS_KEYS
    _require(not unknown_qos, f"unknown qos keys: {sorted(unknown_qos)}")
    bounds: Dict[str, float] = {}
    if "delay_ms" in qos_spec:
        delay_ms = float(qos_spec["delay_ms"])
        _require(delay_ms > 0, f"delay_ms must be positive, got {delay_ms}")
        bounds["delay"] = delay_ms / 1000.0
    if "loss_rate" in qos_spec:
        loss = float(qos_spec["loss_rate"])
        _require(0.0 < loss < 1.0, f"loss_rate must be in (0,1), got {loss}")
        bounds["loss"] = loss_to_additive(loss)
    qos = QoSRequirement(bounds)

    source = spec.get("source")
    dest = spec.get("dest")
    _require(isinstance(source, int) and isinstance(dest, int),
             "'source' and 'dest' peer ids are required integers")
    _require(source != dest, "source and dest must differ")

    bandwidth = float(spec.get("bandwidth_mbps", 0.5))
    _require(bandwidth > 0, f"bandwidth_mbps must be positive, got {bandwidth}")
    duration = float(spec.get("duration_s", 600.0))
    _require(duration > 0, f"duration_s must be positive, got {duration}")
    failure_req = float(spec.get("failure_req", 0.05))
    _require(0.0 < failure_req <= 1.0, "failure_req must be in (0,1]")
    priority = float(spec.get("priority", 1.0))
    _require(priority > 0, "priority must be positive")

    conditional: Optional[ConditionalAnnotation] = None
    raw_cond = spec.get("conditional")
    if raw_cond is not None:
        _require(isinstance(raw_cond, Mapping), "'conditional' must map forks to branch probabilities")
        try:
            conditional = ConditionalAnnotation(
                {str(fn): {str(s): float(p) for s, p in probs.items()}
                 for fn, probs in raw_cond.items()}
            )
            conditional.validate_against(fg)
        except ValueError as exc:
            raise SpecError(f"invalid conditional annotation: {exc}") from exc

    return RequestSpec(
        name=str(spec.get("name", "request")),
        function_graph=fg,
        qos=qos,
        source=source,
        dest=dest,
        bandwidth_mbps=bandwidth,
        duration_s=duration,
        failure_req=failure_req,
        priority=priority,
        conditional=conditional,
    )


def spec_from_request(
    request: CompositeRequest, name: str = "request"
) -> Dict[str, Any]:
    """Round-trip helper: serialise a request back to the spec format."""
    from ..core.qos import additive_to_loss

    qos: Dict[str, float] = {}
    if "delay" in request.qos.bounds:
        qos["delay_ms"] = request.qos.bounds["delay"] * 1000.0
    if "loss" in request.qos.bounds:
        qos["loss_rate"] = additive_to_loss(request.qos.bounds["loss"])
    fg = request.function_graph
    return {
        "name": name,
        "functions": list(fg.functions),
        "edges": [[a, b] for a, b in sorted(fg.edges)],
        "commutations": [sorted(p) for p in sorted(fg.commutations, key=sorted)],
        "qos": qos,
        "bandwidth_mbps": request.bandwidth,
        "source": request.source_peer,
        "dest": request.dest_peer,
        "duration_s": request.duration,
        "failure_req": request.failure_req,
        "priority": request.priority,
    }
