"""Declarative request specifications (JSON / QoSTalk-style XML)."""

from .parser import load_spec, parse_json, parse_xml
from .schema import RequestSpec, SpecError, compile_spec, spec_from_request

__all__ = [
    "RequestSpec",
    "SpecError",
    "compile_spec",
    "load_spec",
    "parse_json",
    "parse_xml",
    "spec_from_request",
]
