"""cProfile plumbing for the CLI's ``--profile`` flag."""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable, Optional, Tuple

__all__ = ["profile_call"]


def profile_call(
    fn: Callable[..., Any],
    *args: Any,
    sort: str = "cumulative",
    limit: int = 30,
    dump_path: Optional[str] = None,
    **kwargs: Any,
) -> Tuple[Any, str]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, report)`` where ``report`` is the top-``limit``
    entries sorted by ``sort``.  ``dump_path`` additionally writes the
    raw stats for ``snakeviz``/``pstats`` post-processing.  The profiler
    is stopped even if ``fn`` raises, so partial profiles of failing
    runs still dump.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
        if dump_path is not None:
            profiler.dump_stats(dump_path)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(limit)
    return result, buffer.getvalue()
