"""Accumulating wall-clock phase timers for hot-path breakdowns."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator

__all__ = ["PhaseTimer"]


class PhaseTimer:
    """Named ``perf_counter`` accumulators with a context-manager API.

    >>> timer = PhaseTimer()
    >>> with timer.phase("probe"):
    ...     pass  # ... hot work ...
    >>> sorted(timer.totals) == ["probe"]
    True

    Re-entering a phase accumulates (loops time their total, not their
    last iteration).  ``clock`` is injectable for deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.totals: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = self._clock()
        try:
            yield
        finally:
            self.totals[name] = self.totals.get(name, 0.0) + (self._clock() - start)

    def as_dict(self, prefix: str = "") -> Dict[str, float]:
        """The accumulated totals, optionally key-prefixed (``wall_``)."""
        return {prefix + name: total for name, total in self.totals.items()}

    def reset(self) -> None:
        self.totals.clear()
