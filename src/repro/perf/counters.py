"""Operation counters for composition strategies.

:class:`PhaseTimer` answers *where the wall-clock went*; this module
answers *what the algorithm did* — how many partial assignments a search
expanded, how many subtrees each pruning rule cut, how many complete
graphs were evaluated.  Strategies surface the totals as ``ops_*`` keys
in ``CompositionResult.phases`` (next to the timer's ``wall_*`` keys),
so ``python -m repro --profile`` can show *why* a composer is fast, not
just that it is.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

__all__ = ["OpCounters"]


class OpCounters:
    """Named integer accumulators with a dict-style read API.

    >>> c = OpCounters()
    >>> c.incr("expansions"); c.incr("expansions", 2)
    >>> c["expansions"]
    3
    """

    __slots__ = ("totals",)

    def __init__(self, initial: Mapping[str, int] = ()) -> None:
        self.totals: Dict[str, int] = dict(initial)

    def incr(self, key: str, n: int = 1) -> None:
        self.totals[key] = self.totals.get(key, 0) + n

    def __getitem__(self, key: str) -> int:
        return self.totals.get(key, 0)

    def __contains__(self, key: str) -> bool:
        return key in self.totals

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self.totals.items()))

    def merge(self, other: "OpCounters") -> None:
        for key, n in other.totals.items():
            self.incr(key, n)

    def as_phases(self, prefix: str = "ops_") -> Dict[str, float]:
        """The totals as ``CompositionResult.phases`` entries (floats, to
        match the timer values sharing the dict)."""
        return {prefix + k: float(v) for k, v in self.totals.items()}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.totals.items()))
        return f"OpCounters({inner})"
