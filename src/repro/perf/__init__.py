"""Performance instrumentation: wall-clock phase timers and profiling.

The simulated-time breakdowns (``CompositionResult.phases`` keys
``discovery``/``composition``/``setup_ack``) answer the *paper's*
question — how long would setup take on a real network.  This package
answers the *engineering* question — where does the reproduction itself
spend CPU — with :class:`PhaseTimer` (per-phase ``perf_counter``
accumulators BCP surfaces as ``wall_*`` keys in the same ``phases``
dict) and :func:`profile_call` (the ``python -m repro --profile``
backend).  See ``docs/PERFORMANCE.md``.
"""

from .counters import OpCounters
from .profiling import profile_call
from .timers import PhaseTimer

__all__ = ["OpCounters", "PhaseTimer", "profile_call"]
