"""Application data units (ADUs) — the payloads service components process.

The paper's component model (§2.2, Fig. 3): components buffer input ADUs
in queues, process one ADU from each input queue, and emit output ADUs.
Our ADUs model a video frame (or frame-group) with enough structure for
the six multimedia components of §6.2 to perform *observable* transforms
— resolution, quantisation depth, embedded overlays — so data-plane tests
can assert real behaviour instead of counting opaque tokens.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

__all__ = ["ADU", "VideoFrame"]

_sequence = itertools.count(1)


@dataclass(frozen=True)
class ADU:
    """A generic application data unit flowing through a service graph."""

    seq: int
    stream_id: int
    timestamp: float
    size_bytes: int
    kind: str = "data"

    @classmethod
    def fresh(cls, stream_id: int, timestamp: float, size_bytes: int, kind: str = "data") -> "ADU":
        return cls(next(_sequence), stream_id, timestamp, size_bytes, kind)


@dataclass(frozen=True)
class VideoFrame(ADU):
    """A video frame ADU with the attributes the media components touch.

    ``overlays`` records embedded tickers (weather/stock); ``crop`` a
    sub-image region; ``quant_bits`` the re-quantisation depth.  Size is
    kept consistent with dimensions × depth so scaling visibly changes
    the byte count.
    """

    width: int = 640
    height: int = 480
    quant_bits: int = 8
    overlays: Tuple[str, ...] = ()
    crop: Optional[Tuple[int, int, int, int]] = None  # (x, y, w, h)
    fmt: str = "yuv"

    @classmethod
    def source(
        cls,
        stream_id: int,
        timestamp: float,
        width: int = 640,
        height: int = 480,
        quant_bits: int = 8,
        fmt: str = "yuv",
    ) -> "VideoFrame":
        size = cls.nominal_size(width, height, quant_bits)
        return cls(
            seq=next(_sequence),
            stream_id=stream_id,
            timestamp=timestamp,
            size_bytes=size,
            kind="video",
            width=width,
            height=height,
            quant_bits=quant_bits,
            fmt=fmt,
        )

    @staticmethod
    def nominal_size(width: int, height: int, quant_bits: int) -> int:
        """Byte size of a frame at given dimensions and quantisation.

        12 effective bits/pixel for 4:2:0 chroma at 8-bit depth, scaled
        linearly with depth; a crude but monotone model — what matters is
        that transforms move the size in the right direction.
        """
        bits_per_pixel = 12 * quant_bits / 8
        return max(1, int(width * height * bits_per_pixel / 8))

    def resized(self, width: int, height: int) -> "VideoFrame":
        if width <= 0 or height <= 0:
            raise ValueError(f"invalid dimensions {width}x{height}")
        return replace(
            self,
            width=width,
            height=height,
            size_bytes=self.nominal_size(width, height, self.quant_bits),
        )

    def requantised(self, quant_bits: int) -> "VideoFrame":
        if not 1 <= quant_bits <= 16:
            raise ValueError(f"quant_bits out of range: {quant_bits}")
        return replace(
            self,
            quant_bits=quant_bits,
            size_bytes=self.nominal_size(self.width, self.height, quant_bits),
        )

    def with_overlay(self, name: str) -> "VideoFrame":
        return replace(self, overlays=self.overlays + (name,))

    def cropped(self, x: int, y: int, w: int, h: int) -> "VideoFrame":
        if x < 0 or y < 0 or w <= 0 or h <= 0 or x + w > self.width or y + h > self.height:
            raise ValueError(f"crop ({x},{y},{w},{h}) outside {self.width}x{self.height}")
        return replace(
            self,
            crop=(x, y, w, h),
            width=w,
            height=h,
            size_bytes=self.nominal_size(w, h, self.quant_bits),
        )
