"""Streaming data plane: ADUs flowing through a composed service graph.

The control plane (composition, recovery) is what the paper evaluates,
but its subject is a *streaming application*: "the application sender
starts to stream application data units along the selected service
graph".  This module runs that stream on the simulator:

* the sender emits one ADU per frame interval;
* each service link delays the ADU by the overlay path latency and
  drops it with the path's loss probability;
* each component buffers the ADU in its input queue, spends its ``Qp``
  service delay, applies its transform, and forwards the output;
* the receiver records per-frame end-to-end latency and gaps.

The session's *current* service graph is consulted at every hop, so a
proactive failover (§5) redirects the stream mid-flight: frames already
heading to a dead peer are lost, and the receiver-side **glitch** (the
longest inter-arrival gap) measures the user-visible disruption — the
quantity proactive recovery exists to minimise.

Linear service graphs only (the unicast streaming case the paper's
examples use); DAG data planes are exercised at component level in
:mod:`repro.services.component`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.qos import additive_to_loss
from ..core.service_graph import ServiceGraph
from ..sim.engine import PeriodicTask, Simulator
from ..sim.rng import as_generator
from ..topology.overlay import Overlay
from .adu import VideoFrame
from .component import ComponentSpec, ServiceComponent, TransformFn
from .media import MEDIA_FUNCTIONS, make_transform

__all__ = ["StreamStats", "StreamingSession"]


@dataclass
class StreamStats:
    """Receiver-side measurements of one stream."""

    frames_sent: int = 0
    frames_delivered: int = 0
    frames_lost_link: int = 0  # network loss
    frames_lost_peer: int = 0  # delivered to a dead/obsolete component
    latencies: List[float] = field(default_factory=list)
    arrival_times: List[float] = field(default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        return self.frames_delivered / self.frames_sent if self.frames_sent else 0.0

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else float("nan")

    def longest_gap(self) -> float:
        """The worst receiver-side stall (user-visible glitch length)."""
        if len(self.arrival_times) < 2:
            return 0.0
        return float(np.max(np.diff(self.arrival_times)))


class StreamingSession:
    """Pushes a frame stream through a (possibly switching) service graph."""

    def __init__(
        self,
        sim: Simulator,
        overlay: Overlay,
        graph_provider: Callable[[], Optional[ServiceGraph]],
        spec_of: Optional[Callable[[int], ComponentSpec]] = None,
        fps: float = 10.0,
        frame_width: int = 640,
        frame_height: int = 480,
        alive: Optional[Callable[[int], bool]] = None,
        rng=None,
        model_loss: bool = True,
    ) -> None:
        """``graph_provider`` returns the session's *current* graph (None
        ends the stream); ``spec_of`` maps component ids to their
        deployed :class:`ComponentSpec` so the real transform runs —
        without it, media functions are resolved by name and anything
        else is the identity."""
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.sim = sim
        self.overlay = overlay
        self.graph_provider = graph_provider
        self.spec_of = spec_of
        self.frame_interval = 1.0 / fps
        self.frame_width = frame_width
        self.frame_height = frame_height
        self.alive = alive or (lambda p: True)
        self.rng = as_generator(rng)
        self.model_loss = model_loss
        self.stats = StreamStats()
        self.stream_id = int(self.rng.integers(1, 2**31))
        self._runtime: Dict[int, ServiceComponent] = {}  # component_id -> runtime
        self._emitter: Optional[PeriodicTask] = None

    # ------------------------------------------------------------------
    def start(self, duration: Optional[float] = None) -> None:
        graph = self.graph_provider()
        if graph is None:
            raise RuntimeError("no service graph to stream over")
        self._check_linear(graph)
        self._emitter = self.sim.every(self.frame_interval, self._emit)
        if duration is not None:
            self.sim.schedule(duration, self.stop)

    def stop(self) -> None:
        if self._emitter is not None:
            self._emitter.stop()
            self._emitter = None

    @staticmethod
    def _check_linear(graph: ServiceGraph) -> None:
        if not graph.pattern.is_linear():
            raise NotImplementedError(
                "StreamingSession supports linear service graphs (unicast "
                "streams); DAG data planes are tested at component level"
            )

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def _emit(self) -> None:
        graph = self.graph_provider()
        if graph is None:
            self.stop()
            return
        frame = VideoFrame.source(
            self.stream_id, timestamp=self.sim.now,
            width=self.frame_width, height=self.frame_height,
        )
        self.stats.frames_sent += 1
        self._send_link(frame, graph.source_peer, stage=0, sent_at=self.sim.now)

    def _chain(self, graph: ServiceGraph) -> List[str]:
        return graph.pattern.topological_order()

    def _send_link(self, frame, from_peer: int, stage: int, sent_at: float) -> None:
        """Forward the frame over the overlay toward stage ``stage``."""
        graph = self.graph_provider()
        if graph is None:
            self.stats.frames_lost_peer += 1
            return
        chain = self._chain(graph)
        if stage >= len(chain):
            to_peer = graph.dest_peer
        else:
            to_peer = graph.component(chain[stage]).peer
        latency = self.overlay.latency(from_peer, to_peer) if from_peer != to_peer else 0.0
        if self.model_loss and from_peer != to_peer:
            loss_rate = additive_to_loss(self.overlay.path_loss_add(from_peer, to_peer))
            if self.rng.random() < loss_rate:
                self.stats.frames_lost_link += 1
                return
        self.sim.schedule(latency, self._arrive, frame, stage, sent_at)

    def _arrive(self, frame, stage: int, sent_at: float) -> None:
        graph = self.graph_provider()
        if graph is None:
            self.stats.frames_lost_peer += 1
            return
        chain = self._chain(graph)
        if stage >= len(chain):
            # receiver
            if not self.alive(graph.dest_peer):
                self.stats.frames_lost_peer += 1
                return
            self.stats.frames_delivered += 1
            self.stats.latencies.append(self.sim.now - sent_at)
            self.stats.arrival_times.append(self.sim.now)
            return
        meta = graph.component(chain[stage])
        if not self.alive(meta.peer):
            # the component's host died (or a failover moved the stage
            # elsewhere while this frame was in flight): frame lost
            self.stats.frames_lost_peer += 1
            return
        runtime = self._runtime_for(meta.component_id, chain[stage])
        if not runtime.enqueue(frame):
            self.stats.frames_lost_peer += 1  # queue overflow
            return
        self.sim.schedule(
            meta.qp.values.get("delay", 0.0), self._process, meta.component_id,
            stage, meta.peer, sent_at,
        )

    def _process(self, component_id: int, stage: int, peer: int, sent_at: float) -> None:
        graph = self.graph_provider()
        if graph is None or not self.alive(peer):
            self.stats.frames_lost_peer += 1
            return
        runtime = self._runtime.get(component_id)
        if runtime is None:
            self.stats.frames_lost_peer += 1
            return
        outputs = runtime.process_once()
        for out in outputs:
            self._send_link(out, peer, stage + 1, sent_at)

    # ------------------------------------------------------------------
    def _runtime_for(self, component_id: int, function: str) -> ServiceComponent:
        runtime = self._runtime.get(component_id)
        if runtime is not None:
            return runtime
        transform: Optional[TransformFn] = None
        spec: Optional[ComponentSpec] = None
        if self.spec_of is not None:
            try:
                spec = self.spec_of(component_id)
            except KeyError:
                spec = None
        if spec is None:
            graph = self.graph_provider()
            meta = graph.component(function)
            spec = ComponentSpec.create(
                function=function,
                peer=meta.peer,
                qp=meta.qp,
                resources=meta.resources,
                bandwidth_factor=meta.bandwidth_factor,
            )
        if spec.function in MEDIA_FUNCTIONS:
            transform = make_transform(spec.function)
        runtime = ServiceComponent(spec, transform)
        self._runtime[component_id] = runtime
        return runtime
