"""Service component model, ADUs, and the multimedia service library."""

from .adu import ADU, VideoFrame
from .component import (
    ComponentSpec,
    ProcessingError,
    QualitySpec,
    ServiceComponent,
)
from .media import (
    MEDIA_FUNCTIONS,
    deploy_media_component,
    make_media_component,
    make_transform,
)

# NOTE: the streaming data plane lives in repro.services.streaming and is
# imported explicitly (``from repro.services.streaming import
# StreamingSession``) — it builds on repro.core, so re-exporting it here
# would create an import cycle during package initialisation.

__all__ = [
    "ADU",
    "ComponentSpec",
    "MEDIA_FUNCTIONS",
    "ProcessingError",
    "QualitySpec",
    "ServiceComponent",
    "VideoFrame",
    "deploy_media_component",
    "make_media_component",
    "make_transform",
]
