"""The service component model (paper §2.2, Fig. 3).

A service component is a self-contained application unit with

* a provisioned **function** ``F`` (its place in function graphs),
* an **input quality** ``Qin`` and **output quality** ``Qout`` —
  application-level quality descriptors (format, resolution class) used
  for compatibility checks between chained components,
* a **performance quality** ``Qp`` — the same vector of performance
  parameters as the user's QoS requirements (its service delay, its
  contribution to loss),
* a **resource requirement** ``R`` on the host peer,
* one or more **input queues** buffering ADUs from the network; whenever
  no queue is empty the component consumes one ADU per queue, processes
  them, and emits output ADU(s).

The *descriptor* part (everything the composition layer needs) is the
frozen :class:`ComponentSpec`; the *runtime* part (queues + transform) is
:class:`ServiceComponent`, instantiated on a peer when a session's setup
ack arrives.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.qos import QoSVector
from ..core.resources import ResourceVector
from .adu import ADU

__all__ = ["ComponentSpec", "ServiceComponent", "QualitySpec", "ProcessingError"]

_component_ids = itertools.count(1)


class ProcessingError(RuntimeError):
    """Raised when a component cannot process its inputs."""


@dataclass(frozen=True)
class QualitySpec:
    """Application-level quality descriptor (the Qin/Qout of Fig. 3).

    ``formats`` is the set of data formats accepted/produced; a service
    link is quality-compatible when the upstream output format is among
    the downstream accepted formats (wildcard ``"*"`` accepts anything).
    """

    formats: FrozenSet[str] = frozenset({"*"})

    @classmethod
    def of(cls, *formats: str) -> "QualitySpec":
        return cls(frozenset(formats) if formats else frozenset({"*"}))

    def accepts(self, fmt: str) -> bool:
        return "*" in self.formats or fmt in self.formats

    def primary_format(self) -> str:
        if "*" in self.formats:
            return "*"
        return min(self.formats)

    def compatible_with(self, downstream: "QualitySpec") -> bool:
        """Can our output feed the downstream input?"""
        if "*" in self.formats or "*" in downstream.formats:
            return True
        return bool(self.formats & downstream.formats)


TransformFn = Callable[[Sequence[ADU]], List[ADU]]


@dataclass(frozen=True)
class ComponentSpec:
    """Static descriptor of a deployed service component.

    This is exactly what service discovery stores in the DHT: the
    function name, host peer, quality interfaces, performance quality
    ``Qp`` and resource needs ``R``.
    """

    component_id: int
    function: str
    peer: int
    qp: QoSVector
    resources: ResourceVector
    input_quality: QualitySpec = field(default_factory=QualitySpec)
    output_quality: QualitySpec = field(default_factory=QualitySpec)
    n_inputs: int = 1
    bandwidth_factor: float = 1.0  # output rate / input rate (transcoding shrinks)

    @classmethod
    def create(
        cls,
        function: str,
        peer: int,
        qp: QoSVector,
        resources: ResourceVector,
        input_quality: Optional[QualitySpec] = None,
        output_quality: Optional[QualitySpec] = None,
        n_inputs: int = 1,
        bandwidth_factor: float = 1.0,
    ) -> "ComponentSpec":
        if n_inputs < 1:
            raise ValueError(f"component needs >= 1 input queue, got {n_inputs}")
        if bandwidth_factor <= 0:
            raise ValueError("bandwidth_factor must be positive")
        return cls(
            component_id=next(_component_ids),
            function=function,
            peer=peer,
            qp=qp,
            resources=resources,
            input_quality=input_quality or QualitySpec(),
            output_quality=output_quality or QualitySpec(),
            n_inputs=n_inputs,
            bandwidth_factor=bandwidth_factor,
        )

    @property
    def service_delay(self) -> float:
        """The Qp delay term (seconds of processing per ADU)."""
        return self.qp.values.get("delay", 0.0)


class ServiceComponent:
    """Runtime instance: input queues + the actual transform.

    The transform is supplied by the service library (:mod:`.media`) or
    by users of the public API; the default is the identity function.
    """

    def __init__(
        self,
        spec: ComponentSpec,
        transform: Optional[TransformFn] = None,
        max_queue: int = 256,
    ) -> None:
        self.spec = spec
        self.transform = transform if transform is not None else lambda adus: list(adus)
        self.max_queue = max_queue
        self.queues: List[Deque[ADU]] = [deque() for _ in range(spec.n_inputs)]
        self.processed = 0
        self.emitted = 0
        self.dropped = 0

    def enqueue(self, adu: ADU, queue_index: int = 0) -> bool:
        """Buffer an input ADU; drops (returns False) when the queue is full."""
        if not 0 <= queue_index < len(self.queues):
            raise ProcessingError(
                f"component {self.spec.component_id} has no queue {queue_index}"
            )
        q = self.queues[queue_index]
        if len(q) >= self.max_queue:
            self.dropped += 1
            return False
        q.append(adu)
        return True

    @property
    def ready(self) -> bool:
        """Per the model: process whenever *no* input queue is empty."""
        return all(self.queues)

    def process_once(self) -> List[ADU]:
        """Take one ADU per queue, run the transform, return outputs."""
        if not self.ready:
            return []
        inputs = [q.popleft() for q in self.queues]
        outputs = self.transform(inputs)
        self.processed += 1
        self.emitted += len(outputs)
        return outputs

    def drain(self, limit: int = 10_000) -> List[ADU]:
        """Process until some queue runs dry; returns all outputs in order."""
        out: List[ADU] = []
        for _ in range(limit):
            if not self.ready:
                break
            out.extend(self.process_once())
        return out

    def queue_depths(self) -> Tuple[int, ...]:
        return tuple(len(q) for q in self.queues)

    def __repr__(self) -> str:
        return (
            f"ServiceComponent(id={self.spec.component_id}, fn={self.spec.function!r}, "
            f"peer={self.spec.peer}, queues={self.queue_depths()})"
        )
