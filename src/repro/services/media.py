"""The six multimedia service functions of the paper's prototype (§6.2).

    (1) embedding weather forecast ticker   (2) embedding stock ticker
    (3) up-scaling video frames             (4) down-scaling video frames
    (5) extracting sub-image                (6) re-quantification of frames

Each factory returns a transform usable by
:class:`~repro.services.component.ServiceComponent` plus sensible
``Qin/Qout/Qp/R`` defaults, so a populated overlay exercises the same
data path the Java prototype did: every deployed component performs an
observable change on the frames that flow through it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.qos import QoSVector
from ..core.resources import ResourceVector
from ..sim.rng import as_generator
from .adu import ADU, VideoFrame
from .component import ComponentSpec, ProcessingError, QualitySpec, ServiceComponent

__all__ = [
    "MEDIA_FUNCTIONS",
    "make_transform",
    "make_media_component",
    "deploy_media_component",
]

MEDIA_FUNCTIONS: Tuple[str, ...] = (
    "weather_ticker",
    "stock_ticker",
    "upscale",
    "downscale",
    "subimage",
    "requantify",
)


def _expect_frame(adu: ADU) -> VideoFrame:
    if not isinstance(adu, VideoFrame):
        raise ProcessingError(f"media component needs VideoFrame, got {type(adu).__name__}")
    return adu


def _weather_ticker(adus: Sequence[ADU]) -> List[ADU]:
    return [_expect_frame(a).with_overlay("weather") for a in adus]


def _stock_ticker(adus: Sequence[ADU]) -> List[ADU]:
    return [_expect_frame(a).with_overlay("stock") for a in adus]


def _upscale(adus: Sequence[ADU]) -> List[ADU]:
    out = []
    for a in adus:
        f = _expect_frame(a)
        out.append(f.resized(f.width * 2, f.height * 2))
    return out


def _downscale(adus: Sequence[ADU]) -> List[ADU]:
    out = []
    for a in adus:
        f = _expect_frame(a)
        out.append(f.resized(max(1, f.width // 2), max(1, f.height // 2)))
    return out


def _subimage(adus: Sequence[ADU]) -> List[ADU]:
    out = []
    for a in adus:
        f = _expect_frame(a)
        w, h = max(1, f.width // 2), max(1, f.height // 2)
        out.append(f.cropped(f.width // 4, f.height // 4, w, h))
    return out


def _requantify(adus: Sequence[ADU]) -> List[ADU]:
    out = []
    for a in adus:
        f = _expect_frame(a)
        out.append(f.requantised(max(1, f.quant_bits // 2)))
    return out


_TRANSFORMS: Dict[str, Callable[[Sequence[ADU]], List[ADU]]] = {
    "weather_ticker": _weather_ticker,
    "stock_ticker": _stock_ticker,
    "upscale": _upscale,
    "downscale": _downscale,
    "subimage": _subimage,
    "requantify": _requantify,
}

# output rate relative to input rate: scaling/quantisation change bitrate
_BANDWIDTH_FACTOR: Dict[str, float] = {
    "weather_ticker": 1.05,
    "stock_ticker": 1.05,
    "upscale": 4.0,
    "downscale": 0.25,
    "subimage": 0.25,
    "requantify": 0.5,
}

# nominal resource appetite (CPU share %, memory MB) per function
_RESOURCE_PROFILE: Dict[str, Tuple[float, float]] = {
    "weather_ticker": (4.0, 24.0),
    "stock_ticker": (4.0, 24.0),
    "upscale": (18.0, 96.0),
    "downscale": (10.0, 48.0),
    "subimage": (6.0, 32.0),
    "requantify": (12.0, 64.0),
}


def make_transform(function: str) -> Callable[[Sequence[ADU]], List[ADU]]:
    """The transform implementing one of the six media functions."""
    try:
        return _TRANSFORMS[function]
    except KeyError:
        raise KeyError(
            f"unknown media function {function!r}; choose from {MEDIA_FUNCTIONS}"
        ) from None


def make_media_component(
    function: str,
    peer: int,
    rng=None,
    delay_range: Tuple[float, float] = (0.005, 0.040),
    loss_range: Tuple[float, float] = (0.0, 0.002),
) -> ComponentSpec:
    """A :class:`ComponentSpec` for a media function with randomised Qp.

    Duplicated components "provide the same functionality but can have
    different QoS properties (e.g., service time) and available
    resources" (§2.4) — the per-instance randomisation is the spread BCP
    exploits when choosing among duplicates.
    """
    if function not in _TRANSFORMS:
        raise KeyError(f"unknown media function {function!r}")
    rng = as_generator(rng)
    cpu, mem = _RESOURCE_PROFILE[function]
    jitter = 0.5 + rng.random()  # [0.5, 1.5) instance-level heterogeneity
    qp = QoSVector(
        {
            "delay": float(rng.uniform(*delay_range)),
            "loss": float(rng.uniform(*loss_range)),
        }
    )
    return ComponentSpec.create(
        function=function,
        peer=peer,
        qp=qp,
        resources=ResourceVector({"cpu": cpu * jitter, "memory": mem * jitter}),
        input_quality=QualitySpec.of("yuv"),
        output_quality=QualitySpec.of("yuv"),
        bandwidth_factor=_BANDWIDTH_FACTOR[function],
    )


def deploy_media_component(spec: ComponentSpec, max_queue: int = 256) -> ServiceComponent:
    """Instantiate the runtime component for a media spec."""
    return ServiceComponent(spec, make_transform(spec.function), max_queue=max_queue)
