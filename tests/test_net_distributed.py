"""Distributed-mode discovery: DHT-routed directory slices + failure paths.

The live cluster's default mode keeps no shared ground truth: component
meta-data lives in per-peer ``DirectorySlice`` instances addressed
through a frozen ``RingSnapshot`` of the DHT id space, and every
register/lookup crosses the wire.  These tests cover the unhappy paths
the parity test never hits: the key's owner dying mid-lookup (replica
failover), registration visibility (no read-your-own-unregistered-
write), and a composition surviving the death of a directory owner.
"""

import asyncio
import dataclasses

import pytest

from repro.dht.id_space import key_for
from repro.net import ClusterConfig, LiveCluster, SharedStateViolation
from repro.net.directory import DirectorySlice
from repro.net.guard import SharedStateGuard
from repro.net.rpc import RetryPolicy
from repro.discovery.metadata import ServiceMetadata


def _cluster(**overrides):
    fast = RetryPolicy(timeout=0.3, retries=2, backoff=0.02)
    base = dict(
        n_peers=10,
        n_functions=6,
        seed=7,
        capacity_scale=10.0,
        probe_retry=fast,
        control_retry=fast,
    )
    base.update(overrides)
    return LiveCluster(ClusterConfig(**base))


def _functions(cluster):
    return sorted({s.function for s in cluster.scenario.population})


# ----------------------------------------------------------------------
# ring snapshot
# ----------------------------------------------------------------------
def test_ring_snapshot_matches_pastry_ownership():
    cluster = _cluster()
    dht = cluster.net.dht
    ring = dht.ring_snapshot()
    for fn in _functions(cluster):
        key = key_for(fn)
        assert ring.responsible_node(key) == dht.responsible_node(key)
        replicas = ring.replica_peers(key)
        assert replicas[0] == ring.owner_peer(key)
        assert len(replicas) == len(set(replicas))
        assert len(replicas) == min(dht.replicas + 1, len(ring))


# ----------------------------------------------------------------------
# directory slice
# ----------------------------------------------------------------------
def test_directory_slice_store_is_idempotent_by_component():
    cluster = _cluster()
    spec = cluster.scenario.population[0]
    key = key_for(spec.function)
    d = DirectorySlice()
    meta = ServiceMetadata.from_spec(spec, registered_at=0.0)
    assert d.store(key, meta) is True
    assert d.store(key, meta) is False  # replay (RPC retry) is a no-op
    assert len(d) == 1
    rows = d.lookup(key)
    assert [m.component_id for m in rows] == [spec.component_id]


# ----------------------------------------------------------------------
# guard
# ----------------------------------------------------------------------
def test_guard_seals_registry_pool_and_dht_storage():
    cluster = _cluster()
    net = cluster.net
    guard = SharedStateGuard()
    guard.seal(net.registry, net.pool, net.dht)
    try:
        with pytest.raises(SharedStateViolation):
            net.registry.lookup("anything", 0)
        with pytest.raises(SharedStateViolation):
            net.pool.available_amount(0, "cpu")
        with pytest.raises(SharedStateViolation):
            net.dht.get(key_for("anything"), 0)
    finally:
        guard.unseal()
    assert len(guard.violations) == 3
    # unsealed: the shared objects work again (sim-mode reuse)
    assert net.pool.available_amount(0, "cpu") >= 0.0


# ----------------------------------------------------------------------
# failure paths
# ----------------------------------------------------------------------
def test_lookup_falls_back_to_replica_when_owner_dies():
    async def scenario():
        cluster = _cluster()
        async with cluster:
            ring = next(iter(cluster.daemons.values())).ring
            # a (function, querier) pair where the querier holds no
            # replica itself, so the lookup must go over the wire
            fn = owner = querier = None
            for cand_fn in _functions(cluster):
                replicas = ring.replica_peers(key_for(cand_fn))
                outsiders = [p for p in cluster.daemons if p not in replicas]
                if len(replicas) >= 2 and outsiders:
                    fn, owner, querier = cand_fn, replicas[0], outsiders[0]
                    break
            assert fn is not None, "fixture: no function with an outside querier"

            expected = sorted(
                s.component_id
                for s in cluster.scenario.population
                if s.function == fn
            )
            q = cluster.daemons[querier]
            before, _ = await q._lookup(fn, querier)
            cluster.kill_peer(owner)
            after, _ = await q._lookup(fn, querier)
            return expected, before, after, cluster.errors()

    expected, before, after, errors = asyncio.run(scenario())
    assert errors == []
    assert sorted(m.component_id for m in before) == expected
    # the owner is dead; a replica-ring successor served the same rows
    assert sorted(m.component_id for m in after) == expected


def test_registration_visible_only_after_rpc_completes():
    async def scenario():
        cluster = _cluster()
        async with cluster:
            host = 3
            template = cluster.scenario.population[0]
            spec = dataclasses.replace(template, function="zz_fresh_fn", peer=host)
            daemon = cluster.daemons[host]
            before, _ = await daemon._lookup("zz_fresh_fn", host)
            await daemon.register_components([spec])
            after_own, _ = await daemon._lookup("zz_fresh_fn", host)
            after_other, _ = await cluster.daemons[0]._lookup("zz_fresh_fn", 0)
            return before, after_own, after_other, cluster.errors()

    before, after_own, after_other, errors = asyncio.run(scenario())
    assert errors == []
    # the hosting peer cannot see its own component before the RPCs ran
    assert before == []
    assert [m.peer for m in after_own] == [3]
    assert [m.peer for m in after_other] == [3]


def test_compose_survives_directory_owner_death():
    async def scenario():
        cluster = _cluster()
        async with cluster:
            gen = cluster.scenario.requests
            first = await cluster.compose(gen.next_request(source=1, dest=2), timeout=60)

            # kill the peer owning the most function keys — every lookup
            # for those functions must fail over to replica successors
            ring = next(iter(cluster.daemons.values())).ring
            owners = [ring.owner_peer(key_for(fn)) for fn in _functions(cluster)]
            victim = max(
                (p for p in set(owners) if p not in (1, 2)),
                key=owners.count,
            )
            cluster.kill_peer(victim)

            after = [
                await cluster.compose(gen.next_request(source=1, dest=2), timeout=60)
                for _ in range(3)
            ]
            stats = cluster.rpc_stats()
            violations = list(cluster.shared_guard.violations)
            failures = cluster.rpc_failures()
            return first, after, stats, cluster.errors(), violations, failures, victim

    first, after, stats, errors, violations, failures, victim = asyncio.run(scenario())
    assert errors == []
    assert violations == []
    assert first.success
    # the dead owner slows discovery down but cannot stop it: replica
    # failover keeps the duplicate lists reachable
    assert any(r.success for r in after)
    # calls at the dead owner fail fast (the endpoint's peer_down check
    # sees the killed transport) instead of burning retry budget
    assert failures, "lookups at the dead owner should record RpcFailures"
    assert all(f.attempts == 0 for f in failures if f.peer == victim)
