"""Smoke tests: every shipped example runs to completion.

Marked slow (each example builds a full topology + middleware stack);
run with ``pytest -m slow tests/test_examples.py`` or as part of the
default suite — total runtime is tens of seconds.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.slow
@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(example):
    proc = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{example.name} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{example.name} produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "video_streaming",
        "churn_resilience",
        "dag_commutation",
        "secure_composition",
    } <= names
