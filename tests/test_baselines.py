"""Unit tests for the optimal/random/static/centralized comparison schemes."""

import numpy as np
import pytest

from repro.core.baselines import (
    CentralizedComposer,
    OptimalComposer,
    RandomComposer,
    StaticComposer,
    enumerate_candidates,
    optimal_probe_count,
)
from repro.core.bcp import BCPConfig
from repro.core.function_graph import FunctionGraph
from repro.core.resources import ResourceVector

from worlds import MicroWorld


def populated_world(**kwargs):
    world = MicroWorld(**kwargs)
    for fn, peers in (("fa", (2, 3)), ("fb", (4, 5, 6))):
        for p in peers:
            world.place(fn, peer=p)
    return world


class TestEnumeration:
    def test_all_combinations(self):
        world = populated_world()
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=7)
        duplicates = {
            "fa": world.registry.duplicates("fa"),
            "fb": world.registry.duplicates("fb"),
        }
        cands = enumerate_candidates(req, duplicates, world.overlay)
        assert len(cands) == 2 * 3

    def test_limit_respected(self):
        world = populated_world()
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=7)
        duplicates = {fn: world.registry.duplicates(fn) for fn in ("fa", "fb")}
        assert len(enumerate_candidates(req, duplicates, world.overlay, limit=3)) == 3

    def test_dead_peers_excluded(self):
        world = populated_world()
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=7)
        duplicates = {fn: world.registry.duplicates(fn) for fn in ("fa", "fb")}
        cands = enumerate_candidates(
            req, duplicates, world.overlay, alive=lambda p: p != 2
        )
        assert len(cands) == 1 * 3

    def test_commutation_patterns_enumerated(self):
        world = MicroWorld()
        for fn, p in (("fa", 2), ("fb", 3), ("fc", 4)):
            world.place(fn, peer=p)
        fg = FunctionGraph.linear(["fa", "fb", "fc"], [("fb", "fc")])
        req = world.request(fg, source=0, dest=7)
        duplicates = {fn: world.registry.duplicates(fn) for fn in ("fa", "fb", "fc")}
        cands = enumerate_candidates(req, duplicates, world.overlay)
        assert len(cands) == 2  # same assignment under both orders

    def test_probe_count_is_product(self):
        world = populated_world()
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=7)
        duplicates = {fn: world.registry.duplicates(fn) for fn in ("fa", "fb")}
        assert optimal_probe_count(req, duplicates) == 6

    def test_probe_count_sums_patterns(self):
        world = MicroWorld()
        for fn, p in (("fa", 2), ("fb", 3), ("fc", 4)):
            world.place(fn, peer=p)
        fg = FunctionGraph.linear(["fa", "fb", "fc"], [("fb", "fc")])
        req = world.request(fg, source=0, dest=7)
        duplicates = {fn: world.registry.duplicates(fn) for fn in ("fa", "fb", "fc")}
        assert optimal_probe_count(req, duplicates) == 2  # 1 per pattern


class TestOptimalComposer:
    def test_finds_global_best_delay(self):
        world = populated_world()
        composer = OptimalComposer(
            world.overlay, world.pool, world.registry, objective="delay"
        )
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=7)
        result = composer.compose(req, confirm=False)
        assert result.success
        duplicates = {fn: world.registry.duplicates(fn) for fn in ("fa", "fb")}
        cands = enumerate_candidates(req, duplicates, world.overlay)
        best_delay = min(c.qos.get("delay") for c in cands)
        assert result.best_qos.get("delay") == pytest.approx(best_delay)

    def test_confirm_holds_resources(self):
        world = populated_world()
        composer = OptimalComposer(world.overlay, world.pool, world.registry)
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=7)
        result = composer.compose(req, confirm=True)
        assert result.success and result.session_tokens
        peer = result.best.component("fa").peer
        assert world.pool.available(peer).get("cpu") < 100.0
        world.pool.release(result.session_tokens[0])

    def test_probes_charged_to_ledger(self):
        world = populated_world()
        composer = OptimalComposer(world.overlay, world.pool, world.registry)
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=7)
        composer.compose(req, confirm=False)
        assert composer.ledger.count["flood_probe"] == 6


class TestRandomComposer:
    def test_ignores_qos_may_fail(self):
        world = populated_world()
        composer = RandomComposer(
            world.overlay, world.pool, world.registry, rng=np.random.default_rng(0)
        )
        req = world.request(
            FunctionGraph.linear(["fa", "fb"]), source=0, dest=7, delay_bound=1e-6
        )
        result = composer.compose(req, confirm=False)
        assert not result.success
        assert result.best is not None  # it DID pick a graph, just a bad one
        assert result.failure_reason == "QoS requirement violated"

    def test_succeeds_with_loose_bounds(self):
        world = populated_world()
        composer = RandomComposer(
            world.overlay, world.pool, world.registry, rng=np.random.default_rng(0)
        )
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=7)
        assert composer.compose(req, confirm=False).success

    def test_missing_function_fails(self):
        world = populated_world()
        composer = RandomComposer(
            world.overlay, world.pool, world.registry, rng=np.random.default_rng(0)
        )
        req = world.request(FunctionGraph.linear(["fa", "nope"]), source=0, dest=7)
        result = composer.compose(req)
        assert not result.success

    def test_choice_varies_over_draws(self):
        world = populated_world()
        composer = RandomComposer(
            world.overlay, world.pool, world.registry, rng=np.random.default_rng(0)
        )
        req_fn = lambda: world.request(FunctionGraph.linear(["fb"]), source=0, dest=7)
        picks = {
            composer.compose(req_fn(), confirm=False).best.component("fb").component_id
            for _ in range(20)
        }
        assert len(picks) > 1


class TestStaticComposer:
    def test_always_lowest_component_id(self):
        world = populated_world()
        composer = StaticComposer(
            world.overlay, world.pool, world.registry, rng=np.random.default_rng(0)
        )
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=7)
        result = composer.compose(req, confirm=False)
        assert result.success
        expected_fa = min(m.component_id for m in world.registry.duplicates("fa"))
        assert result.best.component("fa").component_id == expected_fa

    def test_fails_when_static_choice_down(self):
        world = populated_world()
        composer = StaticComposer(
            world.overlay, world.pool, world.registry,
            alive=lambda p: p != 2, rng=np.random.default_rng(0),
        )
        statics = world.registry.duplicates("fa")
        static_peer = min(statics, key=lambda m: m.component_id).peer
        assert static_peer == 2
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=7)
        result = composer.compose(req)
        assert not result.success
        assert "down" in result.failure_reason


class TestCentralizedComposer:
    def test_composes_on_cached_view(self):
        world = populated_world()
        composer = CentralizedComposer(world.overlay, world.pool, world.registry)
        composer.refresh()
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=7)
        assert composer.compose(req, confirm=False).success

    def test_global_view_refresh_cost_quadratic(self):
        world = populated_world()
        composer = CentralizedComposer(world.overlay, world.pool, world.registry)
        composer.refresh()
        n = world.overlay.n_peers
        assert composer.ledger.count["state_update"] == n * (n - 1)

    def test_server_refresh_cost_linear(self):
        world = populated_world()
        composer = CentralizedComposer(
            world.overlay, world.pool, world.registry, dissemination="server"
        )
        composer.refresh()
        assert composer.ledger.count["state_update"] == world.overlay.n_peers

    def test_bad_dissemination_rejected(self):
        world = populated_world()
        with pytest.raises(ValueError):
            CentralizedComposer(
                world.overlay, world.pool, world.registry, dissemination="smoke"
            )

    def test_stale_view_misjudges_load(self):
        """Between refreshes the cached cost ignores new allocations."""
        world = populated_world()
        composer = CentralizedComposer(world.overlay, world.pool, world.registry)
        composer.refresh()
        req = world.request(FunctionGraph.linear(["fa"]), source=0, dest=7)
        first = composer.compose(req, confirm=False)
        # load the winning peer heavily *after* the refresh
        winner = first.best.component("fa").peer
        world.pool.soft_allocate_peer("hog", winner, ResourceVector({"cpu": 95.0}))
        again = composer.compose(
            world.request(FunctionGraph.linear(["fa"]), source=0, dest=7), confirm=False
        )
        # stale view still ranks the loaded peer as before
        assert again.best.component("fa").peer == winner
        composer.refresh()
        fresh = composer.compose(
            world.request(FunctionGraph.linear(["fa"]), source=0, dest=7), confirm=False
        )
        assert fresh.best.component("fa").peer != winner

    def test_auto_refresh_on_first_compose(self):
        world = populated_world()
        composer = CentralizedComposer(world.overlay, world.pool, world.registry)
        req = world.request(FunctionGraph.linear(["fa"]), source=0, dest=7)
        assert composer.compose(req, confirm=False).success
        assert composer.refreshes == 1
