"""Unit tests for deterministic randomness utilities."""

import numpy as np
import pytest

from repro.sim.rng import (
    as_generator,
    spawn,
    stable_hash64,
    weighted_choice_without_replacement,
)


class TestAsGenerator:
    def test_int_seed_deterministic(self):
        a, b = as_generator(42), as_generator(42)
        assert a.random() == b.random()

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_seed_sequence(self):
        g = as_generator(np.random.SeedSequence(5))
        assert isinstance(g, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawn:
    def test_children_are_independent_and_deterministic(self):
        kids1 = spawn(as_generator(7), 3)
        kids2 = spawn(as_generator(7), 3)
        v1 = [k.random() for k in kids1]
        v2 = [k.random() for k in kids2]
        assert v1 == v2
        assert len(set(v1)) == 3  # distinct streams

    def test_zero_children(self):
        assert spawn(as_generator(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(as_generator(0), -1)


class TestStableHash:
    def test_stable_known_value(self):
        # FNV-1a must not vary across runs/processes
        assert stable_hash64("abc") == stable_hash64("abc")
        assert stable_hash64("") == 0xCBF29CE484222325

    def test_different_inputs_differ(self):
        assert stable_hash64("transcode") != stable_hash64("transcodf")

    def test_64_bit_range(self):
        h = stable_hash64("some service function")
        assert 0 <= h < 2**64


class TestWeightedChoice:
    def test_k_distinct_items(self):
        rng = as_generator(3)
        out = weighted_choice_without_replacement(rng, list("abcdef"), [1] * 6, 4)
        assert len(out) == len(set(out)) == 4

    def test_k_larger_than_population_clamped(self):
        rng = as_generator(3)
        out = weighted_choice_without_replacement(rng, [1, 2], [1.0, 1.0], 10)
        assert sorted(out) == [1, 2]

    def test_zero_weights_fall_back_to_uniform(self):
        rng = as_generator(3)
        out = weighted_choice_without_replacement(rng, [1, 2, 3], [0, 0, 0], 2)
        assert len(out) == 2

    def test_heavy_weight_dominates(self):
        rng = as_generator(3)
        hits = sum(
            weighted_choice_without_replacement(rng, ["a", "b"], [1000.0, 1.0], 1)[0] == "a"
            for _ in range(50)
        )
        assert hits >= 45

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice_without_replacement(as_generator(0), [1, 2], [1.0], 1)

    def test_k_zero_empty(self):
        assert weighted_choice_without_replacement(as_generator(0), [1], [1.0], 0) == []
