"""End-to-end LiveCluster behaviour: sessions, ledger books, tracing."""

import asyncio

import pytest

from repro.net import ClusterConfig, LiveCluster
from repro.sim.tracing import EventTrace


def _small_config(**overrides):
    base = dict(n_peers=6, n_functions=5, seed=2, capacity_scale=4.0)
    base.update(overrides)
    return ClusterConfig(**base)


def test_compose_with_confirm_establishes_sessions():
    async def scenario():
        trace = EventTrace()
        cluster = LiveCluster(_small_config(), trace=trace)
        async with cluster:
            requests = cluster.scenario.requests.batch(3)
            results = await cluster.compose_many(requests, confirm=True, timeout=60)
            sessions = {
                rid: s
                for d in cluster.daemons.values()
                for rid, s in d.sessions.items()
            }
        return cluster, trace, results, sessions

    cluster, trace, results, sessions = asyncio.run(scenario())
    assert cluster.errors() == []
    assert any(r.success for r in results)
    for r in results:
        if r.success:
            # confirmed sessions hold hard tokens and appear at the source
            assert r.session_tokens
            assert sessions[r.request.request_id].graph == r.best
            assert not sessions[r.request.request_id].failed
    # soft state fully promoted or released — nothing left dangling
    assert cluster.soft_tokens() == {}
    # trace carries the live categories
    cats = trace.categories()
    assert "cluster_started" in cats
    assert "compose_finished" in cats
    assert "session_established" in cats


def test_ledger_carries_sim_and_wire_books():
    async def scenario():
        cluster = LiveCluster(_small_config())
        async with cluster:
            request = cluster.scenario.requests.next_request()
            result = await cluster.compose(request, confirm=False, timeout=60)
        return cluster, result

    cluster, result = asyncio.run(scenario())
    assert result.probes_sent > 0
    ledger = cluster.ledger
    # sim-category books: identical keys to the simulated runtime, so the
    # overhead experiment's accounting works unchanged on a live cluster
    assert ledger.count["bcp_probe"] == result.probes_sent
    assert ledger.count["dht_route"] > 0
    # wire books: what actually crossed the transport, live-only keys
    wire = cluster.tap.wire_summary()
    assert "net_probe" in wire and "net_ack" in wire
    frames, nbytes = wire["net_probe"]
    assert frames > 0 and nbytes > frames  # real encoded sizes, not nominal
    stats = cluster.rpc_stats()
    assert stats["frames_sent"] > 0
    assert stats["bytes_sent"] == cluster.transport.bytes_sent


def test_failed_composition_reports_reason_and_charges_failure():
    async def scenario():
        cluster = LiveCluster(_small_config())
        async with cluster:
            # an impossible budget of 1 starves the probe wave immediately
            request = cluster.scenario.requests.next_request()
            result = await cluster.compose(request, budget=1, confirm=True, timeout=60)
        return cluster, result

    cluster, result = asyncio.run(scenario())
    assert cluster.errors() == []
    if not result.success:
        assert result.failure_reason
        assert cluster.ledger.count.get("bcp_failure", 0) >= 1
    assert cluster.soft_tokens() == {}


def test_compose_concurrent_pipelines_isolated_sessions():
    async def scenario():
        cluster = LiveCluster(_small_config(capacity_scale=10.0))
        async with cluster:
            requests = cluster.scenario.requests.batch(8)
            results = await cluster.compose_concurrent(
                requests, concurrency=4, confirm=False, timeout=60
            )
        return cluster, requests, results

    cluster, requests, results = asyncio.run(scenario())
    # per-session isolation: no daemon errors, no leaked soft state, and
    # results come back in request order despite overlapped execution
    assert cluster.errors() == []
    assert cluster.soft_tokens() == {}
    assert len(results) == len(requests)
    assert [r.request.request_id for r in results] == [
        r.request_id for r in requests
    ]
    assert any(r.success for r in results)


def test_compose_concurrent_rejects_bad_concurrency():
    async def scenario():
        cluster = LiveCluster(_small_config())
        async with cluster:
            with pytest.raises(ValueError, match="concurrency"):
                await cluster.compose_concurrent(
                    cluster.scenario.requests.batch(1), concurrency=0
                )

    asyncio.run(scenario())


def test_unknown_transport_rejected():
    with pytest.raises(ValueError, match="transport"):
        LiveCluster(ClusterConfig(transport="carrier-pigeon"))


def test_compose_requires_started_cluster():
    cluster = LiveCluster(_small_config())
    request = cluster.scenario.requests.next_request()
    with pytest.raises(RuntimeError, match="not started"):
        asyncio.run(cluster.compose(request))
