"""Unit tests for the discrete-event engine."""

import numpy as np
import pytest

from repro.sim.engine import EventHandle, PeriodicTask, SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        out = []
        sim.schedule(5.0, out.append, "late")
        sim.schedule(1.0, out.append, "early")
        sim.schedule(3.0, out.append, "mid")
        sim.run()
        assert out == ["early", "mid", "late"]

    def test_fifo_among_simultaneous_events(self):
        sim = Simulator()
        out = []
        for i in range(10):
            sim.schedule(1.0, out.append, i)
        sim.run()
        assert out == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=10.0)
        seen = []
        sim.schedule_at(12.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_nan_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)

    def test_schedule_in_the_past_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        out = []
        sim.schedule(0.0, out.append, 1)
        sim.run()
        assert out == [1]

    def test_callback_args_and_kwargs(self):
        sim = Simulator()
        seen = {}
        sim.schedule(1.0, lambda a, b=0: seen.update(a=a, b=b), 1, b=2)
        sim.run()
        assert seen == {"a": 1, "b": 2}

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        out = []

        def first():
            out.append("first")
            sim.schedule(1.0, out.append, "second")

        sim.schedule(1.0, first)
        sim.run()
        assert out == ["first", "second"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        out = []
        h = sim.schedule(1.0, out.append, "x")
        assert h.cancel()
        sim.run()
        assert out == []

    def test_cancel_returns_false_after_fired(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.run()
        assert not h.cancel()

    def test_double_cancel_is_noop(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        assert h.cancel()
        assert not h.cancel()

    def test_pending_property(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        assert h.pending
        h.cancel()
        assert not h.pending

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h1.cancel()
        assert sim.pending_events == 1


class TestRun:
    def test_run_until_stops_clock(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, 1)
        sim.schedule(5.0, out.append, 2)
        sim.run(until=3.0)
        assert out == [1]
        assert sim.now == 3.0
        sim.run()  # remaining event still fires later
        assert out == [1, 2]

    def test_run_until_advances_clock_with_no_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_step_executes_single_event(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, 1)
        sim.schedule(2.0, out.append, 2)
        assert sim.step()
        assert out == [1]
        assert sim.step()
        assert not sim.step()

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 5

    def test_run_not_reentrant(self):
        sim = Simulator()
        errors = []

        def recurse():
            try:
                sim.run()
            except SimulationError as e:
                errors.append(e)

        sim.schedule(1.0, recurse)
        sim.run()
        assert len(errors) == 1

    def test_iterate_yields_clock(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert list(sim.iterate()) == [1.0, 2.0]


class TestPeriodicTask:
    def test_fires_at_interval(self):
        sim = Simulator()
        out = []
        sim.every(2.0, lambda: out.append(sim.now))
        sim.run(until=7.0)
        assert out == [2.0, 4.0, 6.0]

    def test_start_after_overrides_first_delay(self):
        sim = Simulator()
        out = []
        sim.every(2.0, lambda: out.append(sim.now), start_after=0.5)
        sim.run(until=5.0)
        assert out == [0.5, 2.5, 4.5]

    def test_stop_prevents_future_fires(self):
        sim = Simulator()
        out = []
        task = sim.every(1.0, lambda: out.append(sim.now))
        sim.run(until=2.5)
        task.stop()
        sim.run(until=10.0)
        assert out == [1.0, 2.0]

    def test_stop_from_inside_callback(self):
        sim = Simulator()
        task_holder = {}

        def cb():
            task_holder["count"] = task_holder.get("count", 0) + 1
            if task_holder["count"] >= 3:
                task_holder["task"].stop()

        task_holder["task"] = sim.every(1.0, cb)
        sim.run(until=100.0)
        assert task_holder["count"] == 3

    def test_fire_count(self):
        sim = Simulator()
        task = sim.every(1.0, lambda: None)
        sim.run(until=4.5)
        assert task.fire_count == 4

    def test_non_positive_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)

    def test_jitter_requires_rng(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTask(sim, 1.0, lambda: None, (), {}, jitter=0.1, rng=None)

    def test_jitter_desynchronises(self):
        sim = Simulator()
        times = []
        rng = np.random.default_rng(0)
        sim.every(1.0, lambda: times.append(sim.now), jitter=0.3, rng=rng)
        sim.run(until=10.0)
        assert len(times) >= 7
        gaps = np.diff([0.0] + times)
        assert gaps.min() > 0.6 and gaps.max() < 1.4
        assert len(set(np.round(gaps, 6))) > 1  # actually jittered
